"""Quickstart: cluster a highly noisy synthetic dataset with AdaWave.

Generates the paper's running example (five arbitrarily shaped clusters
drowned in 80 % uniform noise), runs AdaWave with its default parameters and
prints the quality metrics and a textual summary of every pipeline stage.
A second section streams the same dataset in batches through
``partial_fit`` / ``finalize`` and shows the labels come out identical.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AdaWave
from repro.datasets import running_example
from repro.metrics import evaluate_clustering


def main() -> None:
    # 1. Generate the running example: 5 clusters + 80 % uniform noise.
    data = running_example(noise_fraction=0.8, n_per_cluster=2000, seed=0)
    print(f"dataset: {data}")

    # 2. Cluster with AdaWave.  The defaults follow the paper: 128 intervals
    #    per dimension, the CDF(2,2) wavelet and the adaptive elbow threshold.
    model = AdaWave(scale=128)
    model.fit(data.points)

    # 3. Inspect the result.
    scores = evaluate_clustering(data.labels, model.labels_)
    print(f"detected clusters : {model.n_clusters_}")
    print(f"adaptive threshold: {model.threshold_:.2f} "
          f"(selected by the {model.result_.threshold.method!r} rule)")
    print(f"AMI (non-noise)   : {scores.ami:.3f}")
    print(f"ARI               : {scores.ari:.3f}")
    print(f"noise detected    : {scores.noise_fraction_detected:.1%} "
          f"(ground truth {data.noise_fraction:.1%})")

    # 4. Every intermediate artefact is available on the result object.
    result = model.result_
    print(f"occupied grid cells        : {result.quantization.grid.n_occupied}")
    print(f"transformed grid cells     : {result.transformed_grid.n_occupied}")
    print(f"cells surviving threshold  : {len(result.surviving_cells)}")
    print(f"cluster sizes (objects)    : {result.cluster_sizes}")

    # 5. Streaming / out-of-core ingestion.  The quantized grid is a
    #    mergeable sketch, so the same data fed batch by batch through
    #    partial_fit -- here in 8 arbitrary chunks -- then finalize()d yields
    #    exactly the one-shot labels.  Explicit bounds keep every batch on
    #    the same grid; with the data's own bounding box the stream matches
    #    the one-shot fit above bit for bit.
    bounds = (data.points.min(axis=0), data.points.max(axis=0))
    one_shot = AdaWave(scale=128, bounds=bounds).fit(data.points)
    stream = AdaWave(scale=128, bounds=bounds)
    for batch in np.array_split(data.points, 8):
        stream.partial_fit(batch)
    stream.finalize()
    identical = np.array_equal(stream.labels_, one_shot.labels_)
    print(f"streaming over 8 batches   : {stream.n_seen_} points ingested, "
          f"labels identical to one-shot fit: {identical}")

    # 6. Serving: the fitted clustering freezes into a tiny artifact that
    #    labels new points with a pure lookup -- no training data retained.
    #    See examples/serving.py for the full save -> load -> registry ->
    #    concurrent-service flow.
    frozen = model.export_model()
    lookup_labels = frozen.predict(data.points)
    print(f"frozen ClusterModel        : {frozen.n_cells} cells, predict "
          f"reproduces fit labels: {np.array_equal(lookup_labels, model.labels_)}")

    # 7. Letting AdaWave pick its scale: scale="tune" sweeps every dyadic
    #    resolution derived from one quantization and keeps the most stable
    #    clustering -- no ground-truth labels involved.  See
    #    examples/tuning.py for the full walkthrough.
    tuned = AdaWave(scale="tune").fit(data.points)
    print(f"scale='tune'               : chose scale {tuned.tune_result_.scale} "
          f"({tuned.n_clusters_} clusters) from "
          f"{len(tuned.tune_result_.scores)} candidates")


if __name__ == "__main__":
    main()
