"""Noise robustness: compare AdaWave with the paper's baselines as noise grows.

Reproduces a small version of Fig. 8: the five-cluster synthetic benchmark is
generated at several noise percentages and AdaWave, SkinnyDip, DBSCAN, EM,
k-means and WaveCluster are scored with noise-aware AMI.

Run with::

    python examples/noise_robustness.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import format_table, run_noise_sweep
from repro.experiments.reporting import pivot


def main() -> None:
    result = run_noise_sweep(
        noise_levels=(0.2, 0.5, 0.8),
        n_per_cluster=1200,
        seed=0,
        subsample_quadratic=20000,
    )
    wide = pivot(result, index="noise", column="algorithm", value="ami")
    print(format_table(wide, title="AMI by noise level (reduced Fig. 8)"))
    print()
    adawave = {row["noise"]: row["ami"] for row in result.rows if row["algorithm"] == "AdaWave"}
    print(
        "AdaWave degrades from "
        f"{adawave[0.2]:.2f} AMI at 20% noise to {adawave[0.8]:.2f} at 80% noise, "
        "while the distance- and model-based baselines fall much faster."
    )


if __name__ == "__main__":
    main()
