"""Online-serving walkthrough: drift -> detect -> re-tune -> hot-swap.

A production clustering service never sees "the dataset" -- it sees a stream
whose structure moves.  This example runs the whole online control plane
(:mod:`repro.stream`) against a drifting synthetic workload:

1. stream a stationary phase through a :class:`StreamController`; the first
   model is auto-tuned from the live sketch and published once enough
   samples arrived;
2. shift the distribution (clusters move, the noise floor rises) and keep
   streaming; the :class:`DriftMonitor` flags the shift from the sketch
   alone -- no labels -- and the controller re-tunes incrementally (a few
   ``O(cells)`` grid passes, no refit) and hot-swaps the served model;
3. predict traffic keeps flowing during every swap (blue/green versioned
   registry: readers never observe a missing model);
4. compare the recovered model against a from-scratch tuned fit on the
   shifted data.

Run with::

    python examples/drift.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AdaWave, StreamController
from repro.datasets import drifting_dataset
from repro.metrics import ami_on_true_clusters


def stream_phase(controller, points, n_batches, rng, tag):
    for batch_index, ix in enumerate(np.array_split(rng.permutation(len(points)), n_batches)):
        report = controller.ingest(points[ix])
        if report is not None:
            flag = "DRIFT" if report.drifted else "ok"
            print(
                f"  {tag} batch {batch_index + 1:2d}: {flag:5s} "
                f"stability={report.stability:.3f} "
                f"noise_shift={report.noise_shift:.3f} "
                f"serving={controller.version_}"
            )


def main() -> None:
    rng = np.random.default_rng(0)
    bounds = ([0.0, 0.0], [1.0, 1.0])
    phase_a = drifting_dataset(0.0, n_per_cluster=1200, seed=0)
    phase_b = drifting_dataset(1.0, n_per_cluster=1200, seed=1)
    evaluation = drifting_dataset(1.0, n_per_cluster=1200, seed=100)

    # The controller owns the fine-resolution sketch (ingest fine, serve
    # coarse), the drift monitor and the serving registry.  window=8 keeps
    # the sketch tracking the last 8 batches, so a shifted distribution
    # fully replaces the old one instead of having to out-mass it.
    with StreamController(
        "live", bounds, 2, warmup=len(phase_a.points) // 2, check_every=2, window=8
    ) as controller:
        print("phase A: stationary stream")
        stream_phase(controller, phase_a.points, 8, rng, "A")
        print(f"  published {controller.version_}: {controller.model_}")

        print("phase B: clusters shift by (0.15, 0.10), noise rises to 75 %")
        stream_phase(controller, phase_b.points, 8, rng, "B")
        print(
            f"  after re-tuning: serving {controller.version_} "
            f"({controller.n_retunes_} models published, "
            f"last re-tune {controller.last_retune_seconds_ * 1e3:.0f} ms)"
        )
        versions = controller.service.registry.versions("live")
        print(f"  retained versions: {versions}")

        served_ami = ami_on_true_clusters(
            evaluation.labels, controller.predict(evaluation.points)
        )

    scratch = AdaWave(scale="tune").fit(evaluation.points)
    scratch_ami = ami_on_true_clusters(evaluation.labels, scratch.labels_)
    print(
        f"recovery: served AMI {served_ami:.3f} vs from-scratch tuned "
        f"{scratch_ami:.3f} ({served_ami / scratch_ami:.2f}x)"
    )


if __name__ == "__main__":
    main()
