"""HTTP edge walkthrough: network predict, deadlines, chaos, self-healing.

The serving plane from :mod:`examples.multiprocess_serving` only answered
in-process callers.  This example puts the HTTP edge in front of it and
exercises the operability story end to end:

1. stand up a :class:`~repro.serve.ProcessPoolService` (2 workers, shared
   artifact store, shared-memory data plane) behind an
   :class:`~repro.serve.EdgeThread` on an ephemeral port;
2. predict over the wire -- JSON for casual clients, raw ``.npy`` bodies
   for high-volume ones;
3. send a request with an ``X-Deadline-Ms`` budget and watch an expired
   deadline answer 504 instead of queueing;
4. SIGKILL a worker process mid-service and watch the watchdog respawn it:
   capacity returns, the respawn lands in ``/metrics``, and predictions
   keep matching the frozen model bit-for-bit;
5. blue/green swap the model *over HTTP* and verify the respawned worker
   honors the new version too.

Run with::

    python examples/edge_serving.py
"""

from __future__ import annotations

import io
import json
import os
import signal
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AdaWave, ProcessPoolService
from repro.serve import EdgeThread
from repro.datasets import running_example


def _post(url: str, body: bytes, headers: dict) -> tuple:
    request = urllib.request.Request(url, data=body, headers=headers)
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, response.read()


def _get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30.0) as response:
        return json.load(response)


def main() -> None:
    # 1. Freeze two models and put the edge in front of a worker pool.
    blue_data = running_example(noise_fraction=0.75, n_per_cluster=1200, seed=0)
    green_data = running_example(noise_fraction=0.55, n_per_cluster=1200, seed=9)
    blue = AdaWave(scale=128).fit(blue_data.points).export_model()
    green = AdaWave(scale=128).fit(green_data.points).export_model()
    queries = np.random.default_rng(1).uniform(
        blue_data.points.min(0), blue_data.points.max(0), size=(2000, 2)
    )

    with tempfile.TemporaryDirectory() as tmp:
        with ProcessPoolService(tmp, n_workers=2, max_pending=64) as service:
            service.register("prod", blue)
            with EdgeThread(service) as edge:
                print(f"edge   : listening on {edge.url}")

                # 2. Predict over the wire, JSON then raw npy.
                body = json.dumps({"points": queries[:5].tolist()}).encode()
                status, payload = _post(
                    f"{edge.url}/predict/prod", body,
                    {"Content-Type": "application/json"},
                )
                print(f"json   : {status} -> labels {json.loads(payload)['labels']}")

                buffer = io.BytesIO()
                np.save(buffer, queries)
                status, payload = _post(
                    f"{edge.url}/predict/prod", buffer.getvalue(),
                    {"Content-Type": "application/x-npy"},
                )
                labels = np.load(io.BytesIO(payload))
                exact = np.array_equal(labels, blue.predict(queries))
                print(f"npy    : {status} -> {labels.size} labels, "
                      f"bit-identical to the frozen model: {exact}")

                # 3. Deadline propagation: a spent budget answers 504.
                try:
                    _post(f"{edge.url}/predict/prod", body,
                          {"Content-Type": "application/json",
                           "X-Deadline-Ms": "0"})
                except urllib.error.HTTPError as error:
                    print(f"504    : expired X-Deadline-Ms sheds with "
                          f"{error.code} ({json.loads(error.read())['error']})")

                # 4. Chaos: SIGKILL a worker, watch the pool heal itself.
                victim = service.pool.processes[0]
                os.kill(victim.pid, signal.SIGKILL)
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    if service.pool.respawns >= 1 and all(service.pool.alive()):
                        break
                    time.sleep(0.05)
                health = _get_json(f"{edge.url}/healthz")
                metrics = _get_json(f"{edge.url}/metrics")
                print(f"chaos  : killed pid {victim.pid}; workers now "
                      f"{health['workers']['alive']}/{health['workers']['total']} "
                      f"alive, respawns={metrics['workers']['respawns']}")
                status, payload = _post(
                    f"{edge.url}/predict/prod", buffer.getvalue(),
                    {"Content-Type": "application/x-npy"},
                )
                healed = np.array_equal(
                    np.load(io.BytesIO(payload)), blue.predict(queries)
                )
                print(f"heal   : post-respawn predict still exact: {healed}")

                # 5. Blue/green over HTTP; the respawned worker honors it.
                artifact = Path(tmp) / "green.npz"
                green.save(artifact)
                status, payload = _post(
                    f"{edge.url}/swap/prod", artifact.read_bytes(), {}
                )
                version = json.loads(payload)["version"]
                swapped = all(
                    np.array_equal(
                        service.predict("prod", queries), green.predict(queries)
                    )
                    for _ in range(4)  # round-robin across both workers
                )
                print(f"swap   : {version} published over HTTP, every worker "
                      f"(respawned one included) serves it: {swapped}")


if __name__ == "__main__":
    main()
