"""Transform backends: pick, compare and record the DWT hot-path kernel.

Fits the same dataset under every registered transform backend, prints the
per-stage wall clock so the transform-stage win is visible, shows ``"auto"``
resolving to the fastest registered kernel, and saves/reloads an artifact to
demonstrate the backend provenance in its metadata.

Run with::

    python examples/backends.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AdaWave
from repro.datasets import running_example
from repro.serve.model import ClusterModel
from repro.wavelets import available_backends, get_backend, resolve_backend


def main() -> None:
    data = running_example(noise_fraction=0.8, n_per_cluster=2000, seed=0)
    print(f"dataset: {data}")
    print(f"registered backends: {available_backends()}")

    # 1. "auto" (the default) resolves to the fastest registered backend
    #    that supports the configured wavelet -- the lifting kernels for the
    #    paper's bior2.2, the numba ones when numba is installed.
    auto = AdaWave(scale=128, backend="auto").fit(data.points)
    print(f'\nbackend="auto" resolved to: {auto.backend_}')

    # 2. Fit once per backend and compare the per-stage timings.  Every
    #    backend that supports bior2.2 reproduces the same labels (the
    #    golden tests pin this); only the transform stage gets cheaper.
    print(f"\n{'backend':<10} {'transform (ms)':>15} {'total fit (ms)':>15} clusters")
    reference_labels = None
    for name in available_backends():
        if not get_backend(name).supports("bior2.2"):
            continue
        model = AdaWave(scale=128, backend=name).fit(data.points)
        transform_ms = model.stage_seconds_["transform"] * 1e3
        total_ms = sum(model.stage_seconds_.values()) * 1e3
        print(f"{model.backend_:<10} {transform_ms:>15.2f} {total_ms:>15.2f} "
              f"{model.n_clusters_:>8}")
        if reference_labels is None:
            reference_labels = model.labels_
        else:
            assert np.array_equal(model.labels_, reference_labels)

    # 3. A generic wavelet the lifting kernels do not cover falls back to
    #    the numpy convolution reference under "auto".
    print(f'\nbackend for db4 under "auto": {resolve_backend("auto", "db4").name}')

    # 4. The backend that produced a model travels with its artifact, so a
    #    serving layer loading it later knows the transform provenance.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.npz"
        auto.export_model().save(path)
        loaded = ClusterModel.load(path)
        print(f"artifact metadata transform_backend: "
              f"{loaded.metadata['transform_backend']}")


if __name__ == "__main__":
    main()
