"""Observability walkthrough: traces, stage breakdown, Prometheus, slow ring.

Stands the HTTP edge up in front of a multi-process serving plane, drives
mixed traffic through it (healthy predicts, a deadline violation, a
malformed request) and then reads everything back out the way an operator
would:

1. every response carries an ``X-Trace-Id`` header, and structured JSON
   logs (opt-in) carry the same id -- one grep correlates a request across
   the edge, the dispatcher and the worker that answered it;
2. the per-stage latency table shows *where* the round trip went:
   admission wait, queue wait, the shm/pickle hop into the worker, the
   model lookup, the predict pass, the hop back and the collect;
3. ``GET /metrics`` content-negotiates -- JSON for dashboards,
   Prometheus text exposition 0.0.4 for a stock scraper;
4. ``GET /debug/slow`` lists the slowest captured traces plus every
   deadline violation and error, with full span breakdowns.

Run with::

    python examples/observability.py [--output-dir DIR]

With ``--output-dir`` the scraped artifacts land on disk as
``metrics.prom`` (text exposition), ``metrics.json`` (snapshot) and
``slow-traces.json`` (the capture ring) -- the same three files the
nightly benchmark workflow uploads.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AdaWave
from repro.datasets import running_example
from repro.obs import enable_json_logging
from repro.serve import EdgeThread, ProcessPoolService


def _post(url: str, body: bytes, headers: dict):
    request = urllib.request.Request(url, data=body, headers=headers)
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, response.read(), response.headers


def _get(url: str, accept: str | None = None):
    request = urllib.request.Request(url)
    if accept:
        request.add_header("Accept", accept)
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.read()


def stage_table(snapshot: dict) -> str:
    """Render the per-stage latency histograms as an aligned text table."""
    rows = [("stage", "count", "mean_ms", "max_ms", "total_ms")]
    for stage, series in snapshot["stages"].items():
        mean = series["seconds_total"] / max(series["count"], 1)
        rows.append((
            stage,
            str(series["count"]),
            f"{mean * 1e3:.3f}",
            f"{series['max'] * 1e3:.3f}",
            f"{series['seconds_total'] * 1e3:.3f}",
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output-dir", type=Path, default=None,
        help="write metrics.prom / metrics.json / slow-traces.json here",
    )
    args = parser.parse_args()

    enable_json_logging()  # JSON-lines on stderr, trace ids included

    data = running_example(noise_fraction=0.75, n_per_cluster=1200, seed=0)
    frozen = AdaWave(scale=64, bounds=([0, 0], [1, 1])).fit(data.points).export_model()
    rng = np.random.default_rng(1)

    with tempfile.TemporaryDirectory() as store:
        with ProcessPoolService(store, n_workers=2) as service:
            service.register("live", frozen)
            with EdgeThread(service) as edge:
                # -- 1. traced traffic ------------------------------------
                print("== requests ==")
                for index in range(8):
                    body = json.dumps(
                        {"points": rng.uniform(size=(500, 2)).tolist()}
                    ).encode()
                    status, _, headers = _post(
                        f"{edge.url}/predict/live", body,
                        {"Content-Type": "application/json"},
                    )
                    if index < 3:
                        print(f"predict -> {status}  "
                              f"X-Trace-Id: {headers['X-Trace-Id']}")

                # A deadline violation and a malformed request, so the
                # capture ring and per-status counters have failures too.
                for extra_headers in (
                    {"X-Deadline-Ms": "0"},
                    {"X-Deadline-Ms": "soon"},
                ):
                    try:
                        _post(
                            f"{edge.url}/predict/live",
                            json.dumps({"points": [[0.5, 0.5]]}).encode(),
                            {"Content-Type": "application/json",
                             **extra_headers},
                        )
                    except urllib.error.HTTPError as error:
                        print(f"{extra_headers} -> {error.code}")

                # -- 2. stage breakdown -----------------------------------
                snapshot = json.loads(_get(f"{edge.url}/metrics"))
                print("\n== per-stage latency ==")
                print(stage_table(snapshot))

                print("\n== per-route edge latency ==")
                for route, series in snapshot["edge"]["routes"].items():
                    latency = series["latency"]
                    print(f"{route:12s} n={series['count']:<4d} "
                          f"p50={latency['p50'] * 1e3:.2f}ms "
                          f"p99={latency['p99'] * 1e3:.2f}ms "
                          f"status={series['by_status']}")

                # -- 3. Prometheus exposition -----------------------------
                prom = _get(f"{edge.url}/metrics", accept="text/plain")
                print("\n== prometheus exposition (first 12 lines) ==")
                print("\n".join(prom.decode().splitlines()[:12]))

                # -- 4. slow-trace capture --------------------------------
                slow = json.loads(_get(f"{edge.url}/debug/slow"))
                print(f"\n== slow traces ==")
                print(f"captured {len(slow['slowest'])} slowest of "
                      f"{slow['count']} traces; "
                      f"{slow['deadline_violations']} deadline violations")
                worst = slow["slowest"][0]
                print(f"worst: {worst['total_seconds'] * 1e3:.2f}ms "
                      f"(coverage {worst['coverage']:.1%})")
                for span in worst["spans"]:
                    print(f"    {span['stage']:16s} "
                          f"{span['seconds'] * 1e3:8.3f}ms")

                if args.output_dir is not None:
                    args.output_dir.mkdir(parents=True, exist_ok=True)
                    (args.output_dir / "metrics.prom").write_bytes(prom)
                    (args.output_dir / "metrics.json").write_text(
                        json.dumps(snapshot, indent=2)
                    )
                    (args.output_dir / "slow-traces.json").write_text(
                        json.dumps(slow, indent=2)
                    )
                    print(f"\nwrote artifacts to {args.output_dir}/")


if __name__ == "__main__":
    main()
