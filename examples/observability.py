"""Observability walkthrough: traces, stage breakdown, Prometheus, slow ring.

Stands the HTTP edge up in front of a multi-process serving plane, drives
mixed traffic through it (healthy predicts, a deadline violation, a
malformed request) and then reads everything back out the way an operator
would:

1. every response carries an ``X-Trace-Id`` header, and structured JSON
   logs (opt-in) carry the same id -- one grep correlates a request across
   the edge, the dispatcher and the worker that answered it;
2. the per-stage latency table shows *where* the round trip went:
   admission wait, queue wait, the shm/pickle hop into the worker, the
   model lookup, the predict pass, the hop back and the collect;
3. ``GET /metrics`` content-negotiates -- JSON for dashboards,
   Prometheus text exposition 0.0.4 for a stock scraper;
4. ``GET /debug/slow`` lists the slowest captured traces plus every
   deadline violation and error, with full span breakdowns;
5. a :func:`~repro.obs.attach_monitor` daemon samples worker CPU/RSS,
   event-loop lag and the windowed request-rate series on a cadence, and
   ``/healthz`` / ``/readyz`` grade themselves from those samples;
6. an availability SLO burns when error traffic floods in, and its
   burn-rate alert fires exactly once instead of once per tick;
7. ``POST /debug/profile`` captures a sampling profile of the serving
   process and returns collapsed stacks ready for any flame-graph tool.

Run with::

    python examples/observability.py [--output-dir DIR]

With ``--output-dir`` the scraped artifacts land on disk as
``metrics.prom`` (text exposition), ``metrics.json`` (snapshot),
``slow-traces.json`` (the capture ring) and ``flame.txt`` (collapsed
stacks) -- the same files the nightly benchmark workflow uploads.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AdaWave
from repro.datasets import running_example
from repro.obs import Objective, SloMonitor, attach_monitor, enable_json_logging
from repro.serve import EdgeThread, ProcessPoolService


def _post(url: str, body: bytes, headers: dict):
    request = urllib.request.Request(url, data=body, headers=headers)
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, response.read(), response.headers


def _get(url: str, accept: str | None = None):
    request = urllib.request.Request(url)
    if accept:
        request.add_header("Accept", accept)
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.read()


def stage_table(snapshot: dict) -> str:
    """Render the per-stage latency histograms as an aligned text table."""
    rows = [("stage", "count", "mean_ms", "max_ms", "total_ms")]
    for stage, series in snapshot["stages"].items():
        mean = series["seconds_total"] / max(series["count"], 1)
        rows.append((
            stage,
            str(series["count"]),
            f"{mean * 1e3:.3f}",
            f"{series['max'] * 1e3:.3f}",
            f"{series['seconds_total'] * 1e3:.3f}",
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output-dir", type=Path, default=None,
        help="write metrics.prom / metrics.json / slow-traces.json here",
    )
    args = parser.parse_args()

    enable_json_logging()  # JSON-lines on stderr, trace ids included

    data = running_example(noise_fraction=0.75, n_per_cluster=1200, seed=0)
    frozen = AdaWave(scale=64, bounds=([0, 0], [1, 1])).fit(data.points).export_model()
    rng = np.random.default_rng(1)

    with tempfile.TemporaryDirectory() as store:
        with ProcessPoolService(store, n_workers=2) as service:
            service.register("live", frozen)
            with EdgeThread(service) as edge:
                # Continuous monitoring: one daemon thread rolls the
                # serving aggregates into the windowed time-series store,
                # samples parent + worker CPU/RSS from /proc, probes the
                # edge event loop and evaluates the SLO -- every 100ms.
                alerts: list[dict] = []

                def on_alert(payload: dict) -> None:
                    alerts.append(payload)

                slos = SloMonitor(
                    [Objective(
                        name="availability", objective=0.99,
                        windows=((2.0, 5.0), (0.5, 5.0)),
                    )],
                    telemetry=service.telemetry,
                    on_alert=on_alert,
                )
                attach_monitor(service, interval=0.1, edge=edge, slos=slos)

                # -- 1. traced traffic ------------------------------------
                print("== requests ==")
                for index in range(8):
                    body = json.dumps(
                        {"points": rng.uniform(size=(500, 2)).tolist()}
                    ).encode()
                    status, _, headers = _post(
                        f"{edge.url}/predict/live", body,
                        {"Content-Type": "application/json"},
                    )
                    if index < 3:
                        print(f"predict -> {status}  "
                              f"X-Trace-Id: {headers['X-Trace-Id']}")

                # A deadline violation and a malformed request, so the
                # capture ring and per-status counters have failures too.
                for extra_headers in (
                    {"X-Deadline-Ms": "0"},
                    {"X-Deadline-Ms": "soon"},
                ):
                    try:
                        _post(
                            f"{edge.url}/predict/live",
                            json.dumps({"points": [[0.5, 0.5]]}).encode(),
                            {"Content-Type": "application/json",
                             **extra_headers},
                        )
                    except urllib.error.HTTPError as error:
                        print(f"{extra_headers} -> {error.code}")

                # -- 2. stage breakdown -----------------------------------
                snapshot = json.loads(_get(f"{edge.url}/metrics"))
                print("\n== per-stage latency ==")
                print(stage_table(snapshot))

                print("\n== per-route edge latency ==")
                for route, series in snapshot["edge"]["routes"].items():
                    latency = series["latency"]
                    print(f"{route:12s} n={series['count']:<4d} "
                          f"p50={latency['p50'] * 1e3:.2f}ms "
                          f"p99={latency['p99'] * 1e3:.2f}ms "
                          f"status={series['by_status']}")

                # -- 3. Prometheus exposition -----------------------------
                prom = _get(f"{edge.url}/metrics", accept="text/plain")
                print("\n== prometheus exposition (first 12 lines) ==")
                print("\n".join(prom.decode().splitlines()[:12]))

                # -- 4. slow-trace capture --------------------------------
                slow = json.loads(_get(f"{edge.url}/debug/slow"))
                print(f"\n== slow traces ==")
                print(f"captured {len(slow['slowest'])} slowest of "
                      f"{slow['count']} traces; "
                      f"{slow['deadline_violations']} deadline violations")
                worst = slow["slowest"][0]
                print(f"worst: {worst['total_seconds'] * 1e3:.2f}ms "
                      f"(coverage {worst['coverage']:.1%})")
                for span in worst["spans"]:
                    print(f"    {span['stage']:16s} "
                          f"{span['seconds'] * 1e3:8.3f}ms")

                # -- 5. continuous monitoring -----------------------------
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if service.monitor.samples >= 3:
                        break
                    time.sleep(0.05)
                health = json.loads(_get(f"{edge.url}/healthz"))
                ready = json.loads(_get(f"{edge.url}/readyz"))
                series = json.loads(_get(f"{edge.url}/metrics"))["series"]["series"]
                print("\n== continuous monitoring ==")
                print(f"healthz: {health['status']}  reasons={health['reasons']}")
                print(f"readyz:  ready={ready['ready']}")
                for name in (
                    "requests.count", "proc.parent.rss_bytes",
                    "proc.worker.0.rss_bytes", "workers.alive",
                    "edge.loop_lag_seconds",
                ):
                    if name in series:
                        entry = series[name]
                        value = entry.get("rate", entry.get("latest"))
                        print(f"  {name:26s} {entry['kind']:9s} {value}")

                # -- 6. SLO burn-rate alerting ----------------------------
                # Flood the edge with requests for a model that does not
                # exist: every 404 burns availability budget, and the
                # multi-window burn alert fires exactly once.
                print("\n== slo burn ==")
                for _ in range(40):
                    try:
                        _post(
                            f"{edge.url}/predict/ghost",
                            json.dumps({"points": [[0.5, 0.5]]}).encode(),
                            {"Content-Type": "application/json"},
                        )
                    except urllib.error.HTTPError:
                        pass
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline and not alerts:
                    time.sleep(0.05)
                if alerts:
                    burn = alerts[0]["burn_rates"][0]
                    print(f"alert fired once: objective="
                          f"{alerts[0]['objective']} "
                          f"burn={burn['burn']:.1f}x budget "
                          f"(threshold {burn['threshold']}x)")
                health = json.loads(_get(f"{edge.url}/healthz"))
                print(f"healthz now: {health['status']}  "
                      f"reasons={health['reasons']}")

                # -- 7. flame graph on demand -----------------------------
                # Only the parent process's threads are visible (the
                # workers predict in their own processes); profile a
                # single-process ClusteringService to see predict bodies.
                _post(f"{edge.url}/debug/profile",
                      json.dumps({"action": "start", "hz": 200}).encode(), {})
                for _ in range(20):
                    _post(
                        f"{edge.url}/predict/live",
                        json.dumps(
                            {"points": rng.uniform(size=(2000, 2)).tolist()}
                        ).encode(),
                        {"Content-Type": "application/json"},
                    )
                _post(f"{edge.url}/debug/profile",
                      json.dumps({"action": "stop"}).encode(), {})
                flame = _get(f"{edge.url}/debug/profile").decode()
                lines = flame.splitlines()
                print("\n== collapsed stacks (top 5 of "
                      f"{len(lines)}; feed to flamegraph.pl) ==")
                for line in lines[:5]:
                    stack, count = line.rsplit(" ", 1)
                    frames = stack.split(";")
                    print(f"  {count:>4s}  {';'.join(frames[-3:])}")

                if args.output_dir is not None:
                    args.output_dir.mkdir(parents=True, exist_ok=True)
                    (args.output_dir / "metrics.prom").write_bytes(prom)
                    (args.output_dir / "metrics.json").write_text(
                        json.dumps(snapshot, indent=2)
                    )
                    (args.output_dir / "slow-traces.json").write_text(
                        json.dumps(slow, indent=2)
                    )
                    (args.output_dir / "flame.txt").write_text(flame)
                    print(f"\nwrote artifacts to {args.output_dir}/")


if __name__ == "__main__":
    main()
