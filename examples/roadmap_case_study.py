"""Roadmap case study: find dense city clusters in a noisy road network.

Reproduces Fig. 9 on the synthetic road-network simulant: most points are
arterial-road or countryside "noise"; AdaWave picks out the dense street
grids of the simulated cities.  For each detected cluster the script reports
which city it corresponds to and how much of that city it covers.

Run with::

    python examples/roadmap_case_study.py
"""

from __future__ import annotations

import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import AdaWave
from repro.datasets import roadmap_simulant
from repro.metrics import evaluate_clustering


def main() -> None:
    data = roadmap_simulant(n_samples=20000, seed=0)
    cities = data.metadata["cities"]
    print(f"road network: {data.n_samples} segments, "
          f"{data.noise_fraction:.0%} arterial/countryside noise, {len(cities)} cities")

    model = AdaWave(scale=128).fit(data.points)
    scores = evaluate_clustering(data.labels, model.labels_)
    print(f"AdaWave found {model.n_clusters_} clusters, AMI = {scores.ami:.3f}")
    print()

    # Map every detected cluster to the city providing most of its points.
    print(f"{'cluster':>7}  {'size':>6}  {'dominant city':<15}  {'coverage of city':>16}")
    for cluster in sorted(set(model.labels_[model.labels_ >= 0].tolist())):
        members = np.flatnonzero(model.labels_ == cluster)
        true_of_members = data.labels[members]
        dominant = Counter(true_of_members[true_of_members >= 0].tolist()).most_common(1)
        if not dominant:
            print(f"{cluster:>7}  {len(members):>6}  {'(noise only)':<15}")
            continue
        city_id, _count = dominant[0]
        city_size = int(np.sum(data.labels == city_id))
        covered = int(np.sum((data.labels == city_id) & (model.labels_ == cluster)))
        print(
            f"{cluster:>7}  {len(members):>6}  {cities[city_id]:<15}  "
            f"{covered / max(city_size, 1):>15.0%}"
        )


if __name__ == "__main__":
    main()
