"""Multi-process serving walkthrough: worker pool, hot swap, telemetry.

The single-process :class:`~repro.serve.ClusteringService` tops out at one
core per model (its micro-batch leader serializes the passes).  This example
stands up the multi-process serving plane instead:

1. freeze two models and stand up a :class:`~repro.serve.ProcessPoolService`
   -- worker processes holding the live model memory-mapped against a shared
   content-addressed :class:`~repro.serve.ArtifactStore`;
2. hammer it with concurrent traffic from many threads;
3. hot-swap the served model blue/green *while that traffic is running* --
   every answer matches a version that was live when it was asked;
4. saturate a tiny admission queue and watch explicit ``Overloaded``
   rejections instead of unbounded queueing;
5. read the telemetry snapshot: per-model latency quantiles, batch sizes,
   queue depth, swap count.

Run with::

    python examples/multiprocess_serving.py
"""

from __future__ import annotations

import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AdaWave, ProcessPoolService
from repro.serve import Overloaded
from repro.datasets import running_example


def main() -> None:
    # 1. Two distinguishable frozen models (think: yesterday's and today's).
    blue_data = running_example(noise_fraction=0.75, n_per_cluster=1200, seed=0)
    green_data = running_example(noise_fraction=0.55, n_per_cluster=1200, seed=9)
    blue = AdaWave(scale=128).fit(blue_data.points).export_model()
    green = AdaWave(scale=128).fit(green_data.points).export_model()
    queries = np.random.default_rng(1).uniform(
        blue_data.points.min(0), blue_data.points.max(0), size=(4000, 2)
    )
    answers = {0: blue.predict(queries), 1: green.predict(queries)}

    with tempfile.TemporaryDirectory() as tmp:
        with ProcessPoolService(tmp, n_workers=2, max_pending=64) as service:
            service.register("prod", blue)
            print(f"plane  : {service}")
            print(f"store  : {service.store}")

            # 2 + 3. Concurrent traffic while the model hot-swaps underneath.
            def query(index: int) -> bool:
                got = service.predict("prod", queries)
                return any(np.array_equal(got, want) for want in answers.values())

            with ThreadPoolExecutor(max_workers=8) as callers:
                inflight = [callers.submit(query, i) for i in range(24)]
                version = service.swap("prod", green)  # blue/green, mid-traffic
                inflight += [callers.submit(query, i) for i in range(24)]
                consistent = sum(f.result() for f in inflight)
            print(f"swap   : {version} published mid-traffic, "
                  f"{consistent}/48 answers consistent with a live version")

            # 4. Saturate a tiny queue: load is shed loudly, never dropped.
            rejected = 0
            with ProcessPoolService(
                Path(tmp) / "tiny", n_workers=1, max_pending=2,
                max_batch_delay=0.2, max_batch_requests=3,
            ) as tiny:
                tiny.register("prod", blue)
                admitted = []
                for _ in range(12):
                    try:
                        admitted.append(tiny.submit("prod", queries))
                    except Overloaded:
                        rejected += 1
                for future in admitted:
                    future.result()  # everything admitted resolves exactly
            print(f"shed   : {rejected}/12 requests rejected with Overloaded, "
                  f"{len(admitted)} served")

            # 5. The telemetry snapshot is the plane's cockpit.
            snapshot = service.telemetry.snapshot()
            stats = snapshot["predict"]["prod"]
            print(f"metrics: {stats['count']} passes over {stats['rows']} rows, "
                  f"p50={stats['latency']['p50'] * 1e3:.2f}ms "
                  f"p99={stats['latency']['p99'] * 1e3:.2f}ms, "
                  f"max batch {stats['batch_size']['max']} rows")
            print(f"         swaps={snapshot['swaps']['count']} "
                  f"(live: {snapshot['swaps']['last_version']}), "
                  f"peak queue depth={snapshot['queue']['max_depth']}")


if __name__ == "__main__":
    main()
