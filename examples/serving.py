"""Serving walkthrough: fit -> freeze -> save -> load -> predict -> registry.

AdaWave's fitted state compresses into a tiny frozen artifact (quantizer
bounds + the surviving transformed-cell -> cluster map), so a clustering can
be trained once on an ingestion host and served anywhere -- the training
points never travel.  This example walks the full serving flow:

1. fit a model on the paper's running example and freeze it;
2. round-trip the artifact through ``save``/``load``;
3. label brand-new points with a pure ``O(cells)``-memory lookup;
4. ingest a second dataset in parallel shards, straight into a
   :class:`~repro.serve.ClusteringService`;
5. answer mixed-model queries from many threads through the micro-batching
   service front door.

Run with::

    python examples/serving.py
"""

from __future__ import annotations

import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AdaWave, ClusterModel, ClusteringService
from repro.datasets import running_example


def main() -> None:
    # 1. Fit once, freeze the clustering into a shippable artifact.
    data = running_example(noise_fraction=0.75, n_per_cluster=1500, seed=0)
    model = AdaWave(scale=128).fit(data.points)
    frozen = model.export_model()
    print(f"fitted : {model.n_clusters_} clusters on {model.n_seen_} points")
    print(f"frozen : {frozen} "
          f"({frozen.n_cells} cells vs {model.n_seen_} training points)")

    with tempfile.TemporaryDirectory() as tmp:
        # 2. Save and re-load: the npz + JSON-header format is versioned, so
        #    incompatible or corrupted files are rejected at load time.
        path = frozen.save(Path(tmp) / "running_example.npz")
        served = ClusterModel.load(path)
        print(f"saved  : {path.stat().st_size} bytes on disk")

        # 3. Serving is a pure lookup -- training points reproduce their fit
        #    labels exactly, new points are labelled without any refit.
        assert np.array_equal(served.predict(data.points), model.labels_)
        rng = np.random.default_rng(1)
        fresh = rng.uniform(data.points.min(0), data.points.max(0), size=(5000, 2))
        fresh_labels = served.predict(fresh)
        print(f"predict: {np.mean(fresh_labels >= 0):.1%} of 5000 fresh "
              "uniform points land in a cluster")

        # 4. Stand up a service hosting several named models.  The second
        #    model is ingested in parallel shards (the quantized grid is an
        #    associative sketch, so sharded ingestion is exact) without ever
        #    materialising per-point state.
        service = ClusteringService()
        service.load("running-example", path)
        second = running_example(noise_fraction=0.6, n_per_cluster=1000, seed=7)
        bounds = (second.points.min(axis=0), second.points.max(axis=0))
        service.ingest(
            "second-stream",
            np.array_split(second.points, 16),
            bounds=bounds,
            scale=128,
            n_workers=4,
        )
        print(f"service: hosting {service.registry.names()}")

        # 5. Hammer the service from 8 threads with mixed-model queries;
        #    requests for the same model coalesce into micro-batches.
        def query(i: int) -> bool:
            if i % 2:
                got = service.predict("running-example", data.points[i::13])
                want = model.labels_[i::13]
            else:
                got = service.predict("second-stream", second.points[i::13])
                want = service.registry.get("second-stream").predict(
                    second.points[i::13]
                )
            return bool(np.array_equal(got, want))

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(query, range(64)))
        print(f"traffic: {sum(outcomes)}/64 concurrent queries exact, "
              f"{service.n_requests_} requests served in "
              f"{service.n_batches_} vectorized passes")


if __name__ == "__main__":
    main()
