"""Letting AdaWave pick its own scale: the grid-pyramid tuning walkthrough.

The paper fixes ``scale = 128`` for every experiment.  ``scale="tune"``
removes that last hand-set knob: AdaWave quantizes once at a fine
power-of-two base resolution, derives every coarser dyadic resolution from
that single sketch (exactly -- no second pass over the points), clusters
each one with the cheap grid-side stages and keeps the resolution whose
clustering is most defensible under three label-free criteria (partition
stability across adjacent scales, a noise-mass sanity band, threshold
sharpness).

This script runs the tuned estimator on the paper's noisy synthetic suites,
prints the per-candidate score table, compares the choice against every
fixed power-of-two scale using the ground-truth labels the tuner never saw,
and shows the streaming variant (ingest fine, tune at finalize) plus the
tuning provenance a served model carries.

Run with::

    python examples/tuning.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AdaWave
from repro.datasets import noise_sweep_dataset
from repro.experiments import format_table
from repro.experiments.runner import ExperimentResult
from repro.metrics import ami_on_true_clusters


def score_table(model: AdaWave) -> str:
    """Render the tuner's per-candidate score table."""
    rows = model.tune_result_.table()
    result = ExperimentResult(
        experiment="per-candidate scores (no ground truth used)",
        columns=list(rows[0].keys()),
    )
    for row in rows:
        result.add_row(**{**row, "selected": "<-" if row["selected"] else ""})
    return format_table(result)


def main() -> None:
    # 1. A heavily noisy suite: five arbitrarily shaped clusters, 75 % noise.
    data = noise_sweep_dataset(noise_fraction=0.75, n_per_cluster=1500, seed=0)
    print(f"dataset: {data}")

    # 2. One fit, no scale given: the estimator sweeps the dyadic pyramid.
    model = AdaWave(scale="tune").fit(data.points)
    print(f"\nchosen scale      : {model.tune_result_.scale} "
          f"(level {model.tune_result_.level}, "
          f"threshold {model.threshold_:.2f})")
    print(f"detected clusters : {model.n_clusters_}")
    print()
    print(score_table(model))

    # 3. Referee the choice with the labels the tuner never saw.
    print("\nground-truth AMI per fixed power-of-two scale (tuner never saw these):")
    best = 0.0
    for scale in (8, 16, 32, 64, 128, 256):
        ami = ami_on_true_clusters(
            data.labels, AdaWave(scale=scale).fit(data.points).labels_
        )
        best = max(best, ami)
        print(f"  scale {scale:>3}: AMI {ami:.3f}")
    tuned_ami = ami_on_true_clusters(data.labels, model.labels_)
    print(f"  tuned ({model.tune_result_.scale}): AMI {tuned_ami:.3f} "
          f"({tuned_ami / best:.1%} of the best fixed scale)")

    # 4. Streaming: ingest at the fine base resolution, tune at finalize.
    #    With the same bounds the stream reproduces the one-shot tuned fit
    #    exactly -- the sketch is mergeable and the pyramid is exact.
    bounds = (data.points.min(axis=0), data.points.max(axis=0))
    one_shot = AdaWave(scale="tune", bounds=bounds).fit(data.points)
    stream = AdaWave(scale="tune", bounds=bounds)
    for batch in np.array_split(data.points, 8):
        stream.partial_fit(batch)
    stream.finalize()
    print(f"\nstreaming tune over 8 batches: chose scale "
          f"{stream.tune_result_.scale}, labels identical to one-shot: "
          f"{np.array_equal(stream.labels_, one_shot.labels_)}")

    # 5. Provenance: an exported model carries its own tuning evidence.
    frozen = model.export_model()
    tuning = frozen.metadata["tuning"]
    print(f"exported ClusterModel tuning provenance: method={tuning['method']!r}, "
          f"base_scale={tuning['base_scale']}, chosen={tuning['chosen_scale']}, "
          f"{tuning['n_candidates']} candidates scored")

    # 6. The threshold axis: sweep every denoising level policy from the
    #    same quantization.  global-hard is the paper's pipeline (the elbow
    #    criterion *is* the global hard cut); the other three add a
    #    MAD-scaled VisuShrink pass in the wavelet domain.  The mass-
    #    retention column is what keeps the sweep honest -- an erosive
    #    policy inflates sharpness and concentration but pays for the
    #    cluster mass it discards.
    swept = AdaWave(threshold="tune").fit(data.points)
    print(f"\nthreshold sweep chose: {swept.threshold_method_!r}")
    print()
    print(score_table(swept))

    print("\nground-truth AMI per threshold policy (tuner never saw these):")
    for policy in ("global-hard", "global-soft", "per-level-hard", "per-level-soft"):
        fitted = AdaWave(threshold=policy).fit(data.points)
        ami = ami_on_true_clusters(data.labels, fitted.labels_)
        marker = "  <- swept pick" if policy == swept.threshold_method_ else ""
        print(f"  {policy:>15}: AMI {ami:.3f}  "
              f"({fitted.n_clusters_} clusters){marker}")


if __name__ == "__main__":
    main()
