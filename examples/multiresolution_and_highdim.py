"""Multi-resolution clustering and the sparse grid in higher dimensions.

Two of AdaWave's secondary properties, demonstrated on generated data:

1. *Multi-resolution*: the same quantized feature space clustered at several
   wavelet decomposition levels -- fine levels separate nearby groups, coarse
   levels merge them (Section IV-F).
2. *Memory-friendly high dimensional clustering*: the sparse "grid labeling"
   structure stores only occupied cells, so AdaWave runs on data whose dense
   grid would never fit in memory (Section IV-A), here a 10-dimensional
   Gaussian mixture with noise.

Run with::

    python examples/multiresolution_and_highdim.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import AdaWave, MultiResolutionAdaWave
from repro.datasets import running_example
from repro.metrics import ami_on_true_clusters


def multiresolution_demo() -> None:
    data = running_example(noise_fraction=0.6, n_per_cluster=1500, seed=0)
    model = MultiResolutionAdaWave(scale=128, levels=(1, 2, 3)).fit(data.points)
    print("multi-resolution clustering of the running example")
    for level, count in sorted(model.cluster_counts().items()):
        labels = model.labels_by_level()[level]
        ami = ami_on_true_clusters(data.labels, labels)
        grid = 128 // (2**level)
        print(f"  level {level}: transformed grid {grid}x{grid}, "
              f"{count} clusters, AMI {ami:.3f}")
    print()


def high_dimensional_demo() -> None:
    rng = np.random.default_rng(0)
    dimension = 10
    centers = rng.normal(scale=4.0, size=(4, dimension))
    cluster_points = np.vstack(
        [rng.normal(center, 0.4, size=(800, dimension)) for center in centers]
    )
    noise = rng.uniform(
        cluster_points.min(axis=0), cluster_points.max(axis=0), size=(2000, dimension)
    )
    points = np.vstack([cluster_points, noise])
    labels = np.concatenate([np.repeat(np.arange(4), 800), np.full(2000, -1)])

    model = AdaWave(scale=12).fit(points)
    quantization = model.result_.quantization
    dense_cells = quantization.grid.n_total_cells
    occupied = quantization.grid.n_occupied
    print(f"{dimension}-dimensional mixture with 38% noise")
    print(f"  dense grid would need {dense_cells:,} cells")
    print(f"  sparse grid stores    {occupied:,} cells "
          f"({dense_cells / occupied:,.0f}x less memory)")
    print(f"  clusters found: {model.n_clusters_}, "
          f"AMI {ami_on_true_clusters(labels, model.labels_):.3f}")


if __name__ == "__main__":
    multiresolution_demo()
    high_dimensional_demo()
