"""Tests for repro.metrics: contingency, (adjusted) mutual information, ARI."""

import numpy as np
import pytest

from repro.metrics import (
    adjusted_mutual_info,
    adjusted_rand_index,
    ami_on_true_clusters,
    contingency_matrix,
    entropy,
    evaluate_clustering,
    expected_mutual_info,
    mutual_info,
    normalized_mutual_info,
    purity_score,
)


class TestContingency:
    def test_simple_table(self):
        table = contingency_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(table, [[1, 1], [0, 2]])

    def test_handles_negative_noise_labels(self):
        table = contingency_matrix([-1, 0, 0], [0, 0, 1])
        assert table.shape == (2, 2)
        assert table.sum() == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            contingency_matrix([0, 1], [0, 1, 2])

    def test_entropy_uniform(self):
        assert entropy([0, 1, 2, 3]) == pytest.approx(np.log(4))

    def test_entropy_single_class_is_zero(self):
        assert entropy([5, 5, 5]) == 0.0

    def test_purity_perfect(self):
        assert purity_score([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_purity_half(self):
        assert purity_score([0, 1, 0, 1], [0, 0, 0, 0]) == 0.5


class TestMutualInfo:
    def test_identical_partitions(self):
        labels = [0, 0, 1, 1, 2, 2]
        assert mutual_info(labels, labels) == pytest.approx(entropy(labels))

    def test_independent_partitions_near_zero(self):
        labels_true = [0, 0, 1, 1]
        labels_pred = [0, 1, 0, 1]
        assert mutual_info(labels_true, labels_pred) == pytest.approx(0.0, abs=1e-12)

    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 100)
        b = rng.integers(0, 3, 100)
        assert mutual_info(a, b) >= 0.0

    def test_expected_mi_small_example(self):
        # For a 2x2 table with marginals (2,2)/(2,2) over 4 items the EMI is
        # strictly between 0 and the maximal MI log(2).
        emi = expected_mutual_info(np.array([2, 2]), np.array([2, 2]))
        assert 0.0 < emi < np.log(2)

    def test_expected_mi_mismatched_totals(self):
        with pytest.raises(ValueError):
            expected_mutual_info(np.array([2, 2]), np.array([3, 2]))


class TestAdjustedMutualInfo:
    def test_perfect_agreement_is_one(self):
        labels = [0, 0, 1, 1, 2, 2, 2]
        assert adjusted_mutual_info(labels, labels) == pytest.approx(1.0)

    def test_label_permutation_invariance(self):
        labels_true = [0, 0, 1, 1, 2, 2]
        labels_pred = [5, 5, 9, 9, 1, 1]
        assert adjusted_mutual_info(labels_true, labels_pred) == pytest.approx(1.0)

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(1)
        labels_true = rng.integers(0, 5, 400)
        labels_pred = rng.integers(0, 5, 400)
        assert abs(adjusted_mutual_info(labels_true, labels_pred)) < 0.05

    def test_expected_mi_matches_permutation_simulation(self):
        """E[MI] under the permutation model, checked by direct Monte Carlo."""
        rng = np.random.default_rng(0)
        labels_true = np.array([0, 0, 1, 1, 2, 2, 0, 1, 2, 0])
        labels_pred = np.array([0, 0, 1, 2, 2, 2, 1, 0, 1, 2])
        table = contingency_matrix(labels_true, labels_pred)
        analytic = expected_mutual_info(table.sum(axis=1), table.sum(axis=0))
        simulated = np.mean(
            [mutual_info(labels_true, rng.permutation(labels_pred)) for _ in range(3000)]
        )
        assert analytic == pytest.approx(simulated, abs=0.02)

    def test_average_methods_differ(self):
        labels_true = [0, 0, 0, 1, 1, 2]
        labels_pred = [0, 0, 1, 1, 2, 2]
        arithmetic = adjusted_mutual_info(labels_true, labels_pred, "arithmetic")
        maximum = adjusted_mutual_info(labels_true, labels_pred, "max")
        assert maximum <= arithmetic + 1e-12

    def test_invalid_average_method(self):
        with pytest.raises(ValueError):
            adjusted_mutual_info([0, 1], [0, 1], "harmonic")

    def test_single_cluster_both_sides(self):
        assert adjusted_mutual_info([0, 0, 0], [1, 1, 1]) == 1.0

    def test_symmetry(self):
        a = [0, 0, 1, 1, 2, 2, 0]
        b = [0, 1, 1, 2, 2, 0, 0]
        assert adjusted_mutual_info(a, b) == pytest.approx(adjusted_mutual_info(b, a))


class TestNormalizedMutualInfo:
    def test_perfect(self):
        assert normalized_mutual_info([0, 1, 0, 1], [1, 0, 1, 0]) == pytest.approx(1.0)

    def test_reference_value(self):
        # Hand computation: MI = log 2, H(U) = log 2, H(V) = (3/2) log 2 + ...
        # giving MI / mean(H) = 0.8 with arithmetic averaging.
        value = normalized_mutual_info([0, 0, 1, 1], [0, 0, 1, 2])
        assert value == pytest.approx(0.8, abs=1e-9)

    def test_bounded(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 3, 50)
        b = rng.integers(0, 4, 50)
        assert 0.0 <= normalized_mutual_info(a, b) <= 1.0


class TestAdjustedRandIndex:
    def test_perfect(self):
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)

    def test_reference_value(self):
        # sklearn adjusted_rand_score([0,0,1,2],[0,0,1,1]) = 0.5714285...
        assert adjusted_rand_index([0, 0, 1, 2], [0, 0, 1, 1]) == pytest.approx(0.571428, abs=1e-5)

    def test_random_near_zero(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 4, 300)
        b = rng.integers(0, 4, 300)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_symmetry(self):
        a = [0, 0, 1, 1, 2]
        b = [0, 1, 1, 2, 2]
        assert adjusted_rand_index(a, b) == pytest.approx(adjusted_rand_index(b, a))


class TestNoiseAwareProtocol:
    def test_noise_points_excluded(self):
        labels_true = [0, 0, 1, 1, -1, -1]
        # Predictions are perfect on the true clusters, nonsense on the noise.
        labels_pred = [5, 5, 7, 7, 5, 7]
        assert ami_on_true_clusters(labels_true, labels_pred) == pytest.approx(1.0)

    def test_all_noise_rejected(self):
        with pytest.raises(ValueError, match="noise"):
            ami_on_true_clusters([-1, -1], [0, 1])

    def test_evaluate_clustering_bundle(self):
        labels_true = [0, 0, 1, 1, -1]
        labels_pred = [0, 0, 1, 1, -1]
        scores = evaluate_clustering(labels_true, labels_pred)
        assert scores.ami == pytest.approx(1.0)
        assert scores.n_clusters_detected == 2
        assert scores.noise_fraction_detected == pytest.approx(0.2)
        assert set(scores.as_dict()) == {
            "ami",
            "nmi",
            "ari",
            "n_clusters_detected",
            "noise_fraction_detected",
        }

    def test_evaluate_without_restriction(self):
        labels_true = [0, 0, 1, 1]
        labels_pred = [0, 1, 1, 1]
        scores = evaluate_clustering(labels_true, labels_pred, restrict_to_true_clusters=False)
        assert 0.0 <= scores.ami <= 1.0
