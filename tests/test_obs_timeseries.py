"""Ring-buffer time series: bucketing, windowed rate/quantile, bounded memory.

The monitoring tentpole's foundation: observations land in ``floor(at /
step)`` buckets of a fixed ring, windowed ``rate()`` reads counters,
windowed ``quantile()`` reads gauges and histograms, old data ages out by
overwrite, and the store enforces a hard cap on series cardinality.
"""

import json

import numpy as np
import pytest

from repro.obs.timeseries import RingSeries, TimeSeriesStore
from repro.serve.metrics import STAGE_BUCKETS, Telemetry


class TestRingSeries:
    def test_counter_rate_over_window(self):
        series = RingSeries("counter", step=1.0, capacity=60)
        for second in range(11):
            series.observe(second * 10.0, at=float(second))
        # 0 -> 100 cumulative over 10 seconds of buckets.
        assert series.rate(10.0, 10.0) == pytest.approx(10.0)
        assert series.latest() == 100.0

    def test_counter_reset_clamps_to_zero_rate(self):
        series = RingSeries("counter", step=1.0, capacity=60)
        series.observe(1000.0, at=0.0)
        series.observe(5.0, at=5.0)  # restarted process: counter fell
        assert series.rate(10.0, 5.0) == 0.0

    def test_rate_needs_two_buckets(self):
        series = RingSeries("counter", step=1.0, capacity=60)
        series.observe(50.0, at=3.0)
        assert series.rate(60.0, 3.0) == 0.0

    def test_gauge_buckets_aggregate_min_max(self):
        series = RingSeries("gauge", step=1.0, capacity=60)
        for value in (5.0, 1.0, 9.0):
            series.observe(value, at=2.3)
        [row] = series.points(10.0, 2.9)
        t, last, low, high = row
        assert (t, last, low, high) == (2.0, 9.0, 1.0, 9.0)

    def test_gauge_quantile_over_bucket_lasts(self):
        series = RingSeries("gauge", step=1.0, capacity=300)
        for second in range(100):
            series.observe(float(second), at=float(second))
        q50 = series.quantile(0.5, 100.0, 99.0)
        assert 45.0 <= q50 <= 55.0
        assert series.quantile(1.0, 100.0, 99.0) == 99.0

    def test_histogram_windowed_quantile_subtracts_baseline(self):
        bounds = (0.001, 0.01, 0.1, 1.0)
        series = RingSeries("histogram", step=1.0, capacity=300, bounds=bounds)
        # Before the window: 100 fast observations (cumulative vector).
        series.observe([100, 0, 0, 0, 0], at=0.0)
        # Inside the window: 10 more, all slow.
        series.observe([100, 0, 0, 10, 0], at=50.0)
        # Window covering only the recent bucket: p50 is the slow bound.
        assert series.quantile(0.5, 5.0, 50.0) == 1.0
        # Window covering everything: the fast mass dominates again.
        assert series.quantile(0.5, 300.0, 50.0) == 0.001

    def test_histogram_fraction_above(self):
        bounds = (0.001, 0.01, 0.1, 1.0)
        series = RingSeries("histogram", step=1.0, capacity=300, bounds=bounds)
        series.observe([75, 0, 0, 25, 0], at=10.0)
        fraction = series.fraction_above(0.01, 60.0, 10.0)
        assert fraction == pytest.approx(0.25)
        assert series.fraction_above(2.0, 60.0, 10.0) == 0.0

    def test_fraction_above_rejects_non_histogram(self):
        series = RingSeries("gauge")
        with pytest.raises(ValueError, match="histogram"):
            series.fraction_above(0.1, 60.0, 0.0)

    def test_ring_overwrites_stale_buckets(self):
        series = RingSeries("gauge", step=1.0, capacity=10)
        series.observe(1.0, at=0.0)
        # 10 steps later the same slot is reused for a new bucket.
        series.observe(2.0, at=10.0)
        points = series.points(100.0, 10.0)
        assert [row[1] for row in points] == [2.0]

    def test_memory_is_fixed(self):
        series = RingSeries("gauge", step=1.0, capacity=50)
        for tick in range(10_000):
            series.observe(float(tick), at=tick * 0.5)
        assert len(series._ids) == 50
        assert len(series.points(1e9, 5_000.0)) <= 50

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            RingSeries("exotic")
        with pytest.raises(ValueError, match="step"):
            RingSeries("gauge", step=0.0)
        with pytest.raises(ValueError, match="capacity"):
            RingSeries("gauge", capacity=1)
        with pytest.raises(ValueError, match="bounds"):
            RingSeries("histogram")
        with pytest.raises(ValueError, match="q must be"):
            RingSeries("gauge").quantile(1.5, 10.0, 0.0)


class TestTimeSeriesStore:
    def test_series_created_on_first_observe(self):
        store = TimeSeriesStore(step=1.0)
        store.observe("a", 1.0, kind="gauge", at=0.0)
        store.observe("b", 5.0, kind="counter", at=0.0)
        assert store.names() == ["a", "b"]
        assert store.latest("a") == 1.0
        assert store.latest("missing") is None

    def test_kind_mismatch_raises(self):
        store = TimeSeriesStore()
        store.observe("x", 1.0, kind="gauge", at=0.0)
        with pytest.raises(ValueError, match="gauge"):
            store.observe("x", 1.0, kind="counter", at=1.0)
        with pytest.raises(ValueError, match="counter"):
            store.rate("x", at=1.0)
        store.observe("c", 1.0, kind="counter", at=0.0)
        with pytest.raises(ValueError, match="rate"):
            store.quantile("c", 0.5, at=1.0)

    def test_max_series_drops_and_counts(self):
        store = TimeSeriesStore(max_series=2)
        store.observe("a", 1.0, at=0.0)
        store.observe("b", 1.0, at=0.0)
        store.observe("c", 1.0, at=0.0)  # over the cap: dropped
        assert store.names() == ["a", "b"]
        assert store.dropped_series == 1
        # Existing series still record.
        store.observe("a", 2.0, at=1.0)
        assert store.latest("a") == 2.0

    def test_to_dict_is_json_able_and_digested(self):
        store = TimeSeriesStore(step=1.0)
        for second in range(10):
            store.observe("reqs", second * 100.0, kind="counter", at=float(second))
            store.observe("depth", float(second % 3), kind="gauge", at=float(second))
        store.observe(
            "lat", [5, 3, 1, 0], kind="histogram", at=9.0,
            bounds=(0.01, 0.1, 1.0),
        )
        view = store.to_dict(at=9.0)
        json.dumps(view)  # JSON-able end to end
        assert view["series"]["reqs"]["kind"] == "counter"
        assert view["series"]["reqs"]["rate"] == pytest.approx(100.0)
        assert view["series"]["depth"]["kind"] == "gauge"
        assert view["series"]["lat"]["p50"] is not None

    def test_unknown_series_queries_are_safe(self):
        store = TimeSeriesStore()
        assert store.rate("ghost", at=1.0) == 0.0
        assert store.quantile("ghost", 0.5, at=1.0) is None
        assert store.fraction_above("ghost", 0.1, at=1.0) is None
        assert store.window("ghost", at=1.0) == []


class TestTelemetryIntegration:
    def test_sample_series_rolls_aggregates_into_store(self):
        telemetry = Telemetry(series=TimeSeriesStore(step=1.0))
        for index in range(20):
            telemetry.record_predict("m", 0.002, 10)
            telemetry.record_stage("worker_predict", 0.002)
            telemetry.record_edge_request("predict", 200, 0.003)
        telemetry.record_edge_request("predict", 500, 0.05)
        telemetry.record_queue_depth(4)
        telemetry.sample_series(at=100.0)
        for index in range(20):
            telemetry.record_predict("m", 0.002, 10)
        telemetry.sample_series(at=105.0)

        store = telemetry.series
        assert store.rate("requests.count", window=10.0, at=105.0) == pytest.approx(4.0)
        assert store.latest("queue.depth") == 4.0
        assert store.latest("edge.predict.errors") == 1.0
        p99 = store.quantile("stage.worker_predict", 0.99, window=10.0, at=105.0)
        assert p99 in STAGE_BUCKETS
        assert store.latest("edge.predict.p50") == pytest.approx(0.003)

    def test_snapshot_carries_uptime_stamp_and_series(self):
        telemetry = Telemetry()
        telemetry.sample_series()
        snapshot = telemetry.snapshot()
        assert snapshot["uptime_seconds"] >= 0.0
        assert snapshot["snapshot_at"] > 0.0
        assert "requests.count" in snapshot["series"]["series"]
        json.dumps(snapshot)

    def test_snapshot_at_is_monotonic_across_snapshots(self):
        telemetry = Telemetry()
        first = telemetry.snapshot()
        second = telemetry.snapshot()
        assert second["snapshot_at"] >= first["snapshot_at"]
        assert second["uptime_seconds"] >= first["uptime_seconds"]

    def test_series_render_as_prometheus_gauges(self):
        from repro.obs.prometheus import parse_exposition_line

        # Real-clock sampling: snapshot() renders the series window at the
        # current monotonic instant, so synthetic stamps would fall outside.
        telemetry = Telemetry(series=TimeSeriesStore(step=0.001))
        telemetry.record_predict("m", 0.002, 5)
        telemetry.record_stage("worker_predict", 0.002)
        telemetry.sample_series()
        telemetry.record_predict("m", 0.002, 5)
        telemetry.sample_series()
        text = telemetry.to_prometheus()
        parsed = {}
        for line in text.splitlines():
            result = parse_exposition_line(line)
            if result is not None:
                name, labels, value = result
                parsed[(name, tuple(sorted(labels.items())))] = value
        assert (
            "repro_series_latest", (("series", "requests.count"),)
        ) in parsed
        assert (
            "repro_series_rate", (("series", "requests.count"),)
        ) in parsed
        assert ("repro_uptime_seconds", ()) in parsed
        quantile_keys = [
            key for key in parsed
            if key[0] == "repro_series_quantile"
            and ("series", "stage.worker_predict") in key[1]
        ]
        assert quantile_keys
