"""Equivalence and registry tests for the pluggable transform backends.

Every registered backend must agree with the ``dwt_batch`` reference on the
approximation half: bit-for-bit for the Haar family under the lifting
backend, within a pinned 1e-9 for the CDF 5/3 / 9/7 lifting kernels.  The
chunked-parallel line transform must be bit-identical to the serial call for
every backend.  The golden fixtures are re-verified per backend: identical
labels end to end, threshold within the usual tolerance.
"""

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

import repro.core.transform as transform_module
from repro.core.adawave import AdaWave
from repro.core.transform import approx_lines
from repro.wavelets.backends import (
    LiftingBackend,
    NumpyBackend,
    TransformBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.wavelets.dwt import dwt_batch

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_NAMES = (
    "running_example",
    "two_moons_noise",
    "roadmap_case",
    "gaussians_4d",
    "uniform_noise_only",
    "single_cluster",
)

# Wavelets the lifting kernels cover; the numpy reference covers everything.
LIFTING_WAVELETS = ("haar", "db1", "bior1.1", "bior2.2", "bior4.4")
HAAR_FAMILY = ("haar", "db1", "bior1.1")

# Coefficient agreement pin for the non-Haar lifting kernels: the lifting
# factorisation rounds differently from the convolution (fewer, different
# intermediate products), but anything beyond the last few ulps of these
# O(1)-magnitude densities is a real kernel bug.
COEFF_ATOL = 1e-9

line_matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=65),  # odd lengths included
    ),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64),
)


def _registered_backend_objects():
    return [get_backend(name) for name in available_backends()]


class TestBackendEquivalence:
    @pytest.mark.parametrize("wavelet", LIFTING_WAVELETS)
    @given(matrix=line_matrices)
    @settings(max_examples=40, deadline=None)
    def test_every_backend_matches_reference(self, wavelet, matrix):
        reference = dwt_batch(matrix, wavelet, approx_only=True)
        for backend in _registered_backend_objects():
            if not backend.supports(wavelet):
                continue
            approx = backend.approx_batch(matrix, wavelet)
            assert approx.shape == reference.shape
            np.testing.assert_allclose(
                approx,
                reference,
                rtol=0.0,
                atol=COEFF_ATOL,
                err_msg=f"{backend.name} diverged from dwt_batch on {wavelet}",
            )

    @pytest.mark.parametrize("wavelet", HAAR_FAMILY)
    @given(matrix=line_matrices)
    @settings(max_examples=40, deadline=None)
    def test_lifting_haar_is_bit_identical(self, wavelet, matrix):
        reference = dwt_batch(matrix, wavelet, approx_only=True)
        lifted = get_backend("lifting").approx_batch(matrix, wavelet)
        np.testing.assert_array_equal(lifted, reference)

    @pytest.mark.parametrize("wavelet", LIFTING_WAVELETS)
    def test_empty_batch(self, wavelet):
        matrix = np.empty((0, 16))
        reference = dwt_batch(matrix, wavelet, approx_only=True)
        for backend in _registered_backend_objects():
            if not backend.supports(wavelet):
                continue
            approx = backend.approx_batch(matrix, wavelet)
            assert approx.shape == reference.shape == (0, 8)

    @pytest.mark.parametrize("wavelet", LIFTING_WAVELETS)
    def test_single_line(self, wavelet):
        matrix = np.arange(32.0).reshape(1, 32)
        reference = dwt_batch(matrix, wavelet, approx_only=True)
        for backend in _registered_backend_objects():
            if not backend.supports(wavelet):
                continue
            np.testing.assert_allclose(
                backend.approx_batch(matrix, wavelet),
                reference,
                rtol=0.0,
                atol=COEFF_ATOL,
            )

    @pytest.mark.parametrize("wavelet", LIFTING_WAVELETS)
    def test_odd_length_pads_like_reference(self, wavelet):
        rng = np.random.default_rng(7)
        matrix = rng.normal(size=(5, 33))
        reference = dwt_batch(matrix, wavelet, approx_only=True)
        for backend in _registered_backend_objects():
            if not backend.supports(wavelet):
                continue
            approx = backend.approx_batch(matrix, wavelet)
            assert approx.shape == (5, 17)
            np.testing.assert_allclose(approx, reference, rtol=0.0, atol=COEFF_ATOL)

    def test_zero_width_raises_everywhere(self):
        for backend in _registered_backend_objects():
            with pytest.raises(ValueError):
                backend.approx_batch(np.empty((3, 0)), "haar")

    def test_approx_only_matches_full_transform(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(11, 40))
        for wavelet in ("haar", "bior2.2", "bior4.4", "db4", "sym4"):
            full_approx, _detail = dwt_batch(matrix, wavelet)
            np.testing.assert_array_equal(
                dwt_batch(matrix, wavelet, approx_only=True), full_approx
            )


class TestChunkedParallelTransform:
    @pytest.mark.parametrize("backend", ["numpy", "lifting"])
    @pytest.mark.parametrize("wavelet", ["haar", "bior2.2", "bior4.4"])
    def test_chunked_parallel_is_bit_identical_to_serial(
        self, monkeypatch, backend, wavelet
    ):
        # Lower the size gate so tiny fixtures exercise the threaded path,
        # and fan wider than this machine's CPU count to cover uneven chunks.
        monkeypatch.setattr(transform_module, "_PARALLEL_MIN_ELEMENTS", 1)
        rng = np.random.default_rng(11)
        for shape in [(7, 16), (128, 128), (33, 64), (2, 8)]:
            matrix = rng.normal(size=shape)
            serial = get_backend(backend).approx_batch(matrix, wavelet)
            for n_workers in (2, 3, 5):
                parallel = approx_lines(
                    matrix, wavelet, backend=backend, n_workers=n_workers
                )
                np.testing.assert_array_equal(
                    parallel,
                    serial,
                    err_msg=f"chunked {backend}/{wavelet} diverged at {shape} "
                    f"with {n_workers} workers",
                )

    def test_small_matrices_stay_serial(self):
        # Below the element gate the serial path runs regardless of workers.
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(4, 8))
        out = approx_lines(matrix, "bior2.2", backend="numpy", n_workers=4)
        np.testing.assert_array_equal(
            out, dwt_batch(matrix, "bior2.2", approx_only=True)
        )


class TestBackendRegistry:
    def test_numpy_and_lifting_always_registered(self):
        names = available_backends()
        assert "numpy" in names
        assert "lifting" in names

    def test_auto_prefers_lifting_for_supported_wavelets(self):
        # numba (priority 20) legitimately outranks lifting when installed.
        assert resolve_backend("auto", "bior2.2").priority >= LiftingBackend.priority
        assert resolve_backend(None, "haar").priority >= LiftingBackend.priority

    def test_auto_falls_back_to_numpy_for_generic_wavelets(self):
        assert resolve_backend("auto", "db4").name == "numpy"
        assert resolve_backend("auto", "sym5").name == "numpy"

    def test_explicit_backend_instance_is_used_directly(self):
        backend = NumpyBackend()
        assert resolve_backend(backend, "db4") is backend

    def test_unknown_backend_name_raises(self):
        with pytest.raises(ValueError, match="Unknown transform backend"):
            resolve_backend("does-not-exist", "haar")

    def test_unsupported_wavelet_with_explicit_backend_raises(self):
        with pytest.raises(ValueError, match="does not support wavelet"):
            resolve_backend("lifting", "db4")

    def test_register_and_unregister_custom_backend(self):
        class Doubler(TransformBackend):
            name = "test-doubler"
            priority = -5

            def supports(self, wavelet):
                return True

            def approx_batch(self, matrix, wavelet):
                return dwt_batch(matrix, wavelet, approx_only=True)

        backend = Doubler()
        register_backend(backend)
        try:
            assert get_backend("test-doubler") is backend
            with pytest.raises(ValueError, match="already registered"):
                register_backend(Doubler())
            register_backend(Doubler(), overwrite=True)
        finally:
            unregister_backend("test-doubler")
        with pytest.raises(ValueError):
            get_backend("test-doubler")

    def test_numpy_backend_cannot_be_unregistered(self):
        with pytest.raises(ValueError, match="cannot be unregistered"):
            unregister_backend("numpy")

    def test_estimator_rejects_bad_backend_type(self):
        with pytest.raises(TypeError, match="backend must be"):
            AdaWave(backend=123)


def _load_golden(name):
    path = GOLDEN_DIR / f"{name}.npz"
    if not path.exists():
        pytest.skip(f"golden fixture {path.name} missing; run generate_golden.py")
    return np.load(path)


class TestGoldenFixturesPerBackend:
    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_every_backend_reproduces_frozen_labels(self, name):
        data = _load_golden(name)
        points, scale = data["points"], int(data["scale"])
        reference = AdaWave(scale=scale, backend="numpy").fit(points)
        np.testing.assert_array_equal(reference.labels_, data["labels"])
        for backend_name in available_backends():
            backend = get_backend(backend_name)
            if not backend.supports("bior2.2"):
                continue
            model = AdaWave(scale=scale, backend=backend_name).fit(points)
            assert model.backend_ == backend_name
            np.testing.assert_array_equal(
                model.labels_,
                reference.labels_,
                err_msg=f"backend {backend_name} labels diverged on {name}",
            )
            assert model.n_clusters_ == reference.n_clusters_
            assert model.threshold_ == pytest.approx(
                reference.threshold_, rel=1e-9, abs=1e-9
            )

    def test_backend_recorded_in_artifact_metadata(self):
        data = _load_golden("running_example")
        model = AdaWave(scale=int(data["scale"]), backend="lifting").fit(
            data["points"]
        )
        artifact = model.export_model()
        assert artifact.metadata["transform_backend"] == "lifting"
        auto = AdaWave(scale=int(data["scale"]), backend="auto").fit(data["points"])
        assert auto.export_model().metadata["transform_backend"] in available_backends()
