"""Tests for repro.wavelets.lifting: lifting-scheme CDF transforms."""

import numpy as np
import pytest

from repro.wavelets.dwt import dwt
from repro.wavelets.lifting import (
    inverse_lifting_cdf53,
    inverse_lifting_cdf97,
    lifting_cdf53,
    lifting_cdf97,
    lifting_smooth,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestCdf53:
    @pytest.mark.parametrize("length", [8, 16, 64, 130])
    def test_perfect_reconstruction(self, length, rng):
        signal = rng.standard_normal(length)
        approx, detail = lifting_cdf53(signal)
        np.testing.assert_allclose(inverse_lifting_cdf53(approx, detail), signal, atol=1e-12)

    def test_output_lengths(self, rng):
        approx, detail = lifting_cdf53(rng.standard_normal(32))
        assert len(approx) == 16 and len(detail) == 16

    def test_constant_signal_zero_detail(self):
        approx, detail = lifting_cdf53(np.full(16, 4.0))
        np.testing.assert_allclose(detail, 0.0, atol=1e-12)
        # Same sqrt(2) normalisation as the convolution path.
        assert approx.sum() == pytest.approx(16 * 4.0 / np.sqrt(2.0))

    def test_linear_signal_zero_detail_away_from_seam(self):
        signal = np.arange(32, dtype=float)
        _, detail = lifting_cdf53(signal)
        np.testing.assert_allclose(detail[1:-1], 0.0, atol=1e-12)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError, match="even-length"):
            lifting_cdf53(np.ones(9))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            inverse_lifting_cdf53(np.ones(4), np.ones(5))

    def test_agrees_with_convolution_smoothing_on_mass(self, rng):
        """Both CDF(2,2) code paths preserve total mass identically."""
        signal = np.abs(rng.standard_normal(64))
        approx_lift, _ = lifting_cdf53(signal)
        approx_conv, _ = dwt(signal, "bior2.2")
        assert approx_lift.sum() == pytest.approx(approx_conv.sum(), rel=1e-9)


class TestCdf97:
    @pytest.mark.parametrize("length", [8, 32, 100])
    def test_perfect_reconstruction(self, length, rng):
        signal = rng.standard_normal(length)
        approx, detail = lifting_cdf97(signal)
        np.testing.assert_allclose(inverse_lifting_cdf97(approx, detail), signal, atol=1e-10)

    def test_constant_signal_zero_detail(self):
        _, detail = lifting_cdf97(np.full(16, 2.5))
        np.testing.assert_allclose(detail, 0.0, atol=1e-10)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            inverse_lifting_cdf97(np.ones(3), np.ones(4))


class TestLiftingSmooth:
    def test_length_preserved_even_and_odd(self, rng):
        for length in (16, 33):
            assert len(lifting_smooth(rng.standard_normal(length), level=2)) == length

    def test_smoothing_reduces_variance_of_noise(self, rng):
        noise = rng.standard_normal(128)
        smoothed = lifting_smooth(noise, transform="cdf53", level=2)
        assert smoothed.var() < noise.var()

    def test_unknown_transform_rejected(self):
        with pytest.raises(ValueError, match="transform"):
            lifting_smooth(np.ones(16), transform="cdf44")

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            lifting_smooth(np.ones(16), level=0)
