"""Resource accounting and graded health: the continuous monitoring daemon.

The acceptance bars from the monitoring issue:

* a pool under synthetic load shows a **nonzero request rate** and
  per-worker RSS/CPU in the series store;
* killing every worker flips health to ``degraded`` with reason
  ``workers_dead`` (and ``/readyz``-style serviceability to false) within
  one sampler period, and recovers to ``ok`` after respawn;
* the sampler never raises -- broken probes are contained and counted.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.obs.slo import Objective, SloMonitor
from repro.obs.sysmon import (
    SystemMonitor,
    attach_monitor,
    read_proc_cpu_seconds,
    read_proc_rss_bytes,
    self_usage,
)
from repro.obs.timeseries import TimeSeriesStore
from repro.serve import ProcessPoolService
from repro.serve.metrics import Telemetry

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(7)
    blob = np.clip(rng.normal(0.4, 0.05, size=(1200, 2)), 0.0, 1.0)
    X = np.vstack([blob, rng.uniform(size=(1800, 2))])
    return AdaWave(scale=64, bounds=BOUNDS).fit(X).export_model()


def _wait_for(predicate, timeout=15.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


class TestProcProbes:
    def test_own_process_is_readable(self):
        pid = os.getpid()
        cpu = read_proc_cpu_seconds(pid)
        rss = read_proc_rss_bytes(pid)
        assert cpu is not None and cpu >= 0.0
        assert rss is not None and rss > 1024 * 1024  # more than a megabyte

    def test_cpu_seconds_advance_under_work(self):
        pid = os.getpid()
        before = read_proc_cpu_seconds(pid)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            np.linalg.norm(np.random.default_rng(0).uniform(size=(200, 200)))
            after = read_proc_cpu_seconds(pid)
            if after > before:
                break
        assert after > before

    def test_missing_pid_returns_none(self):
        # PID beyond pid_max: /proc entry cannot exist.
        assert read_proc_cpu_seconds(2**30) is None
        assert read_proc_rss_bytes(2**30) is None

    def test_getrusage_fallback_shape(self):
        usage = self_usage()
        assert usage is not None
        assert usage["cpu_seconds"] >= 0.0
        assert usage["rss_bytes"] > 0.0


class TestSystemMonitorSampling:
    def test_bare_telemetry_sample_records_parent(self):
        telemetry = Telemetry(series=TimeSeriesStore(step=0.05))
        monitor = SystemMonitor(telemetry)
        recorded = monitor.sample()
        assert recorded["parent_cpu_seconds"] >= 0.0
        assert recorded["parent_rss_bytes"] > 0.0
        store = telemetry.series
        assert store.latest("proc.parent.rss_bytes") == recorded["parent_rss_bytes"]
        assert monitor.samples == 1
        assert monitor.errors == 0

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="interval"):
            SystemMonitor(Telemetry(), interval=0.0)

    def test_loop_lag_probe_lands_in_store(self):
        telemetry = Telemetry()
        monitor = SystemMonitor(telemetry, loop_lag=lambda: 0.012)
        recorded = monitor.sample()
        assert recorded["loop_lag_seconds"] == pytest.approx(0.012)
        assert telemetry.series.latest("edge.loop_lag_seconds") == pytest.approx(
            0.012
        )

    def test_broken_probe_is_contained(self):
        telemetry = Telemetry()

        def bad_probe():
            raise RuntimeError("loop went away")

        monitor = SystemMonitor(telemetry, loop_lag=bad_probe)
        monitor.sample()  # must not raise
        assert monitor.errors == 1
        snapshot = telemetry.snapshot()
        assert snapshot["callbacks"]["errors"] == 1
        assert "sysmon" in snapshot["callbacks"]["last"]

    def test_daemon_thread_samples_on_cadence(self):
        telemetry = Telemetry(series=TimeSeriesStore(step=0.01))
        with SystemMonitor(telemetry, interval=0.05) as monitor:
            assert monitor.running
            _wait_for(lambda: monitor.samples >= 3, message="3 samples")
        assert not monitor.running
        monitor.stop()  # idempotent

    def test_slo_evaluated_on_sampler_cadence(self):
        telemetry = Telemetry(series=TimeSeriesStore(step=1.0))
        fired = []
        slos = SloMonitor(
            [Objective(name="avail", objective=0.99, windows=((5.0, 10.0),))],
            telemetry=telemetry,
            on_alert=fired.append,
        )
        monitor = SystemMonitor(telemetry, slos=slos)
        # Half the edge traffic errors, tick after tick: a sustained burn.
        for tick in range(10):
            for _ in range(5):
                telemetry.record_edge_request("predict", 200, 0.001)
            for _ in range(5):
                telemetry.record_edge_request("predict", 500, 0.001)
            telemetry.sample_series(at=float(tick))
        recorded = monitor.sample(at=10.0)
        assert recorded["slo"][0]["burning"] is True
        assert len(fired) == 1
        health = monitor.health(at=10.0)
        assert health["status"] == "degraded"
        assert "slo_burning:avail" in health["reasons"]

    def test_loop_lag_over_threshold_degrades_health(self):
        telemetry = Telemetry()
        monitor = SystemMonitor(
            telemetry, loop_lag=lambda: 0.5, lag_threshold=0.25
        )
        monitor.sample()
        health = monitor.health()
        assert health["status"] == "degraded"
        assert "loop_lag" in health["reasons"]
        assert health["detail"]["loop_lag_seconds"] == pytest.approx(0.5)


class TestPoolAccounting:
    def test_pool_under_load_shows_rates_and_worker_resources(
        self, model, tmp_path
    ):
        """Acceptance: nonzero request rate + per-worker RSS/CPU in series."""
        service = ProcessPoolService(
            tmp_path, n_workers=2, worker_timeout=10.0,
            telemetry=Telemetry(series=TimeSeriesStore(step=0.05)),
        )
        try:
            service.register("prod", model)
            monitor = SystemMonitor(service.telemetry, pool=service.pool)
            queries = np.random.default_rng(11).uniform(size=(200, 2))
            monitor.sample()
            for _ in range(30):
                service.predict("prod", queries)
            time.sleep(0.12)  # land the next sample in a later bucket
            recorded = monitor.sample()

            store = service.telemetry.series
            rate = store.rate("requests.count", window=5.0, at=recorded["at"])
            assert rate > 0.0, "pool under load must show a nonzero request rate"
            assert recorded["workers_alive"] == 2
            assert set(recorded["workers"]) == {0, 1}
            for index in (0, 1):
                entry = recorded["workers"][index]
                assert entry["rss_bytes"] > 1024 * 1024
                assert entry["cpu_seconds"] >= 0.0
                assert (
                    store.latest(f"proc.worker.{index}.rss_bytes")
                    == entry["rss_bytes"]
                )
            assert store.latest("workers.alive") == 2.0
        finally:
            service.close()

    def test_kill_all_workers_degrades_then_recovers(self, model, tmp_path):
        """Acceptance: all-dead -> degraded(workers_dead) -> ok after respawn.

        ``respawn_workers=False`` keeps the watchdog from racing the
        degraded-state assertions; recovery is driven manually.
        """
        service = ProcessPoolService(
            tmp_path, n_workers=2, worker_timeout=10.0, respawn_workers=False,
        )
        try:
            service.register("prod", model)
            monitor = SystemMonitor(service.telemetry, pool=service.pool)
            assert monitor.health()["status"] == "ok"

            for process in service.pool.processes:
                os.kill(process.pid, signal.SIGKILL)
            _wait_for(
                lambda: not any(service.pool.alive()),
                message="SIGKILLs to land",
            )
            monitor.sample()
            health = monitor.health()
            assert health["status"] == "degraded"
            assert health["reasons"] == ["workers_dead"]
            assert health["detail"]["workers_alive"] == 0
            # Dead workers stop contributing samples, but never error the pass.
            assert monitor.errors == 0

            for index in range(2):
                service.pool.respawn(index)
            _wait_for(
                lambda: all(service.pool.alive()), message="manual respawn"
            )
            monitor.sample()
            health = monitor.health()
            assert health["status"] == "ok"
            assert health["reasons"] == []
        finally:
            service.close()

    def test_monitored_edge_flips_health_and_readiness(self, model, tmp_path):
        """Full stack: kill every worker -> /healthz degraded + /readyz 503
        within one sampler period, recovering to ok after respawn."""
        import json
        import urllib.error
        import urllib.request

        from repro.serve import EdgeThread

        def fetch(url):
            try:
                with urllib.request.urlopen(url, timeout=30.0) as response:
                    return response.status, json.loads(response.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        service = ProcessPoolService(
            tmp_path, n_workers=2, worker_timeout=10.0, respawn_workers=False,
        )
        try:
            service.register("prod", model)
            with EdgeThread(service) as edge:
                monitor = attach_monitor(service, interval=0.1, edge=edge)
                _wait_for(lambda: monitor.samples >= 1, message="first sample")
                status, health = fetch(f"{edge.url}/healthz")
                assert (status, health["status"]) == (200, "ok")
                status, ready = fetch(f"{edge.url}/readyz")
                assert (status, ready["ready"]) == (200, True)
                # The edge loop-lag probe feeds the same store.
                assert (
                    service.telemetry.series.latest("edge.loop_lag_seconds")
                    is not None
                )

                for process in service.pool.processes:
                    os.kill(process.pid, signal.SIGKILL)
                _wait_for(
                    lambda: not any(service.pool.alive()),
                    message="SIGKILLs to land",
                )
                # Within one sampler period the verdicts flip.
                _wait_for(
                    lambda: fetch(f"{edge.url}/healthz")[1]["status"]
                    == "degraded",
                    timeout=5.0,
                    message="healthz to degrade",
                )
                status, health = fetch(f"{edge.url}/healthz")
                assert "workers_dead" in health["reasons"]
                status, ready = fetch(f"{edge.url}/readyz")
                assert (status, ready["ready"]) == (503, False)

                for index in range(2):
                    service.pool.respawn(index)
                _wait_for(
                    lambda: all(service.pool.alive()), message="manual respawn"
                )
                _wait_for(
                    lambda: fetch(f"{edge.url}/healthz")[1]["status"] == "ok",
                    timeout=5.0,
                    message="healthz to recover",
                )
                status, ready = fetch(f"{edge.url}/readyz")
                assert (status, ready["ready"]) == (200, True)
        finally:
            service.close()
        assert not service.monitor.running

    def test_attach_monitor_wires_and_close_stops(self, model, tmp_path):
        service = ProcessPoolService(tmp_path, n_workers=1, worker_timeout=10.0)
        monitor = attach_monitor(service, interval=0.05)
        try:
            assert service.monitor is monitor
            assert monitor.pool is service.pool
            _wait_for(lambda: monitor.samples >= 2, message="attached sampling")
        finally:
            service.close()
        assert not monitor.running, "service.close() must stop its monitor"
