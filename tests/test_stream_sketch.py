"""StreamSketch: the extracted streaming substrate.

The sketch must reproduce exactly the accumulation semantics AdaWave's
streaming path had inline (the streaming-invariance tests pin the estimator
side), plus the new first-class operations: snapshots, windowed forgetting,
decay, and the actionable merge errors.
"""

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.grid.quantizer import GridQuantizer
from repro.stream import SketchSnapshot, StreamSketch

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(7)
    return rng.uniform(size=(4000, 2))


class TestIngest:
    def test_matches_one_shot_quantization(self, points):
        sketch = StreamSketch(BOUNDS, 64, 2)
        for batch in np.array_split(points, 5):
            sketch.ingest(batch)
        expected = GridQuantizer(scale=64, bounds=BOUNDS).fit_transform(points).grid
        np.testing.assert_array_equal(sketch.grid.coords, expected.coords)
        np.testing.assert_array_equal(sketch.grid.values, expected.values)
        assert sketch.n_seen == len(points)
        assert sketch.n_batches == 5
        assert sketch.total_mass() == len(points)

    def test_returns_cells(self, points):
        sketch = StreamSketch(BOUNDS, 64, 2)
        cells = sketch.ingest(points[:100])
        expected = GridQuantizer(scale=64, bounds=BOUNDS).fit_transform(points[:100])
        np.testing.assert_array_equal(cells, expected.cell_ids)

    def test_empty_batch_is_noop(self, points):
        sketch = StreamSketch(BOUNDS, 64, 2)
        out = sketch.ingest(np.empty((0, 2)))
        assert out.shape == (0, 2)
        assert sketch.n_seen == 0
        assert sketch.n_batches == 0

    def test_out_of_bounds_raises(self, points):
        sketch = StreamSketch(BOUNDS, 64, 2)
        with pytest.raises(ValueError, match="outside"):
            sketch.ingest(np.array([[1.5, 0.5]]))

    def test_feature_mismatch_raises(self, points):
        sketch = StreamSketch(BOUNDS, 64, 2)
        with pytest.raises(ValueError, match="features"):
            sketch.ingest(np.zeros((3, 3)))

    def test_requires_bounds(self):
        with pytest.raises(ValueError, match="bounds"):
            StreamSketch(None, 64, 2)


class TestMerge:
    def test_shard_merge_is_exact(self, points):
        whole = StreamSketch(BOUNDS, 64, 2)
        whole.ingest(points)
        left = StreamSketch(BOUNDS, 64, 2)
        right = StreamSketch(BOUNDS, 64, 2)
        left.ingest(points[: len(points) // 2])
        right.ingest(points[len(points) // 2 :])
        left.merge(right)
        np.testing.assert_array_equal(left.grid.coords, whole.grid.coords)
        np.testing.assert_array_equal(left.grid.values, whole.grid.values)
        assert left.n_seen == len(points)

    def test_different_scale_raises(self):
        with pytest.raises(ValueError, match="different grids"):
            StreamSketch(BOUNDS, 64, 2).merge(StreamSketch(BOUNDS, 32, 2))

    def test_different_bounds_error_names_both_bounds(self):
        """The actionable error: both geometries spelled out, pointing at
        re-quantization (a silent wrong-cell merge is the failure it
        replaces)."""
        ours = StreamSketch(BOUNDS, 64, 2)
        theirs = StreamSketch(([0.0, 0.0], [2.0, 2.0]), 64, 2)
        with pytest.raises(ValueError) as excinfo:
            ours.merge(theirs)
        message = str(excinfo.value)
        assert "different grids" in message
        # Both uppers appear (1.0... from ours, 2.0... from theirs), and the
        # fix is named.
        assert "1." in message and "2." in message
        assert "re-quantize" in message.lower()

    def test_adawave_merge_stream_surfaces_the_bounds_error(self, points):
        left = AdaWave(scale=64, bounds=BOUNDS).partial_fit(points[:100])
        other = AdaWave(scale=64, bounds=([0.0, 0.0], [2.0, 2.0]))
        other.partial_fit(points[:100])
        with pytest.raises(ValueError, match="(?i)re-quantize"):
            left.merge_stream(other)

    def test_windowed_sketches_refuse_to_merge(self, points):
        windowed = StreamSketch(BOUNDS, 64, 2, window=4)
        plain = StreamSketch(BOUNDS, 64, 2)
        plain.ingest(points[:100])
        with pytest.raises(ValueError, match="window"):
            windowed.merge(plain)
        with pytest.raises(ValueError, match="window"):
            plain.merge(windowed)

    def test_non_sketch_rejected(self):
        with pytest.raises(TypeError, match="StreamSketch"):
            StreamSketch(BOUNDS, 64, 2).merge(object())


class TestWindow:
    def test_window_keeps_only_recent_batches(self, points):
        sketch = StreamSketch(BOUNDS, 64, 2, window=2)
        batches = np.array_split(points, 4)
        for batch in batches:
            sketch.ingest(batch)
        expected = GridQuantizer(scale=64, bounds=BOUNDS).fit_transform(
            np.vstack(batches[-2:])
        ).grid
        np.testing.assert_array_equal(sketch.grid.coords, expected.coords)
        np.testing.assert_array_equal(sketch.grid.values, expected.values)
        # Raw counter keeps everything; the window view reports the retained mass.
        assert sketch.n_seen == len(points)
        assert sketch.n_window == sum(len(b) for b in batches[-2:])

    def test_window_longer_than_stream_equals_cumulative(self, points):
        windowed = StreamSketch(BOUNDS, 64, 2, window=10)
        plain = StreamSketch(BOUNDS, 64, 2)
        for batch in np.array_split(points, 3):
            windowed.ingest(batch)
            plain.ingest(batch)
        np.testing.assert_array_equal(windowed.grid.coords, plain.grid.coords)
        np.testing.assert_array_equal(windowed.grid.values, plain.grid.values)


class TestDecayAndSnapshot:
    def test_decay_scales_mass(self, points):
        sketch = StreamSketch(BOUNDS, 64, 2)
        sketch.ingest(points)
        sketch.decay(0.5)
        assert sketch.total_mass() == pytest.approx(len(points) / 2)
        assert sketch.n_seen == len(points)  # raw counter untouched

    def test_decay_validates_factor(self):
        sketch = StreamSketch(BOUNDS, 64, 2)
        with pytest.raises(ValueError, match="decay"):
            sketch.decay(0.0)
        with pytest.raises(ValueError, match="decay"):
            sketch.decay(1.5)

    def test_snapshot_is_decoupled_from_live_sketch(self, points):
        sketch = StreamSketch(BOUNDS, 64, 2)
        sketch.ingest(points[:1000])
        snap = sketch.snapshot()
        assert isinstance(snap, SketchSnapshot)
        mass_before = snap.total_mass()
        sketch.ingest(points[1000:])
        assert snap.total_mass() == mass_before
        assert snap.n_seen == 1000
        assert sketch.n_seen == len(points)
        assert snap.shape == sketch.shape

    def test_coarsen_matches_direct_quantization(self, points):
        sketch = StreamSketch(BOUNDS, 64, 2)
        sketch.ingest(points)
        expected = GridQuantizer(scale=32, bounds=BOUNDS).fit_transform(points).grid
        coarse = sketch.coarsen(2)
        np.testing.assert_array_equal(coarse.coords, expected.coords)
        np.testing.assert_array_equal(coarse.values, expected.values)

    def test_clear_keeps_geometry(self, points):
        sketch = StreamSketch(BOUNDS, 64, 2)
        sketch.ingest(points)
        sketch.clear()
        assert sketch.n_seen == 0
        assert sketch.grid.n_occupied == 0
        assert sketch.shape == (64, 64)
        sketch.ingest(points[:10])  # still usable
        assert sketch.n_seen == 10


class TestAdaWaveAdapter:
    """partial_fit is now a thin adapter over StreamSketch."""

    def test_partial_fit_populates_a_sketch(self, points):
        model = AdaWave(scale=64, bounds=BOUNDS)
        model.partial_fit(points)
        assert isinstance(model._sketch, StreamSketch)
        assert model._sketch.n_seen == model.n_seen_ == len(points)

    def test_sketch_grid_equals_streamed_quantization(self, points):
        model = AdaWave(scale=64, bounds=BOUNDS)
        for batch in np.array_split(points, 3):
            model.partial_fit(batch)
        expected = GridQuantizer(scale=64, bounds=BOUNDS).fit_transform(points).grid
        np.testing.assert_array_equal(model._sketch.grid.coords, expected.coords)
        np.testing.assert_array_equal(model._sketch.grid.values, expected.values)
