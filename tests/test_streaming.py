"""Streaming (partial_fit / finalize) behaviour of AdaWave.

The quantized grid is a mergeable sketch, so ingesting a dataset in batches
-- any split, any order -- must produce exactly the labels a one-shot fit
with the same explicit bounds produces.  These tests pin that invariance
down, together with the edge cases of the streaming API.
"""

import numpy as np
import pytest

from repro import BatchRunner
from repro.core.adawave import AdaWave

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


@pytest.fixture(scope="module")
def noisy_blobs():
    rng = np.random.default_rng(42)
    blob_a = np.clip(rng.normal(0.25, 0.03, size=(600, 2)), 0.0, 1.0)
    blob_b = np.clip(rng.normal(0.72, 0.03, size=(600, 2)), 0.0, 1.0)
    noise = rng.uniform(size=(2400, 2))
    return np.vstack([blob_a, blob_b, noise])


@pytest.fixture(scope="module")
def one_shot(noisy_blobs):
    return AdaWave(scale=64, bounds=BOUNDS).fit(noisy_blobs)


def _stream_labels(points, batch_indices, **params):
    """partial_fit the batches, finalize, and reassemble original point order."""
    model = AdaWave(scale=64, bounds=BOUNDS, **params)
    for indices in batch_indices:
        model.partial_fit(points[indices])
    model.finalize()
    labels = np.empty(len(points), dtype=np.int64)
    labels[np.concatenate([np.asarray(ix, dtype=np.int64) for ix in batch_indices])] = model.labels_
    return labels, model


class TestStreamingOrderInvariance:
    @pytest.mark.parametrize("n_batches", [1, 3, 7])
    def test_sequential_splits_match_fit(self, noisy_blobs, one_shot, n_batches):
        batches = np.array_split(np.arange(len(noisy_blobs)), n_batches)
        labels, model = _stream_labels(noisy_blobs, batches)
        np.testing.assert_array_equal(labels, one_shot.labels_)
        assert model.n_clusters_ == one_shot.n_clusters_
        assert model.threshold_ == one_shot.threshold_

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_shuffled_splits_match_fit(self, noisy_blobs, one_shot, seed):
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(len(noisy_blobs))
        batches = np.array_split(permutation, rng.integers(2, 9))
        labels, _model = _stream_labels(noisy_blobs, batches)
        np.testing.assert_array_equal(labels, one_shot.labels_)

    def test_stream_matches_reference_engine_one_shot(self, noisy_blobs, one_shot):
        """The streamed vectorized labels also match the literal reference
        pipeline run one-shot (the constructor no longer accepts
        engine='reference'; the reference driver is the comparison point)."""
        from repro.engine.reference import fit_reference

        batches = np.array_split(np.arange(len(noisy_blobs)), 4)
        labels, _model = _stream_labels(noisy_blobs, batches)
        ref = fit_reference(noisy_blobs, scale=64, bounds=BOUNDS)
        np.testing.assert_array_equal(labels, ref.labels)

    def test_single_point_batches(self, noisy_blobs, one_shot):
        head = [np.array([i]) for i in range(25)]
        rest = [np.arange(25, len(noisy_blobs))]
        labels, model = _stream_labels(noisy_blobs, head + rest)
        np.testing.assert_array_equal(labels, one_shot.labels_)
        assert model.n_seen_ == len(noisy_blobs)

    def test_empty_batch_is_noop(self, noisy_blobs, one_shot):
        model = AdaWave(scale=64, bounds=BOUNDS)
        model.partial_fit(np.empty((0, 2)))  # before the stream starts
        model.partial_fit(noisy_blobs)
        model.partial_fit(np.empty((0, 2)))  # mid-stream
        model.finalize()
        np.testing.assert_array_equal(model.labels_, one_shot.labels_)

    def test_finalize_is_repeatable_and_resumable(self, noisy_blobs, one_shot):
        halves = np.array_split(np.arange(len(noisy_blobs)), 2)
        model = AdaWave(scale=64, bounds=BOUNDS)
        model.partial_fit(noisy_blobs[halves[0]])
        model.finalize()
        intermediate = model.labels_.copy()
        assert len(intermediate) == len(halves[0])
        model.partial_fit(noisy_blobs[halves[1]])
        model.finalize()
        labels = np.empty(len(noisy_blobs), dtype=np.int64)
        labels[np.concatenate(halves)] = model.labels_
        np.testing.assert_array_equal(labels, one_shot.labels_)

    def test_fit_mid_stream_raises(self, noisy_blobs):
        """fit() must not silently discard unfinalized partial_fit batches."""
        model = AdaWave(scale=64, bounds=BOUNDS)
        model.partial_fit(noisy_blobs[:100])
        with pytest.raises(ValueError, match="mid-stream"):
            model.fit(noisy_blobs)

    def test_fit_after_reset_discards_stream(self, noisy_blobs, one_shot):
        model = AdaWave(scale=64, bounds=BOUNDS)
        model.partial_fit(noisy_blobs[:100])
        model.reset()
        model.fit(noisy_blobs)
        np.testing.assert_array_equal(model.labels_, one_shot.labels_)
        assert model.n_seen_ == len(noisy_blobs)

    def test_fit_after_finalize_is_allowed(self, noisy_blobs, one_shot):
        model = AdaWave(scale=64, bounds=BOUNDS)
        model.partial_fit(noisy_blobs[:100])
        model.finalize()
        model.fit(noisy_blobs)
        np.testing.assert_array_equal(model.labels_, one_shot.labels_)

    def test_reset_clears_fitted_state(self, noisy_blobs):
        model = AdaWave(scale=64, bounds=BOUNDS).fit(noisy_blobs)
        model.reset()
        assert model.labels_ is None
        assert model.result_ is None
        assert model.n_seen_ == 0

    def test_partial_fit_after_fit_starts_a_fresh_stream(self, noisy_blobs):
        model = AdaWave(scale=64, bounds=BOUNDS)
        model.fit(noisy_blobs)
        model.partial_fit(noisy_blobs[:300])
        model.finalize()
        assert model.n_seen_ == 300
        assert model.labels_.shape == (300,)


class TestLookupOnlyStreaming:
    """The O(occupied cells) ingestion mode: no per-point state retained."""

    def test_predict_matches_one_shot(self, noisy_blobs, one_shot):
        model = AdaWave(scale=64, bounds=BOUNDS, lookup_only=True)
        for batch in np.array_split(noisy_blobs, 6):
            model.partial_fit(batch)
        model.finalize()
        np.testing.assert_array_equal(model.predict(noisy_blobs), one_shot.labels_)
        assert model.n_clusters_ == one_shot.n_clusters_
        assert model.threshold_ == one_shot.threshold_
        assert model.n_seen_ == len(noisy_blobs)

    def test_no_per_point_state_is_retained(self, noisy_blobs):
        model = AdaWave(scale=64, bounds=BOUNDS, lookup_only=True)
        for batch in np.array_split(noisy_blobs, 6):
            model.partial_fit(batch)
        assert model._stream_cell_chunks == []
        model.finalize()
        assert model.labels_.shape == (0,)
        assert model.result_.quantization.cell_ids.shape == (0, 2)

    def test_export_model_works_without_labels(self, noisy_blobs, one_shot):
        model = AdaWave(scale=64, bounds=BOUNDS, lookup_only=True)
        model.partial_fit(noisy_blobs)
        model.finalize()
        frozen = model.export_model()
        np.testing.assert_array_equal(frozen.predict(noisy_blobs), one_shot.labels_)
        assert frozen.metadata["n_seen"] == len(noisy_blobs)


class TestStreamingEdgeCases:
    def test_requires_bounds(self, noisy_blobs):
        with pytest.raises(ValueError, match="bounds"):
            AdaWave(scale=64).partial_fit(noisy_blobs)

    def test_rejects_auto_scale(self, noisy_blobs):
        with pytest.raises(ValueError, match="auto"):
            AdaWave(scale="auto", bounds=BOUNDS).partial_fit(noisy_blobs)

    def test_out_of_range_batch_raises(self, noisy_blobs):
        model = AdaWave(scale=64, bounds=BOUNDS)
        model.partial_fit(noisy_blobs)
        with pytest.raises(ValueError, match="outside"):
            model.partial_fit(np.array([[1.5, 0.5]]))

    def test_out_of_range_first_batch_raises(self):
        with pytest.raises(ValueError, match="outside"):
            AdaWave(scale=64, bounds=BOUNDS).partial_fit(np.array([[2.0, 2.0]]))

    def test_feature_mismatch_raises(self, noisy_blobs):
        model = AdaWave(scale=64, bounds=BOUNDS)
        model.partial_fit(noisy_blobs)
        with pytest.raises(ValueError, match="features"):
            model.partial_fit(np.zeros((3, 3)))

    def test_finalize_before_data_raises(self):
        with pytest.raises(ValueError, match="finalize"):
            AdaWave(scale=64, bounds=BOUNDS).finalize()


class TestBatchRunner:
    def test_run_many_matches_individual_fits(self, noisy_blobs):
        datasets = [noisy_blobs, noisy_blobs[::2], noisy_blobs[1::3]]
        runner = BatchRunner(scale=64)
        results = runner.run_many(datasets)
        assert runner.n_runs_ == 3
        for X, result in zip(datasets, results):
            solo = AdaWave(scale=64).fit(X)
            np.testing.assert_array_equal(result.labels, solo.labels_)
            assert result.n_clusters == solo.n_clusters_

    def test_run_stream_matches_one_shot(self, noisy_blobs, one_shot):
        runner = BatchRunner(scale=64)
        model = runner.run_stream(
            np.array_split(noisy_blobs, 5), bounds=BOUNDS, finalize_every=2
        )
        np.testing.assert_array_equal(model.labels_, one_shot.labels_)

    def test_run_stream_rejects_all_empty(self):
        runner = BatchRunner(scale=64)
        with pytest.raises(ValueError, match="no non-empty"):
            runner.run_stream([np.empty((0, 2))], bounds=BOUNDS)
