"""Sharded parallel ingestion and stream merging.

Grid merging is associative and commutative, so parallel ingestion must be
*exact*: any shard split across any worker count produces the same model a
serial pass produces.  These tests pin that down for the thread and process
executors, for `AdaWave.merge_stream` directly, and for the parallel
`BatchRunner.run_many` fan-out.
"""

import numpy as np
import pytest

from repro import BatchRunner
from repro.core.adawave import AdaWave
from repro.serve import parallel_ingest

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(21)
    blob_a = np.clip(rng.normal(0.3, 0.03, size=(700, 2)), 0.0, 1.0)
    blob_b = np.clip(rng.normal(0.75, 0.03, size=(700, 2)), 0.0, 1.0)
    noise = rng.uniform(size=(2600, 2))
    return np.vstack([blob_a, blob_b, noise])


@pytest.fixture(scope="module")
def one_shot(dataset):
    return AdaWave(scale=64, bounds=BOUNDS).fit(dataset)


class TestParallelIngest:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_matches_one_shot_fit(self, dataset, one_shot, n_workers):
        model = parallel_ingest(
            np.array_split(dataset, 10),
            bounds=BOUNDS,
            scale=64,
            n_workers=n_workers,
        )
        assert model.n_seen_ == len(dataset)
        np.testing.assert_array_equal(model.predict(dataset), one_shot.labels_)
        assert model.n_clusters_ == one_shot.n_clusters_
        assert model.threshold_ == one_shot.threshold_

    def test_lookup_only_keeps_no_per_point_state(self, dataset):
        model = parallel_ingest(
            np.array_split(dataset, 10), bounds=BOUNDS, scale=64, n_workers=2
        )
        assert model.labels_.shape == (0,)
        assert model.result_.quantization.cell_ids.shape == (0, 2)

    def test_non_lookup_only_preserves_label_order(self, dataset, one_shot):
        model = parallel_ingest(
            np.array_split(dataset, 10),
            bounds=BOUNDS,
            scale=64,
            n_workers=3,
            lookup_only=False,
        )
        np.testing.assert_array_equal(model.labels_, one_shot.labels_)

    def test_process_executor_matches(self, dataset, one_shot):
        model = parallel_ingest(
            np.array_split(dataset, 4),
            bounds=BOUNDS,
            scale=64,
            n_workers=2,
            executor="process",
        )
        np.testing.assert_array_equal(model.predict(dataset), one_shot.labels_)

    def test_finalize_false_returns_open_stream(self, dataset, one_shot):
        model = parallel_ingest(
            np.array_split(dataset, 6),
            bounds=BOUNDS,
            scale=64,
            n_workers=2,
            finalize=False,
        )
        assert model.result_ is None
        model.finalize()
        np.testing.assert_array_equal(model.predict(dataset), one_shot.labels_)

    def test_uneven_and_empty_batches(self, dataset, one_shot):
        batches = [dataset[:17], np.empty((0, 2)), dataset[17:900], dataset[900:]]
        model = parallel_ingest(batches, bounds=BOUNDS, scale=64, n_workers=2)
        np.testing.assert_array_equal(model.predict(dataset), one_shot.labels_)

    def test_no_batches_raises(self):
        with pytest.raises(ValueError, match="no batches"):
            parallel_ingest([], bounds=BOUNDS, scale=64)

    def test_all_empty_batches_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            parallel_ingest([np.empty((0, 2))], bounds=BOUNDS, scale=64)

    def test_invalid_executor_rejected(self, dataset):
        with pytest.raises(ValueError, match="executor"):
            parallel_ingest(
                np.array_split(dataset, 2), bounds=BOUNDS, scale=64, executor="mpi"
            )

    def test_invalid_worker_count_rejected(self, dataset):
        with pytest.raises(ValueError, match="n_workers"):
            parallel_ingest(
                np.array_split(dataset, 2), bounds=BOUNDS, scale=64, n_workers=0
            )


class TestMergeStream:
    def test_merge_equals_single_stream(self, dataset, one_shot):
        left = AdaWave(scale=64, bounds=BOUNDS)
        right = AdaWave(scale=64, bounds=BOUNDS)
        left.partial_fit(dataset[:2000])
        right.partial_fit(dataset[2000:])
        left.merge_stream(right).finalize()
        np.testing.assert_array_equal(left.labels_, one_shot.labels_)
        assert left.n_seen_ == len(dataset)

    def test_merge_into_fresh_estimator(self, dataset, one_shot):
        shard = AdaWave(scale=64, bounds=BOUNDS)
        shard.partial_fit(dataset)
        target = AdaWave(scale=64, bounds=BOUNDS)
        target.merge_stream(shard).finalize()
        np.testing.assert_array_equal(target.labels_, one_shot.labels_)

    def test_merge_leaves_source_untouched(self, dataset):
        left = AdaWave(scale=64, bounds=BOUNDS).partial_fit(dataset[:1000])
        right = AdaWave(scale=64, bounds=BOUNDS).partial_fit(dataset[1000:])
        seen_before = right.n_seen_
        left.merge_stream(right)
        assert right.n_seen_ == seen_before
        right.finalize()  # the source stream still works on its own

    def test_merge_empty_source_is_noop(self, dataset):
        left = AdaWave(scale=64, bounds=BOUNDS).partial_fit(dataset[:100])
        left.merge_stream(AdaWave(scale=64, bounds=BOUNDS))
        assert left.n_seen_ == 100

    def test_fresh_target_keeps_its_own_scale(self, dataset):
        """Merging into a streamless estimator must not adopt the source's
        grid resolution; a scale mismatch is an error, not a silent switch."""
        shard = AdaWave(scale=128, bounds=BOUNDS).partial_fit(dataset[:200])
        target = AdaWave(scale=64, bounds=BOUNDS)
        with pytest.raises(ValueError, match="different grids"):
            target.merge_stream(shard)

    def test_fresh_target_rejects_auto_scale(self, dataset):
        shard = AdaWave(scale=64, bounds=BOUNDS).partial_fit(dataset[:200])
        with pytest.raises(ValueError, match="auto"):
            AdaWave(scale="auto", bounds=BOUNDS).merge_stream(shard)

    def test_mismatched_grids_rejected(self, dataset):
        left = AdaWave(scale=64, bounds=BOUNDS).partial_fit(dataset[:100])
        other = AdaWave(scale=32, bounds=BOUNDS).partial_fit(dataset[:100])
        with pytest.raises(ValueError, match="different grids"):
            left.merge_stream(other)

    def test_mismatched_bounds_rejected(self, dataset):
        left = AdaWave(scale=64, bounds=BOUNDS).partial_fit(dataset[:100])
        other = AdaWave(scale=64, bounds=([0.0, 0.0], [2.0, 2.0]))
        other.partial_fit(dataset[:100])
        with pytest.raises(ValueError, match="different grids"):
            left.merge_stream(other)

    def test_lookup_only_source_into_labelled_target_rejected(self, dataset):
        labelled = AdaWave(scale=64, bounds=BOUNDS).partial_fit(dataset[:100])
        lookup = AdaWave(scale=64, bounds=BOUNDS, lookup_only=True)
        lookup.partial_fit(dataset[100:200])
        with pytest.raises(ValueError, match="lookup-only"):
            labelled.merge_stream(lookup)

    def test_labelled_source_into_lookup_only_target_allowed(self, dataset, one_shot):
        lookup = AdaWave(scale=64, bounds=BOUNDS, lookup_only=True)
        lookup.partial_fit(dataset[:2000])
        labelled = AdaWave(scale=64, bounds=BOUNDS).partial_fit(dataset[2000:])
        lookup.merge_stream(labelled).finalize()
        np.testing.assert_array_equal(lookup.predict(dataset), one_shot.labels_)

    def test_non_estimator_rejected(self):
        with pytest.raises(TypeError, match="AdaWave"):
            AdaWave(scale=64, bounds=BOUNDS).merge_stream(object())


class TestBatchRunnerParallel:
    def test_parallel_run_many_matches_serial(self, dataset):
        datasets = [dataset, dataset[::2], dataset[1::3], dataset[::5]]
        serial = BatchRunner(scale=64).run_many(datasets)
        runner = BatchRunner(scale=64)
        parallel = runner.run_many(datasets, n_workers=3)
        assert runner.n_runs_ == len(datasets)
        for serial_result, parallel_result in zip(serial, parallel):
            np.testing.assert_array_equal(
                serial_result.labels, parallel_result.labels
            )
            assert serial_result.n_clusters == parallel_result.n_clusters
