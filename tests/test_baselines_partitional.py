"""Tests for the partitional baselines: k-means, EM, DBSCAN."""

import numpy as np
import pytest

from repro.baselines import DBSCAN, EMClustering, KMeans
from repro.baselines.postprocess import assign_noise_to_nearest_cluster
from repro.metrics import adjusted_mutual_info


def three_blobs(seed=0, n=150, std=0.05):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]])
    points = np.vstack([rng.normal(c, std, size=(n, 2)) for c in centers])
    labels = np.repeat(np.arange(3), n)
    return points, labels


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points, labels = three_blobs()
        model = KMeans(n_clusters=3, random_state=0).fit(points)
        assert adjusted_mutual_info(labels, model.labels_) > 0.95
        assert model.cluster_centers_.shape == (3, 2)
        assert model.inertia_ > 0

    def test_inertia_decreases_with_more_clusters(self):
        points, _ = three_blobs()
        small = KMeans(n_clusters=2, random_state=0).fit(points).inertia_
        large = KMeans(n_clusters=6, random_state=0).fit(points).inertia_
        assert large < small

    def test_deterministic_given_seed(self):
        points, _ = three_blobs()
        first = KMeans(n_clusters=3, random_state=7).fit_predict(points)
        second = KMeans(n_clusters=3, random_state=7).fit_predict(points)
        np.testing.assert_array_equal(first, second)

    def test_predict_assigns_to_nearest_center(self):
        points, _ = three_blobs()
        model = KMeans(n_clusters=3, random_state=0).fit(points)
        predictions = model.predict(model.cluster_centers_)
        assert len(set(predictions.tolist())) == 3

    def test_k_larger_than_samples_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=10).fit(np.random.uniform(size=(5, 2)))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            KMeans(n_clusters=2).predict(np.ones((2, 2)))

    def test_single_cluster(self):
        points, _ = three_blobs()
        labels = KMeans(n_clusters=1, random_state=0).fit_predict(points)
        assert set(labels.tolist()) == {0}

    def test_n_clusters_found_property(self):
        points, _ = three_blobs()
        model = KMeans(n_clusters=3, random_state=0).fit(points)
        assert model.n_clusters_found_ == 3


class TestEMClustering:
    def test_recovers_separated_blobs(self):
        points, labels = three_blobs()
        model = EMClustering(n_components=3, random_state=0).fit(points)
        assert adjusted_mutual_info(labels, model.labels_) > 0.9

    def test_parameters_populated(self):
        points, _ = three_blobs()
        model = EMClustering(n_components=3, random_state=0).fit(points)
        assert model.means_.shape == (3, 2)
        assert model.covariances_.shape == (3, 2, 2)
        assert model.weights_.sum() == pytest.approx(1.0)
        assert np.isfinite(model.log_likelihood_)

    def test_handles_anisotropic_clusters(self):
        rng = np.random.default_rng(1)
        stretched = rng.normal(size=(300, 2)) * [1.0, 0.05] + [0, 0]
        compact = rng.normal(size=(300, 2)) * 0.05 + [0, 2.0]
        points = np.vstack([stretched, compact])
        labels = np.repeat([0, 1], 300)
        model = EMClustering(n_components=2, random_state=0).fit(points)
        assert adjusted_mutual_info(labels, model.labels_) > 0.9

    def test_too_many_components_rejected(self):
        with pytest.raises(ValueError):
            EMClustering(n_components=10).fit(np.random.uniform(size=(4, 2)))

    def test_deterministic_given_seed(self):
        points, _ = three_blobs()
        first = EMClustering(n_components=3, random_state=5).fit_predict(points)
        second = EMClustering(n_components=3, random_state=5).fit_predict(points)
        np.testing.assert_array_equal(first, second)


class TestDBSCAN:
    def test_recovers_blobs_and_noise(self):
        points, labels = three_blobs(std=0.03)
        rng = np.random.default_rng(2)
        noise = rng.uniform(-0.5, 1.5, size=(60, 2))
        all_points = np.vstack([points, noise])
        model = DBSCAN(eps=0.1, min_samples=5).fit(all_points)
        clusters_found = model.n_clusters_found_
        assert clusters_found == 3
        # Most noise points should be labelled -1.
        assert np.mean(model.labels_[len(points):] == -1) > 0.5

    def test_grid_and_generic_paths_agree(self):
        rng = np.random.default_rng(3)
        points = np.ascontiguousarray(rng.uniform(size=(700, 2)))
        grid_model = DBSCAN(eps=0.06, min_samples=6)
        grid_model._fit_grid(points)
        generic_model = DBSCAN(eps=0.06, min_samples=6)
        generic_model._fit_generic(points)
        np.testing.assert_array_equal(
            np.sort(grid_model.core_sample_indices_), np.sort(generic_model.core_sample_indices_)
        )
        # Same partition up to renumbering.
        assert adjusted_mutual_info(grid_model.labels_ + 1, generic_model.labels_ + 1) == pytest.approx(1.0)

    def test_small_eps_marks_everything_noise(self):
        points, _ = three_blobs(n=30)
        model = DBSCAN(eps=1e-6, min_samples=5).fit(points)
        assert set(model.labels_.tolist()) == {-1}

    def test_huge_eps_single_cluster(self):
        points, _ = three_blobs(n=30)
        model = DBSCAN(eps=10.0, min_samples=3).fit(points)
        assert model.n_clusters_found_ == 1
        assert not (model.labels_ == -1).any()

    def test_higher_dimensional_input_uses_generic_path(self):
        rng = np.random.default_rng(4)
        blob_a = rng.normal(0, 0.1, size=(100, 5))
        blob_b = rng.normal(3, 0.1, size=(100, 5))
        model = DBSCAN(eps=1.0, min_samples=5).fit(np.vstack([blob_a, blob_b]))
        assert model.n_clusters_found_ == 2

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=0.0)


class TestAssignNoise:
    def test_noise_points_join_nearest_cluster(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0], [0.2, 0.1], [4.9, 5.1]])
        labels = np.array([0, 0, 1, 1, -1, -1])
        completed = assign_noise_to_nearest_cluster(points, labels)
        assert completed[4] == 0
        assert completed[5] == 1
        assert not (completed == -1).any()

    def test_no_noise_is_identity(self):
        points = np.random.uniform(size=(5, 2))
        labels = np.array([0, 0, 1, 1, 1])
        np.testing.assert_array_equal(assign_noise_to_nearest_cluster(points, labels), labels)

    def test_all_noise_collapses_to_single_cluster(self):
        points = np.random.uniform(size=(4, 2))
        labels = np.full(4, -1)
        completed = assign_noise_to_nearest_cluster(points, labels)
        assert set(completed.tolist()) == {0}

    def test_original_array_not_modified(self):
        points = np.random.uniform(size=(3, 2))
        labels = np.array([0, -1, 0])
        assign_noise_to_nearest_cluster(points, labels)
        assert labels[1] == -1
