"""Tests for repro.grid.sparse_grid and repro.grid.quantizer."""

import numpy as np
import pytest

from repro.grid.quantizer import GridQuantizer
from repro.grid.sparse_grid import SparseGrid


class TestSparseGrid:
    def test_basic_add_and_get(self):
        grid = SparseGrid((4, 4))
        grid.add((1, 2))
        grid.add((1, 2), 2.0)
        assert grid.get((1, 2)) == 3.0
        assert grid.get((0, 0)) == 0.0
        assert (1, 2) in grid
        assert len(grid) == 1

    def test_set_overwrites(self):
        grid = SparseGrid((4,))
        grid.add((1,), 5.0)
        grid.set((1,), 2.0)
        assert grid[(1,)] == 2.0

    def test_discard(self):
        grid = SparseGrid((4,))
        grid.add((2,))
        grid.discard((2,))
        grid.discard((3,))  # absent: no error
        assert len(grid) == 0

    def test_out_of_bounds_rejected(self):
        grid = SparseGrid((4, 4))
        with pytest.raises(ValueError, match="outside"):
            grid.add((4, 0))
        with pytest.raises(ValueError, match="outside"):
            grid.add((-1, 0))

    def test_wrong_dimensionality_rejected(self):
        with pytest.raises(ValueError, match="coordinates"):
            SparseGrid((4, 4)).add((1,))

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            SparseGrid(())
        with pytest.raises(ValueError):
            SparseGrid((0, 3))

    def test_total_cells_and_memory(self):
        grid = SparseGrid((10, 10, 10))
        grid.add((1, 1, 1))
        grid.add((2, 2, 2))
        assert grid.n_total_cells == 1000
        assert grid.memory_cells() == 2

    def test_prune_keeps_strictly_above_threshold(self):
        grid = SparseGrid((4,), {(0,): 1.0, (1,): 2.0, (2,): 3.0})
        pruned = grid.prune(2.0)
        assert pruned.cells() == [(2,)]

    def test_copy_is_independent(self):
        grid = SparseGrid((4,), {(0,): 1.0})
        clone = grid.copy()
        clone.add((1,), 1.0)
        assert len(grid) == 1 and len(clone) == 2

    def test_dense_roundtrip(self):
        dense = np.zeros((3, 3))
        dense[1, 2] = 4.0
        dense[0, 0] = 1.0
        grid = SparseGrid.from_dense(dense)
        np.testing.assert_allclose(grid.to_dense(), dense)

    def test_to_dense_refuses_high_dimension(self):
        grid = SparseGrid((2,) * 8)
        with pytest.raises(ValueError, match="refusing"):
            grid.to_dense()

    def test_lines_along_axis(self):
        grid = SparseGrid((4, 3), {(0, 1): 2.0, (2, 1): 3.0, (1, 0): 1.0})
        lines = dict(grid.lines_along(0))
        # Two occupied lines: one for column 1, one for column 0.
        assert set(lines) == {(1,), (0,)}
        np.testing.assert_allclose(lines[(1,)], [2.0, 0.0, 3.0, 0.0])
        np.testing.assert_allclose(lines[(0,)], [0.0, 1.0, 0.0, 0.0])

    def test_lines_along_invalid_axis(self):
        with pytest.raises(ValueError, match="axis"):
            list(SparseGrid((4, 4)).lines_along(2))

    def test_total_mass(self):
        grid = SparseGrid((4,), {(0,): 1.5, (3,): 2.5})
        assert grid.total_mass() == pytest.approx(4.0)

    def test_densities_order_matches_items(self):
        grid = SparseGrid((5,), {(0,): 1.0, (4,): 9.0})
        values = dict(grid.items())
        np.testing.assert_allclose(sorted(grid.densities()), sorted(values.values()))


class TestGridQuantizer:
    def test_counts_points_per_cell(self):
        points = np.array([[0.1, 0.1], [0.12, 0.11], [0.9, 0.9]])
        result = GridQuantizer(scale=4).fit_transform(points)
        assert result.grid.total_mass() == 3.0
        assert result.grid.n_occupied == 2

    def test_cell_ids_within_range(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(size=(500, 3))
        result = GridQuantizer(scale=8).fit_transform(points)
        assert result.cell_ids.shape == (500, 3)
        assert result.cell_ids.min() >= 0
        assert result.cell_ids.max() <= 7

    def test_maximum_value_falls_in_last_cell(self):
        points = np.array([[0.0], [1.0]])
        result = GridQuantizer(scale=4).fit_transform(points)
        assert result.cell_ids[1, 0] == 3

    def test_per_dimension_scale(self):
        points = np.random.default_rng(1).uniform(size=(100, 2))
        result = GridQuantizer(scale=(4, 16)).fit_transform(points)
        assert result.grid.shape == (4, 16)

    def test_scale_length_mismatch(self):
        with pytest.raises(ValueError, match="entries"):
            GridQuantizer(scale=(4, 4, 4)).fit(np.random.uniform(size=(10, 2)))

    def test_explicit_bounds(self):
        points = np.array([[0.55, 0.75]])
        quantizer = GridQuantizer(scale=10, bounds=([0.0, 0.0], [1.0, 1.0]))
        result = quantizer.fit_transform(points)
        assert result.cell_ids[0].tolist() == [5, 7]

    def test_points_outside_bounds_rejected(self):
        quantizer = GridQuantizer(scale=4, bounds=([0.0], [1.0]))
        with pytest.raises(ValueError, match="outside"):
            quantizer.fit(np.array([[2.0]]))

    def test_constant_dimension_handled(self):
        points = np.column_stack([np.random.uniform(size=20), np.full(20, 3.0)])
        result = GridQuantizer(scale=8).fit_transform(points)
        assert set(result.cell_ids[:, 1].tolist()) == {0}

    def test_transform_requires_fit(self):
        with pytest.raises(RuntimeError, match="fitted"):
            GridQuantizer(scale=4).transform(np.ones((2, 2)))

    def test_feature_count_mismatch_after_fit(self):
        quantizer = GridQuantizer(scale=4).fit(np.random.uniform(size=(10, 2)))
        with pytest.raises(ValueError, match="features"):
            quantizer.transform(np.random.uniform(size=(5, 3)))

    def test_scale_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            GridQuantizer(scale=1).fit(np.random.uniform(size=(10, 2)))

    def test_cell_centers(self):
        quantizer = GridQuantizer(scale=4, bounds=([0.0, 0.0], [4.0, 4.0]))
        quantizer.fit(np.array([[0.5, 0.5], [3.5, 3.5]]))
        centers = quantizer.cell_centers([(0, 0), (3, 3)])
        np.testing.assert_allclose(centers, [[0.5, 0.5], [3.5, 3.5]], rtol=1e-6)

    def test_order_insensitivity_of_grid(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(size=(300, 2))
        shuffled = points[rng.permutation(300)]
        grid_a = GridQuantizer(scale=16).fit_transform(points).grid
        grid_b = GridQuantizer(scale=16).fit_transform(shuffled).grid
        assert dict(grid_a.items()) == dict(grid_b.items())
