"""Hypothesis property tests for the wavelet substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.wavelets.dwt import dwt, idwt, smooth_signal, wavedec, waverec
from repro.wavelets.lifting import inverse_lifting_cdf53, lifting_cdf53
from repro.wavelets.thresholding import hard_threshold, soft_threshold

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)

signals = st.lists(finite_floats, min_size=4, max_size=96).map(np.asarray)
even_signals = (
    st.lists(finite_floats, min_size=4, max_size=96)
    .filter(lambda values: len(values) % 2 == 0)
    .map(np.asarray)
)
wavelet_names = st.sampled_from(["haar", "db2", "db4", "sym4", "bior2.2", "bior1.3"])


class TestPerfectReconstructionProperty:
    @given(signal=signals, wavelet=wavelet_names)
    @settings(max_examples=60, deadline=None)
    def test_single_level_roundtrip(self, signal, wavelet):
        approx, detail = dwt(signal, wavelet)
        reconstructed = idwt(approx, detail, wavelet, output_length=len(signal))
        scale = max(1.0, np.max(np.abs(signal)))
        assert np.max(np.abs(reconstructed - signal)) < 1e-8 * scale

    @given(signal=signals, wavelet=wavelet_names, level=st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_multi_level_roundtrip(self, signal, wavelet, level):
        coefficients = wavedec(signal, wavelet, level=level)
        reconstructed = waverec(coefficients, wavelet, output_length=len(signal))
        scale = max(1.0, np.max(np.abs(signal)))
        assert np.max(np.abs(reconstructed - signal)) < 1e-7 * scale

    @given(signal=even_signals)
    @settings(max_examples=50, deadline=None)
    def test_lifting_roundtrip(self, signal):
        approx, detail = lifting_cdf53(signal)
        reconstructed = inverse_lifting_cdf53(approx, detail)
        scale = max(1.0, np.max(np.abs(signal)))
        assert np.max(np.abs(reconstructed - signal)) < 1e-9 * scale


class TestTransformInvariants:
    @given(signal=signals, wavelet=st.sampled_from(["haar", "db2", "db4", "sym4"]))
    @settings(max_examples=50, deadline=None)
    def test_orthogonal_energy_conservation(self, signal, wavelet):
        approx, detail = dwt(signal, wavelet)
        energy_in = float(np.sum(signal**2))
        # Odd-length signals are padded by repeating the last sample, which
        # adds that sample's energy once.
        if len(signal) % 2 == 1:
            energy_in += float(signal[-1] ** 2)
        energy_out = float(np.sum(approx**2) + np.sum(detail**2))
        assert energy_out == pytest.approx(energy_in, rel=1e-8, abs=1e-6)

    @given(signal=signals, wavelet=wavelet_names)
    @settings(max_examples=50, deadline=None)
    def test_linearity_of_analysis(self, signal, wavelet):
        approx_a, detail_a = dwt(signal, wavelet)
        approx_b, detail_b = dwt(3.0 * signal, wavelet)
        np.testing.assert_allclose(approx_b, 3.0 * approx_a, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(detail_b, 3.0 * detail_a, rtol=1e-9, atol=1e-9)

    @given(signal=signals, wavelet=wavelet_names)
    @settings(max_examples=40, deadline=None)
    def test_coefficient_count_is_half(self, signal, wavelet):
        approx, detail = dwt(signal, wavelet)
        assert len(approx) == (len(signal) + 1) // 2
        assert len(approx) == len(detail)

    @given(signal=signals)
    @settings(max_examples=40, deadline=None)
    def test_smoothing_preserves_length_and_mass(self, signal):
        smoothed = smooth_signal(signal, "bior2.2", level=1)
        assert len(smoothed) == len(signal)
        if len(signal) % 2 == 0:
            assert np.sum(smoothed) == pytest.approx(np.sum(signal), rel=1e-6, abs=1e-6)


class TestThresholdingProperties:
    @given(values=st.lists(finite_floats, min_size=1, max_size=50).map(np.asarray),
           threshold=st.floats(min_value=0.0, max_value=1e3))
    @settings(max_examples=60, deadline=None)
    def test_hard_threshold_idempotent(self, values, threshold):
        once = hard_threshold(values, threshold)
        twice = hard_threshold(once, threshold)
        np.testing.assert_array_equal(once, twice)

    @given(values=st.lists(finite_floats, min_size=1, max_size=50).map(np.asarray),
           threshold=st.floats(min_value=0.0, max_value=1e3))
    @settings(max_examples=60, deadline=None)
    def test_soft_threshold_shrinks_magnitudes(self, values, threshold):
        shrunk = soft_threshold(values, threshold)
        assert np.all(np.abs(shrunk) <= np.abs(values) + 1e-12)

    @given(values=st.lists(finite_floats, min_size=1, max_size=50).map(np.asarray),
           threshold=st.floats(min_value=0.0, max_value=1e3))
    @settings(max_examples=60, deadline=None)
    def test_hard_threshold_never_increases_support(self, values, threshold):
        result = hard_threshold(values, threshold)
        assert np.count_nonzero(result) <= np.count_nonzero(values)
