"""Telemetry surface and admission control of the serving front door.

Two acceptance bars from the serving-plane issue:

* the telemetry snapshot must expose per-model predict latency quantiles,
  queue depth, swap count and drift-check history -- asserted here for the
  in-process path (the procpool tests assert the same snapshot across
  processes);
* a saturated service must shed load with an explicit ``Overloaded``
  rejection, while ``wait_for_slot=True`` / ``backpressure=True`` callers
  block instead and eventually succeed.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.serve import ClusteringService, Overloaded, ServiceClosed, Telemetry

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(41)
    blob = np.clip(rng.normal(0.4, 0.05, size=(1500, 2)), 0.0, 1.0)
    X = np.vstack([blob, rng.uniform(size=(2000, 2))])
    return X, AdaWave(scale=64, bounds=BOUNDS).fit(X).export_model()


class TestTelemetryUnit:
    def test_predict_latency_quantiles(self):
        telemetry = Telemetry()
        for latency in (0.001, 0.002, 0.003, 0.004, 0.100):
            telemetry.record_predict("m", latency, batch_size=10)
        stats = telemetry.snapshot()["predict"]["m"]
        assert stats["count"] == 5
        assert stats["rows"] == 50
        assert stats["latency"]["p50"] == pytest.approx(0.003)
        assert stats["latency"]["p99"] <= stats["latency"]["max"] == 0.100
        assert stats["latency"]["p50"] <= stats["latency"]["p90"]
        assert stats["batch_size"] == {"mean": 10.0, "max": 10}

    def test_counters_and_history(self):
        telemetry = Telemetry(history_limit=2)
        telemetry.record_queue_depth(3)
        telemetry.record_queue_depth(1)
        telemetry.record_reject("m")
        telemetry.record_swap("m", "m@v1")
        telemetry.record_swap("m", "m@v2")
        for index in range(3):
            telemetry.record_drift_check(
                {"drifted": index == 2, "stability": 0.9, "n_seen": index}
            )
        snapshot = telemetry.snapshot()
        assert snapshot["queue"] == {"depth": 1, "max_depth": 3}
        assert snapshot["rejections"] == {"total": 1, "by_model": {"m": 1}}
        assert snapshot["swaps"]["count"] == 2
        assert snapshot["swaps"]["last_version"] == "m@v2"
        assert snapshot["drift"]["checks"] == 3
        assert snapshot["drift"]["drifted"] == 1
        # history is bounded but the counters stay exact
        assert [entry["n_seen"] for entry in snapshot["drift"]["history"]] == [1, 2]

    def test_sink_receives_events_and_failures_are_contained(self):
        events = []

        def sink(event):
            events.append(event)
            if event["event"] == "swap":
                raise RuntimeError("exporter down")

        telemetry = Telemetry(sink=sink)
        telemetry.record_predict("m", 0.001, 5)
        telemetry.record_swap("m", "m@v1")  # sink raises; must be contained
        telemetry.record_reject("m")
        assert [event["event"] for event in events] == ["predict", "swap", "reject"]
        assert telemetry.snapshot()["sink_errors"] == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="reservoir"):
            Telemetry(reservoir=0)
        with pytest.raises(ValueError, match="history_limit"):
            Telemetry(history_limit=0)


class TestServiceTelemetry:
    def test_in_process_snapshot_covers_the_acceptance_surface(self, fitted):
        X, model = fitted
        with ClusteringService() as service:
            service.register("m", model)
            for _ in range(4):
                service.predict("m", X[:200])
            service.swap("m", model)
            snapshot = service.telemetry.snapshot()
        stats = snapshot["predict"]["m"]
        assert stats["count"] >= 1 and stats["rows"] == 4 * 200
        for key in ("p50", "p90", "p99", "mean", "max"):
            assert stats["latency"][key] >= 0.0
        assert snapshot["queue"]["max_depth"] >= 1
        assert snapshot["swaps"] == {
            "count": 1, "by_name": {"m": 1}, "last_version": "m@v1",
        }
        assert snapshot["drift"]["history"] == []  # no controller attached

    def test_shared_telemetry_object_is_used(self, fitted):
        X, model = fitted
        telemetry = Telemetry()
        with ClusteringService(telemetry=telemetry) as service:
            service.register("m", model)
            service.predict("m", X[:50])
        assert telemetry.snapshot()["predict"]["m"]["rows"] == 50


class TestAdmissionControl:
    def _slow_service(self, model, **kwargs):
        """Service whose leader sleeps, so admitted requests stay pending."""
        service = ClusteringService(max_batch_delay=0.25, **kwargs)
        service.register("m", model)
        return service

    def test_overloaded_when_saturated(self, fitted):
        X, model = fitted
        service = self._slow_service(model, max_pending=2)
        # Two leaders-to-be park inside the batch delay, holding both slots.
        first = threading.Thread(target=service.predict, args=("m", X[:50]))
        first.start()
        time.sleep(0.05)
        second = service.submit("m", X[:50])
        with pytest.raises(Overloaded, match="max_pending=2"):
            service.submit("m", X[:50])
        assert service.telemetry.snapshot()["rejections"]["total"] == 1
        np.testing.assert_array_equal(second.result(timeout=10.0), model.predict(X[:50]))
        first.join()
        service.close()

    def test_wait_for_slot_blocks_then_succeeds(self, fitted):
        X, model = fitted
        service = self._slow_service(model, max_pending=1)
        leader = threading.Thread(target=service.predict, args=("m", X[:50]))
        leader.start()
        time.sleep(0.05)
        # Non-blocking submission is rejected...
        with pytest.raises(Overloaded):
            service.submit("m", X[:30])
        # ...but the backpressure path parks until the slot frees.
        labels = service.submit("m", X[:30], wait_for_slot=True).result(timeout=10.0)
        np.testing.assert_array_equal(labels, model.predict(X[:30]))
        leader.join()
        service.close()

    def test_predict_async_backpressure(self, fitted):
        X, model = fitted
        expected = model.predict(X[:100])

        async def main():
            async with ClusteringService(max_pending=1, max_batch_delay=0.05) as service:
                service.register("m", model)
                results = await asyncio.gather(
                    *(
                        service.predict_async("m", X[:100], backpressure=True)
                        for _ in range(6)
                    )
                )
                return results

        results = asyncio.run(asyncio.wait_for(main(), timeout=30.0))
        assert len(results) == 6
        for labels in results:
            np.testing.assert_array_equal(labels, expected)

    def test_close_wakes_backpressure_waiters(self, fitted):
        X, model = fitted
        service = self._slow_service(model, max_pending=1)
        leader = threading.Thread(target=service.predict, args=("m", X[:50]))
        leader.start()
        time.sleep(0.05)
        outcome = []

        def waiter():
            try:
                service.submit("m", X[:30], wait_for_slot=True)
                outcome.append("admitted")
            except ServiceClosed:
                outcome.append("closed")

        blocked = threading.Thread(target=waiter)
        blocked.start()
        time.sleep(0.05)
        service.close()
        blocked.join(timeout=10.0)
        leader.join()
        assert not blocked.is_alive(), "backpressure waiter hung across close()"
        assert outcome in (["closed"], ["admitted"])

    def test_freed_slot_wakes_waiter_immediately(self, fitted):
        """A released slot must admit a parked waiter in well under 100 ms.

        Admission used to poll ``wait(timeout=0.1)``, so a freed slot could
        sit idle for up to a full poll interval; ``_release_slot`` now
        notifies the condition, waking the waiter directly.
        """
        X, model = fitted
        service = ClusteringService(max_pending=1)
        service.register("m", model)
        # Hold the only slot directly so the release instant is ours to time.
        service._admit("m")
        admitted_at = []

        def waiter():
            future = service.submit("m", X[:30], wait_for_slot=True)
            admitted_at.append(time.monotonic())
            future.result(timeout=10.0)

        blocked = threading.Thread(target=waiter)
        blocked.start()
        time.sleep(0.2)  # make sure the waiter is parked, not racing the admit
        assert not admitted_at, "waiter was admitted while the slot was held"
        released_at = time.monotonic()
        service._release_slot()
        blocked.join(timeout=10.0)
        assert not blocked.is_alive()
        wake_latency = admitted_at[0] - released_at
        assert wake_latency < 0.05, (
            f"freed slot took {wake_latency * 1000:.1f} ms to admit a waiter "
            "(busy-wait regression: should be notify-driven, not polled)"
        )
        service.close()

    def test_slot_timeout_bounds_backpressure(self, fitted):
        """``slot_timeout`` turns endless backpressure into a timed rejection."""
        X, model = fitted
        service = ClusteringService(max_pending=1)
        service.register("m", model)
        service._admit("m")
        try:
            start = time.monotonic()
            with pytest.raises(Overloaded, match="timed out after"):
                service.submit("m", X[:30], wait_for_slot=True, slot_timeout=0.2)
            elapsed = time.monotonic() - start
            assert 0.15 <= elapsed < 5.0
            assert service.telemetry.snapshot()["rejections"]["total"] == 1
        finally:
            service._release_slot()
            service.close()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            ClusteringService(max_pending=0)
        with pytest.raises(ValueError, match="max_batch_delay"):
            ClusteringService(max_batch_delay=-0.1)

    def test_queue_depth_property_tracks_pending(self, fitted):
        X, model = fitted
        service = self._slow_service(model)
        assert service.queue_depth == 0
        worker = threading.Thread(target=service.predict, args=("m", X[:50]))
        worker.start()
        time.sleep(0.05)
        assert service.queue_depth == 1
        worker.join()
        assert service.queue_depth == 0
        service.close()
