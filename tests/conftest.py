"""Shared test configuration: Hypothesis profiles.

The ``default`` profile carries the fast-lane example budget; the
``nightly`` profile multiplies it for the property suites.  Property tests
must not pin ``max_examples`` in a per-test ``@settings`` (an explicit
setting overrides the loaded profile, silently disabling the nightly
budget).  Nightly CI selects the profile with ``HYPOTHESIS_PROFILE=nightly``
and prints the derandomization seed so a failing night is replayable
locally with ``--hypothesis-seed=<seed>``.
"""

import os

from hypothesis import settings

settings.register_profile("default", max_examples=100, deadline=None)
settings.register_profile("nightly", max_examples=500, deadline=None)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
