"""Hypothesis properties of the serving lookup path.

Two pins for the serving plane:

* :class:`~repro.grid.lookup.CellLabelIndex` -- the encode/searchsorted
  heart of every ``predict`` -- must agree with a brute-force scan over the
  labelled cells for arbitrary COO inputs (random dimensionalities, scales
  and duplicate-free coordinates), including the astronomically-large-extent
  regime where the index degrades to its hash-table fallback;
* ``ClusterModel.load(mmap=True)`` must predict bit-for-bit identically to
  the plain (copying) load on the same artifacts -- both for models frozen
  from the committed golden datasets and for randomized cell maps -- since
  the multi-process workers serve exclusively from memory-mapped artifacts.
"""

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adawave import AdaWave
from repro.grid.lookup import NOISE_LABEL, CellLabelIndex
from repro.serve.model import ClusterModel

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


@st.composite
def labelled_cells(draw, max_dim=4):
    """Random (cells, labels, queries) with duplicate-free labelled cells.

    ``span`` stretches coordinates up to +-2**34, which in >= 2 dimensions
    overflows the dense-extent linear encoding and exercises the index's
    hash-table fallback alongside the searchsorted fast path.
    """
    ndim = draw(st.integers(min_value=1, max_value=max_dim))
    span = draw(st.sampled_from([3, 12, 100, 2**34]))
    coordinate = st.integers(min_value=-span, max_value=span)
    cell = st.tuples(*([coordinate] * ndim))
    cells = draw(st.lists(cell, min_size=0, max_size=40, unique=True))
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=7),
            min_size=len(cells),
            max_size=len(cells),
        )
    )
    # Query a mix of labelled cells, their neighbours and far-away misses.
    queries = draw(st.lists(cell, min_size=0, max_size=30))
    for index in range(min(len(cells), len(queries) // 2)):
        queries[index] = cells[index]
    return ndim, cells, labels, queries


@given(data=labelled_cells())
@settings(max_examples=120, deadline=None)
def test_cell_label_index_matches_bruteforce_scan(data):
    ndim, cells, labels, queries = data
    index = CellLabelIndex(
        np.asarray(cells, dtype=np.int64).reshape(len(cells), ndim),
        np.asarray(labels, dtype=np.int64),
    )
    got = index.lookup(
        np.asarray(queries, dtype=np.int64).reshape(len(queries), ndim)
    )
    table = dict(zip(cells, labels))
    want = np.asarray(
        [table.get(query, NOISE_LABEL) for query in queries], dtype=np.int64
    )
    np.testing.assert_array_equal(got, want)


@given(data=labelled_cells(max_dim=3), seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_mmap_predict_identical_on_random_models(tmp_path_factory, data, seed):
    """save(compress=False) -> load(mmap=True/False) predict bit-for-bit."""
    ndim, cells, labels, _ = data
    model = ClusterModel(
        lower=np.zeros(ndim),
        upper=np.full(ndim, 1.0),
        grid_shape=(64,) * ndim,
        level=1,
        threshold=0.5,
        cell_coords=np.abs(np.asarray(cells, dtype=np.int64).reshape(len(cells), ndim))
        % 32,
        cell_labels=np.asarray(labels, dtype=np.int64),
        n_clusters=len(set(labels)),
    )
    directory = tmp_path_factory.mktemp("mmap_prop")
    path = model.save(directory / "model.npz", compress=False)
    plain = ClusterModel.load(path)
    mapped = ClusterModel.load(path, mmap=True)
    queries = np.random.default_rng(seed).uniform(-0.2, 1.2, size=(300, ndim))
    np.testing.assert_array_equal(plain.predict(queries), mapped.predict(queries))
    np.testing.assert_array_equal(plain.predict(queries), model.predict(queries))


@pytest.mark.parametrize(
    "fixture", ["running_example.npz", "two_moons_noise.npz", "gaussians_4d.npz"]
)
def test_mmap_predict_identical_on_golden_artifacts(fixture, tmp_path):
    """Models frozen from the committed golden datasets serve identically
    through the copying and the memory-mapped load."""
    archive = np.load(GOLDEN_DIR / fixture)
    points = archive["points"]
    scale = int(archive["scale"])
    model = AdaWave(scale=scale).fit(points).export_model()
    path = model.save(tmp_path / "golden_model.npz", compress=False)
    plain = ClusterModel.load(path)
    mapped = ClusterModel.load(path, mmap=True)
    rng = np.random.default_rng(7)
    fresh = rng.uniform(points.min(axis=0), points.max(axis=0), size=(5000, points.shape[1]))
    for queries in (points, fresh):
        served = plain.predict(queries)
        np.testing.assert_array_equal(served, mapped.predict(queries))
        np.testing.assert_array_equal(served, model.predict(queries))
    assert plain.content_digest() == mapped.content_digest() == model.content_digest()
