"""Tests for repro.core.adawave and repro.core.multiresolution."""

import numpy as np
import pytest

from repro.core.adawave import AdaWave, AdaWaveResult
from repro.core.multiresolution import MultiResolutionAdaWave
from repro.datasets.shapes import gaussian_blob, ring, uniform_noise
from repro.datasets.synthetic import running_example
from repro.metrics import ami_on_true_clusters, contingency_matrix


def two_blob_dataset(seed=0, noise_fraction=0.5, n_per_cluster=400):
    rng = np.random.default_rng(seed)
    blob_a = gaussian_blob(n_per_cluster, center=[0.25, 0.25], std=0.02, random_state=rng)
    blob_b = gaussian_blob(n_per_cluster, center=[0.75, 0.75], std=0.02, random_state=rng)
    n_noise = int(2 * n_per_cluster * noise_fraction / (1 - noise_fraction))
    noise = uniform_noise(n_noise, [0, 0], [1, 1], random_state=rng)
    points = np.vstack([blob_a, blob_b, noise])
    labels = np.concatenate([np.zeros(n_per_cluster), np.ones(n_per_cluster), -np.ones(n_noise)])
    return points, labels.astype(int)


class TestAdaWaveBasics:
    def test_finds_two_blobs_in_noise(self):
        points, labels = two_blob_dataset()
        model = AdaWave(scale=64).fit(points)
        assert model.n_clusters_ == 2
        # Blob cores are recovered; some boundary points fall into filtered
        # cells and are reported as noise, which caps the score.
        assert ami_on_true_clusters(labels, model.labels_) > 0.7

    def test_labels_shape_and_values(self):
        points, _ = two_blob_dataset()
        labels = AdaWave(scale=64).fit_predict(points)
        assert labels.shape == (points.shape[0],)
        assert set(np.unique(labels)).issubset({-1, 0, 1})

    def test_deterministic(self):
        points, _ = two_blob_dataset()
        first = AdaWave(scale=64).fit_predict(points)
        second = AdaWave(scale=64).fit_predict(points)
        np.testing.assert_array_equal(first, second)

    def test_order_insensitive(self):
        points, labels = two_blob_dataset()
        permutation = np.random.default_rng(3).permutation(len(points))
        original = AdaWave(scale=64).fit_predict(points)
        shuffled = AdaWave(scale=64).fit_predict(points[permutation])
        # Same partition up to label names: compare through the contingency table.
        table = contingency_matrix(original[permutation], shuffled)
        # Every original cluster maps to exactly one shuffled cluster.
        assert (np.count_nonzero(table, axis=1) == 1).all()

    def test_noise_points_marked(self):
        points, labels = two_blob_dataset(noise_fraction=0.7)
        model = AdaWave(scale=64).fit(points)
        detected_noise_fraction = np.mean(model.labels_ == -1)
        assert 0.3 < detected_noise_fraction < 0.95

    def test_result_object_populated(self):
        points, _ = two_blob_dataset()
        model = AdaWave(scale=64).fit(points)
        result = model.result_
        assert isinstance(result, AdaWaveResult)
        assert result.n_clusters == model.n_clusters_
        assert result.transformed_grid.n_occupied > 0
        assert result.threshold.threshold == model.threshold_
        assert result.quantization.n_samples == points.shape[0]
        assert sum(result.cluster_sizes.values()) == int(np.sum(~result.noise_mask))

    def test_detects_ring_shape_among_other_clusters(self):
        """Ring-shaped clusters are recovered in the paper's setting: several
        clusters plus heavy noise (the sorted density curve then has the three
        regimes the adaptive threshold expects)."""
        rng = np.random.default_rng(5)
        ring_points = ring(1200, center=(0.62, 0.62), radius=0.2, width=0.008, random_state=rng)
        blob = gaussian_blob(1200, center=[0.2, 0.2], std=0.02, random_state=rng)
        noise = uniform_noise(2400, [0, 0], [1, 1], random_state=rng)
        points = np.vstack([ring_points, blob, noise])
        labels = np.concatenate(
            [np.zeros(1200), np.ones(1200), -np.ones(2400)]
        ).astype(int)
        model = AdaWave(scale=128).fit(points)
        assert model.n_clusters_ >= 2
        assert ami_on_true_clusters(labels, model.labels_) > 0.55

    def test_separates_nested_rings(self):
        rng = np.random.default_rng(6)
        outer = ring(1500, center=(0.5, 0.5), radius=0.35, width=0.01, random_state=rng)
        inner = ring(1500, center=(0.5, 0.5), radius=0.12, width=0.01, random_state=rng)
        noise = uniform_noise(3000, [0, 0], [1, 1], random_state=rng)
        points = np.vstack([outer, inner, noise])
        labels = np.concatenate(
            [np.zeros(1500), np.ones(1500), -np.ones(3000)]
        ).astype(int)
        model = AdaWave(scale=64).fit(points)
        assert model.n_clusters_ >= 2
        assert ami_on_true_clusters(labels, model.labels_) > 0.6


class TestAdaWaveParameters:
    def test_invalid_threshold_method(self):
        with pytest.raises(ValueError):
            AdaWave(threshold_method="magic")

    def test_invalid_connectivity(self):
        with pytest.raises(ValueError):
            AdaWave(connectivity="knight")

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            AdaWave(level=0)

    def test_threshold_none_keeps_everything(self):
        points, _ = two_blob_dataset()
        filtered = AdaWave(scale=64, threshold_method="auto").fit(points)
        unfiltered = AdaWave(scale=64, threshold_method="none").fit(points)
        assert np.mean(unfiltered.labels_ == -1) <= np.mean(filtered.labels_ == -1)

    def test_min_cluster_cells_reduces_cluster_count(self):
        points, _ = two_blob_dataset(noise_fraction=0.8, n_per_cluster=600)
        many = AdaWave(scale=64, min_cluster_cells=1).fit(points)
        few = AdaWave(scale=64, min_cluster_cells=5).fit(points)
        assert few.n_clusters_ <= many.n_clusters_

    def test_face_connectivity_accepted(self):
        points, _ = two_blob_dataset()
        model = AdaWave(scale=64, connectivity="face").fit(points)
        assert model.n_clusters_ >= 2

    def test_higher_level_coarsens(self):
        points, _ = two_blob_dataset()
        fine = AdaWave(scale=64, level=1).fit(points)
        coarse = AdaWave(scale=64, level=2).fit(points)
        assert coarse.result_.transformed_grid.shape == (16, 16)
        assert fine.result_.transformed_grid.shape == (32, 32)

    def test_works_in_higher_dimensions(self):
        rng = np.random.default_rng(7)
        blob_a = rng.normal(loc=0.0, scale=0.3, size=(300, 5))
        blob_b = rng.normal(loc=4.0, scale=0.3, size=(300, 5))
        points = np.vstack([blob_a, blob_b])
        labels = np.concatenate([np.zeros(300), np.ones(300)]).astype(int)
        model = AdaWave(scale=16).fit(points)
        assert model.n_clusters_ == 2
        # In 5-D the per-cell counts are small, so a noticeable share of
        # boundary points ends up in filtered cells.
        assert ami_on_true_clusters(labels, model.labels_) > 0.5

    def test_auto_scale_heuristic(self):
        assert AdaWave.auto_scale(20000, 2) == 128
        assert 4 <= AdaWave.auto_scale(150, 4) <= 16
        assert AdaWave.auto_scale(100, 30) == 4

    def test_auto_scale_returns_powers_of_two(self):
        """Satellite: auto-scaled models must be pyramid- and merge-compatible,
        so the heuristic snaps to the nearest power of two in [4, 128]."""
        for n in (10, 100, 1000, 20000, 10**6):
            for d in (1, 2, 3, 5, 10):
                value = AdaWave.auto_scale(n, d)
                assert 4 <= value <= 128
                assert value & (value - 1) == 0, f"auto_scale({n}, {d}) = {value}"

    def test_auto_scale_string_accepted(self):
        points, labels = two_blob_dataset()
        model = AdaWave(scale="auto").fit(points)
        assert model.n_clusters_ >= 1

    def test_invalid_scale_string_rejected(self):
        points, _ = two_blob_dataset()
        with pytest.raises(ValueError, match="scale"):
            AdaWave(scale="huge").fit(points)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            AdaWave().fit(np.arange(10.0))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            AdaWave().fit(np.array([[0.0, np.nan]]))

    def test_repr_mentions_parameters(self):
        assert "scale=64" in repr(AdaWave(scale=64))


class TestAdaWaveEdgeCases:
    def test_single_sample_raises_clear_error(self):
        with pytest.raises(ValueError, match="single sample"):
            AdaWave(scale=8).fit(np.array([[0.5, 0.5]]))

    def test_single_sample_allowed_with_explicit_bounds(self):
        model = AdaWave(
            scale=8, bounds=([0.0, 0.0], [1.0, 1.0]), min_cluster_cells=1,
            threshold_method="none",
        ).fit(np.array([[0.5, 0.5]]))
        assert model.labels_.shape == (1,)

    def test_constant_feature_dimension_is_handled(self):
        rng = np.random.default_rng(9)
        points = np.column_stack([rng.uniform(size=300), np.full(300, 2.5)])
        model = AdaWave(scale=16).fit(points)
        assert model.labels_.shape == (300,)

    def test_degenerate_explicit_bounds_raise(self):
        points = np.random.default_rng(0).uniform(size=(50, 2))
        with pytest.raises(ValueError, match="degenerate"):
            AdaWave(scale=16, bounds=([0.0, 1.0], [1.0, 1.0])).fit(points)

    def test_scale_sequence_length_mismatch_raises(self):
        points = np.random.default_rng(0).uniform(size=(50, 2))
        with pytest.raises(ValueError, match="entries"):
            AdaWave(scale=(8, 8, 8)).fit(points)

    def test_auto_scale_rejects_invalid_counts(self):
        with pytest.raises(ValueError, match="n_samples"):
            AdaWave.auto_scale(0, 2)
        with pytest.raises(ValueError, match="n_features"):
            AdaWave.auto_scale(100, 0)
        with pytest.raises(TypeError, match="n_features"):
            AdaWave.auto_scale(100, 2.5)

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            AdaWave(engine="turbo")

    def test_reference_engine_is_removed(self):
        """Satellite: the deprecation cycle is complete -- the constructor
        rejects engine='reference' with a pointer at the importable module."""
        with pytest.raises(ValueError, match="repro.engine.reference"):
            AdaWave(engine="reference")

    def test_vectorized_engine_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            AdaWave()  # must not raise

    def test_reference_module_stays_importable(self):
        from repro.engine import reference

        assert hasattr(reference, "quantize_reference")
        assert hasattr(reference, "fit_reference")


class TestAdaWavePredict:
    def test_predict_on_training_points_matches_labels(self):
        points, _ = two_blob_dataset(seed=3)
        model = AdaWave(scale=64).fit(points)
        np.testing.assert_array_equal(model.predict(points), model.labels_)

    def test_predict_on_fresh_points_is_lookup_consistent(self):
        points, _ = two_blob_dataset(seed=3)
        model = AdaWave(scale=64).fit(points)
        rng = np.random.default_rng(0)
        fresh = rng.uniform(size=(500, 2))
        labels = model.predict(fresh)
        # Predicting twice is deterministic, and jittering a point within its
        # own grid cell cannot change its label.
        np.testing.assert_array_equal(labels, model.predict(fresh))
        assert labels.shape == (500,)
        assert set(np.unique(labels)) <= set(range(-1, model.n_clusters_))

    def test_predict_before_fit_raises_not_fitted(self):
        from repro.utils.validation import NotFittedError

        points, _ = two_blob_dataset(seed=3)
        model = AdaWave(scale=64)
        with pytest.raises(NotFittedError, match="not fitted"):
            model.predict(points)
        streaming = AdaWave(
            scale=64, bounds=(points.min(axis=0), points.max(axis=0))
        )
        streaming.partial_fit(points[:50])  # ingested but not finalized
        with pytest.raises(NotFittedError, match="not fitted"):
            streaming.predict(points)

    def test_predict_cache_invalidated_by_refit(self):
        points_a, _ = two_blob_dataset(seed=3)
        points_b, _ = two_blob_dataset(seed=4, noise_fraction=0.3)
        model = AdaWave(scale=64).fit(points_a)
        model.predict(points_a)  # populate the cached artifact
        model.fit(points_b)
        np.testing.assert_array_equal(model.predict(points_b), model.labels_)


class TestAdaWaveOnRunningExample:
    def test_recovers_five_clusters_in_heavy_noise(self):
        data = running_example(noise_fraction=0.75, n_per_cluster=1500, seed=0)
        model = AdaWave(scale=128).fit(data.points)
        # The five true clusters are recovered; a few extra small components
        # of surviving noise cells are tolerated.
        assert 4 <= model.n_clusters_ <= 14
        assert ami_on_true_clusters(data.labels, model.labels_) > 0.6


class TestMultiResolution:
    def test_runs_all_levels(self):
        points, _ = two_blob_dataset()
        model = MultiResolutionAdaWave(scale=64, levels=(1, 2)).fit(points)
        assert sorted(model.cluster_counts()) == [1, 2]
        assert model.selected_level_ == 1
        assert set(model.labels_by_level()) == {1, 2}

    def test_selection_strategies(self):
        points, _ = two_blob_dataset()
        coarsest = MultiResolutionAdaWave(scale=64, levels=(1, 2), select="coarsest").fit(points)
        assert coarsest.selected_level_ == 2
        most = MultiResolutionAdaWave(scale=64, levels=(1, 2), select="most_clusters").fit(points)
        assert most.selected_level_ in (1, 2)

    def test_fit_predict_returns_selected_labels(self):
        points, _ = two_blob_dataset()
        model = MultiResolutionAdaWave(scale=64, levels=(1,))
        labels = model.fit_predict(points)
        np.testing.assert_array_equal(labels, model.labels_)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            MultiResolutionAdaWave(levels=())
        with pytest.raises(ValueError):
            MultiResolutionAdaWave(levels=(0,))
        with pytest.raises(ValueError):
            MultiResolutionAdaWave(select="best")

    def test_single_sample_without_bounds_raises(self):
        """Regression: the shared-quantization refactor must keep AdaWave's
        single-sample guard."""
        with pytest.raises(ValueError, match="single sample"):
            MultiResolutionAdaWave(scale=16).fit(np.array([[1.0, 2.0]]))

    def test_matches_per_level_adawave_fits_exactly(self):
        """The shared-quantization path is a pure refactor: labels per level
        must equal fresh AdaWave fits at those levels."""
        points, _ = two_blob_dataset()
        multi = MultiResolutionAdaWave(scale=64, levels=(1, 2)).fit(points)
        for level in (1, 2):
            solo = AdaWave(scale=64, level=level).fit(points)
            np.testing.assert_array_equal(multi.labels_by_level()[level], solo.labels_)
