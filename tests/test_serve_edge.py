"""HTTP edge: round trips, deadline propagation, load shedding, drain.

The acceptance bars from the dead-worker/edge issue:

* a tier-1 smoke test drives a real socket round trip -- start on an
  ephemeral port, one JSON predict, clean shutdown;
* ``X-Deadline-Ms`` propagates: an expired or exceeded deadline answers
  504 instead of queueing forever, while a saturated service without a
  deadline sheds with 429;
* ``POST /swap/<name>`` performs a blue/green publish over the wire;
* ``/healthz`` and ``/metrics`` serve the telemetry snapshot;
* npy request bodies are answered in kind (no JSON on the hot path).
"""

import io
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.serve import ClusteringService, EdgeThread

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(47)
    models = []
    for offset in (0.3, 0.7):
        blob = np.clip(rng.normal(offset, 0.04, size=(1500, 2)), 0.0, 1.0)
        X = np.vstack([blob, rng.uniform(size=(2500, 2))])
        models.append(AdaWave(scale=64, bounds=BOUNDS).fit(X).export_model())
    queries = rng.uniform(size=(200, 2))
    expected = [model.predict(queries) for model in models]
    assert not np.array_equal(expected[0], expected[1])
    return models, queries, expected


@pytest.fixture()
def edge(corpus):
    models, _, _ = corpus
    service = ClusteringService(max_pending=8)
    service.register("prod", models[0])
    with EdgeThread(service) as running:
        yield running, service, models
    service.close()


def _request(url, *, data=None, headers=None, method=None):
    request = urllib.request.Request(
        url, data=data, headers=headers or {}, method=method
    )
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, response.read(), response.headers


def _predict_json(edge_url, name, points, headers=None):
    body = json.dumps({"points": np.asarray(points).tolist()}).encode()
    merged = {"Content-Type": "application/json", **(headers or {})}
    status, payload, _ = _request(
        f"{edge_url}/predict/{name}", data=body, headers=merged
    )
    return status, json.loads(payload)


class TestEdgeRoundTrip:
    def test_smoke_round_trip(self, corpus):
        """Tier-1 smoke: ephemeral port, one predict, clean shutdown."""
        models, queries, expected = corpus
        service = ClusteringService()
        service.register("prod", models[0])
        with EdgeThread(service) as edge:
            assert edge.port != 0
            status, document = _predict_json(edge.url, "prod", queries[:20])
            assert status == 200
            assert document["n"] == 20
            np.testing.assert_array_equal(document["labels"], expected[0][:20])
        service.close()

    def test_json_and_npy_bodies_answer_in_kind(self, edge, corpus):
        running, _, _ = edge
        _, queries, expected = corpus
        status, document = _predict_json(running.url, "prod", queries)
        assert status == 200
        np.testing.assert_array_equal(document["labels"], expected[0])

        buffer = io.BytesIO()
        np.save(buffer, queries)
        status, payload, headers = _request(
            f"{running.url}/predict/prod",
            data=buffer.getvalue(),
            headers={"Content-Type": "application/x-npy"},
        )
        assert status == 200
        assert headers["Content-Type"] == "application/x-npy"
        labels = np.load(io.BytesIO(payload))
        assert labels.dtype == expected[0].dtype
        np.testing.assert_array_equal(labels, expected[0])

    def test_healthz_and_metrics(self, edge, corpus):
        running, service, _ = edge
        _, queries, _ = corpus
        _predict_json(running.url, "prod", queries[:10])
        status, payload, _ = _request(f"{running.url}/healthz")
        assert status == 200
        health = json.loads(payload)
        assert health["status"] == "ok"
        assert "prod" in health["models"]

        status, payload, _ = _request(f"{running.url}/metrics")
        assert status == 200
        snapshot = json.loads(payload)
        # The full Telemetry.snapshot() surface plus the edge's own section.
        assert snapshot["predict"]["prod"]["count"] >= 1
        assert {"queue", "rejections", "swaps", "workers", "edge"} <= set(snapshot)
        assert snapshot["edge"]["requests_by_status"]["200"] >= 1

    def test_swap_over_the_wire(self, edge, corpus, tmp_path):
        running, service, models = edge
        _, queries, expected = corpus
        artifact = tmp_path / "next.npz"
        models[1].save(artifact)
        status, payload, _ = _request(
            f"{running.url}/swap/prod", data=artifact.read_bytes()
        )
        assert status == 200
        assert json.loads(payload)["version"] == "prod@v1"
        status, document = _predict_json(running.url, "prod", queries)
        assert status == 200
        np.testing.assert_array_equal(document["labels"], expected[1])

    def test_drain_refuses_new_connections(self, edge, corpus):
        running, _, _ = edge
        _, queries, _ = corpus
        status, _ = _predict_json(running.url, "prod", queries[:5])
        assert status == 200
        running.close()
        with pytest.raises(urllib.error.URLError):
            _request(f"{running.url}/healthz")
        running.close()  # idempotent


class TestEdgeErrors:
    def _error_status(self, call):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call()
        return excinfo.value.code, json.loads(excinfo.value.read())

    def test_unknown_model_is_404(self, edge, corpus):
        running, _, _ = edge
        _, queries, _ = corpus
        code, document = self._error_status(
            lambda: _predict_json(running.url, "ghost", queries[:5])
        )
        assert code == 404
        assert "ghost" in document["error"]

    def test_unknown_path_is_404_and_wrong_method_405(self, edge):
        running, _, _ = edge
        code, _ = self._error_status(lambda: _request(f"{running.url}/nope"))
        assert code == 404
        code, _ = self._error_status(
            lambda: _request(f"{running.url}/healthz", data=b"x")
        )
        assert code == 405

    def test_malformed_body_is_400(self, edge):
        running, _, _ = edge
        code, document = self._error_status(
            lambda: _request(
                f"{running.url}/predict/prod",
                data=b"not json",
                headers={"Content-Type": "application/json"},
            )
        )
        assert code == 400
        assert "decode" in document["error"]

    def test_bad_swap_artifact_is_400(self, edge):
        running, _, _ = edge
        code, _ = self._error_status(
            lambda: _request(f"{running.url}/swap/prod", data=b"garbage npz")
        )
        assert code == 400

    def test_expired_deadline_is_504(self, edge, corpus):
        running, _, _ = edge
        _, queries, _ = corpus
        code, document = self._error_status(
            lambda: _predict_json(
                running.url, "prod", queries[:5], headers={"X-Deadline-Ms": "0"}
            )
        )
        assert code == 504
        assert "deadline" in document["error"]

    def test_invalid_deadline_is_400(self, edge, corpus):
        running, _, _ = edge
        _, queries, _ = corpus
        code, _ = self._error_status(
            lambda: _predict_json(
                running.url, "prod", queries[:5],
                headers={"X-Deadline-Ms": "soon"},
            )
        )
        assert code == 400


class TestEdgeLoadShedding:
    def test_saturated_service_sheds_429_or_times_out_504(self, corpus):
        models, queries, _ = corpus
        service = ClusteringService(max_pending=1)
        service.register("prod", models[0])
        with EdgeThread(service) as edge:
            # Hold the only admission slot so the edge sees saturation.
            service._admit("prod")
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _predict_json(edge.url, "prod", queries[:5])
                assert excinfo.value.code == 429

                # With a deadline, the request *waits* for a slot -- and
                # answers 504 once the budget is spent, never queueing forever.
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _predict_json(
                        edge.url, "prod", queries[:5],
                        headers={"X-Deadline-Ms": "200"},
                    )
                assert excinfo.value.code == 504
            finally:
                service._release_slot()
            # Slot free again: the same deadline now succeeds.
            status, document = _predict_json(
                edge.url, "prod", queries[:5], headers={"X-Deadline-Ms": "5000"}
            )
            assert status == 200
            assert document["n"] == 5
        service.close()


class TestEdgeDeadlineValidation:
    """Every malformed ``X-Deadline-Ms`` answers an actionable 400."""

    def _error_status(self, call):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call()
        return excinfo.value.code, json.loads(excinfo.value.read())

    @pytest.mark.parametrize(
        "value, fragment",
        [
            ("soon", "not a number"),
            ("10ms", "not a number"),
            ("", "not a number"),
            ("-250", "negative"),
            ("-0.5", "negative"),
            ("inf", "finite"),
            ("Infinity", "finite"),
            ("-inf", "finite"),
            ("nan", "finite"),
            ("NaN", "finite"),
        ],
    )
    def test_malformed_deadline_is_actionable_400(
        self, edge, corpus, value, fragment
    ):
        running, _, _ = edge
        _, queries, _ = corpus
        code, document = self._error_status(
            lambda: _predict_json(
                running.url, "prod", queries[:5],
                headers={"X-Deadline-Ms": value},
            )
        )
        assert code == 400
        assert "X-Deadline-Ms" in document["error"]
        assert fragment in document["error"], document["error"]

    def test_zero_deadline_still_times_out_504(self, edge, corpus):
        running, _, _ = edge
        _, queries, _ = corpus
        code, document = self._error_status(
            lambda: _predict_json(
                running.url, "prod", queries[:5],
                headers={"X-Deadline-Ms": "0"},
            )
        )
        assert code == 504
        assert "deadline" in document["error"]

    def test_valid_deadline_still_succeeds(self, edge, corpus):
        running, _, _ = edge
        _, queries, _ = corpus
        status, document = _predict_json(
            running.url, "prod", queries[:5],
            headers={"X-Deadline-Ms": "30000"},
        )
        assert status == 200
        assert document["n"] == 5


class TestEdgeObservability:
    def test_responses_carry_trace_id_header(self, edge, corpus):
        running, _, _ = edge
        _, queries, _ = corpus
        body = json.dumps({"points": queries[:5].tolist()}).encode()
        status, _, headers = _request(
            f"{running.url}/predict/prod",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        assert status == 200
        trace_id = headers["X-Trace-Id"]
        assert trace_id and len(trace_id) == 16
        int(trace_id, 16)  # well-formed hex

    def test_per_route_latency_quantiles_in_snapshot(self, edge, corpus):
        running, service, _ = edge
        _, queries, _ = corpus
        for _ in range(4):
            _predict_json(running.url, "prod", queries[:10])
        _request(f"{running.url}/healthz")
        status, payload, _ = _request(f"{running.url}/metrics")
        assert status == 200
        snapshot = json.loads(payload)
        routes = snapshot["edge"]["routes"]
        assert routes["predict"]["count"] >= 4
        assert routes["healthz"]["count"] >= 1
        latency = routes["predict"]["latency"]
        assert {"p50", "p90", "p99", "mean", "max"} <= set(latency)
        assert latency["p50"] <= latency["p90"] <= latency["p99"]
        assert routes["predict"]["by_status"]["200"] >= 4

    def test_bad_requests_counted_under_their_route(self, edge, corpus):
        running, _, _ = edge
        _, queries, _ = corpus
        with pytest.raises(urllib.error.HTTPError):
            _predict_json(
                running.url, "prod", queries[:5],
                headers={"X-Deadline-Ms": "soon"},
            )
        _, payload, _ = _request(f"{running.url}/metrics")
        routes = json.loads(payload)["edge"]["routes"]
        assert routes["predict"]["by_status"]["400"] >= 1

    def test_debug_slow_lists_captured_traces(self, edge, corpus):
        running, _, _ = edge
        _, queries, _ = corpus
        for _ in range(3):
            _predict_json(running.url, "prod", queries[:10])
        status, payload, _ = _request(f"{running.url}/debug/slow")
        assert status == 200
        captured = json.loads(payload)
        assert captured["count"] >= 3
        assert captured["slowest"], "served requests must enter the slow ring"
        entry = captured["slowest"][0]
        assert {"trace_id", "total_seconds", "spans", "coverage"} <= set(entry)
        stages = {span["stage"] for span in entry["spans"]}
        assert "worker-predict" in stages
        assert entry["coverage"] >= 0.95

    def test_expired_deadline_surfaces_as_violation(self, edge, corpus):
        running, service, _ = edge
        _, queries, _ = corpus
        with pytest.raises(urllib.error.HTTPError):
            _predict_json(
                running.url, "prod", queries[:5],
                headers={"X-Deadline-Ms": "0"},
            )
        _, payload, _ = _request(f"{running.url}/debug/slow")
        captured = json.loads(payload)
        assert captured["violations"], (
            "a pre-expired deadline must surface in the violation ring"
        )
        assert captured["violations"][-1]["error"] is not None


class TestMetricsContentNegotiation:
    """``GET /metrics`` honours Accept q-values, parameters and wildcards."""

    @pytest.mark.parametrize(
        "accept, expected",
        [
            ("", "json"),
            ("application/json", "json"),
            ("text/plain", "prometheus"),
            ("application/openmetrics-text", "prometheus"),
            # Parameters are parsed, q-values are honoured: openmetrics at
            # half weight loses to full-weight JSON.
            (
                "application/openmetrics-text; version=1.0.0; q=0.5, "
                "application/json",
                "json",
            ),
            ("text/plain; q=0.9, application/json; q=0.8", "prometheus"),
            # q=0 means "explicitly not acceptable".
            ("text/plain; q=0", "json"),
            ("text/plain; q=0, text/*", "prometheus"),
            # Specificity beats wildcards; wildcards still resolve.
            ("text/*", "prometheus"),
            ("application/*", "json"),
            ("*/*", "json"),
            ("text/*; q=0.5, */*", "json"),
            # Ties broken by list order.
            ("text/plain, application/json", "prometheus"),
            ("application/json, text/plain", "json"),
            # Unknown types fall through to the JSON default.
            ("image/png", "json"),
            ("text/plain; q=banana, application/json", "json"),
        ],
    )
    def test_negotiation_table(self, accept, expected):
        from repro.serve.edge import EdgeServer

        assert EdgeServer._negotiate_metrics(accept) == expected

    def test_prometheus_over_the_wire(self, edge, corpus):
        from repro.obs.prometheus import parse_exposition_line

        running, _, _ = edge
        _, queries, _ = corpus
        _predict_json(running.url, "prod", queries[:5])
        status, payload, headers = _request(
            f"{running.url}/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = payload.decode()
        parsed = [
            parse_exposition_line(line)
            for line in text.splitlines()
            if parse_exposition_line(line) is not None
        ]
        assert any(name == "repro_uptime_seconds" for name, _, _ in parsed)

    def test_qvalue_parameter_mix_answers_json(self, edge):
        running, _, _ = edge
        status, payload, headers = _request(
            f"{running.url}/metrics",
            headers={
                "Accept": "application/openmetrics-text; version=1.0.0; "
                "q=0.5, application/json"
            },
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        json.loads(payload)


class TestHeadRequests:
    """HEAD answers like GET -- honest Content-Length, empty body."""

    def test_head_healthz_matches_get(self, edge):
        running, _, _ = edge
        get_status, get_payload, _ = _request(f"{running.url}/healthz")
        head_status, head_payload, head_headers = _request(
            f"{running.url}/healthz", method="HEAD"
        )
        assert (get_status, head_status) == (200, 200)
        assert head_payload == b""
        assert int(head_headers["Content-Length"]) == len(get_payload)

    def test_head_metrics_has_length_but_no_body(self, edge):
        running, _, _ = edge
        status, payload, headers = _request(
            f"{running.url}/metrics", method="HEAD"
        )
        assert status == 200
        assert payload == b""
        assert int(headers["Content-Length"]) > 0
        assert headers["Content-Type"] == "application/json"


class _FakePool:
    """Duck-typed stand-in for ProcessWorkerPool liveness probes."""

    def __init__(self, alive):
        self._alive = alive
        self.n_workers = len(alive)
        self.respawns = 0
        self.shm_sends = 0
        self.pickle_sends = 0
        self.rings = None

    def alive(self):
        return list(self._alive)

    def pids(self):
        return [None] * self.n_workers


class TestEdgeReadiness:
    def test_readyz_on_healthy_edge(self, edge):
        running, _, _ = edge
        status, payload, _ = _request(f"{running.url}/readyz")
        assert status == 200
        document = json.loads(payload)
        assert document["ready"] is True
        assert document["status"] == "ok"
        assert document["reasons"] == []

    def test_some_dead_workers_degrade_but_stay_ready(self, edge):
        running, service, _ = edge
        service.pool = _FakePool([True, False])
        try:
            _, payload, _ = _request(f"{running.url}/healthz")
            health = json.loads(payload)
            assert health["status"] == "degraded"
            assert health["reasons"] == ["workers_dead"]
            assert health["detail"]["workers_alive"] == 1
            # Still answering: load balancers keep routing.
            status, payload, _ = _request(f"{running.url}/readyz")
            assert status == 200
            assert json.loads(payload)["ready"] is True
        finally:
            del service.pool

    def test_all_dead_workers_fail_readiness(self, edge):
        running, service, _ = edge
        service.pool = _FakePool([False, False])
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _request(f"{running.url}/readyz")
            assert excinfo.value.code == 503
            document = json.loads(excinfo.value.read())
            assert document["ready"] is False
            assert document["status"] == "degraded"
            assert "workers_dead" in document["reasons"]
        finally:
            del service.pool


class TestProfileEndpoint:
    def test_start_capture_fetch_stop_round_trip(self, edge, corpus):
        running, _, _ = edge
        _, queries, _ = corpus
        status, payload, _ = _request(
            f"{running.url}/debug/profile",
            data=json.dumps({"action": "start", "hz": 300}).encode(),
        )
        assert status == 200
        document = json.loads(payload)
        assert document["started"] is True
        assert document["running"] is True
        assert document["hz"] == 300.0
        try:
            # Duplicate start answers 409 with the report attached.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _request(
                    f"{running.url}/debug/profile",
                    data=json.dumps({"action": "start"}).encode(),
                )
            assert excinfo.value.code == 409
            assert json.loads(excinfo.value.read())["started"] is False

            for _ in range(10):
                _predict_json(running.url, "prod", queries)
            status, payload, headers = _request(f"{running.url}/debug/profile")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            assert headers["X-Profile-Running"] == "1"
            assert int(headers["X-Profile-Samples"]) >= 1
        finally:
            status, payload, _ = _request(
                f"{running.url}/debug/profile",
                data=json.dumps({"action": "stop"}).encode(),
            )
        assert status == 200
        document = json.loads(payload)
        assert document["stopped"] is True
        assert document["running"] is False
        # The finished capture stays fetchable.
        status, payload, headers = _request(f"{running.url}/debug/profile")
        assert status == 200
        assert headers["X-Profile-Running"] == "0"
        text = payload.decode()
        assert text, "capture across live traffic produced no stacks"
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert stack

    def test_bad_profile_requests_are_400(self, edge):
        running, _, _ = edge
        for body in (b"not json", json.dumps({"action": "selfdestruct"}).encode()):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _request(f"{running.url}/debug/profile", data=body)
            assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _request(
                f"{running.url}/debug/profile",
                data=json.dumps({"action": "start", "hz": -5}).encode(),
            )
        assert excinfo.value.code == 400
        # A failed start must not leave a capture running.
        _, payload, _ = _request(f"{running.url}/debug/profile", method="HEAD")
        status, payload, headers = _request(f"{running.url}/debug/profile")
        assert headers["X-Profile-Running"] == "0"
