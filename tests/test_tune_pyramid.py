"""Coarsening exactness and grid-pyramid construction.

The tuning subsystem rests on one identity: for power-of-two scales,
``quantize(X, s) == quantize(X, 2 * s).coarsen(2)`` bit for bit (same
bounds).  These tests pin that identity down -- deterministically, under
Hypothesis-randomized inputs, for per-dimension scale sequences and for
merged streaming sketches -- plus the pyramid's construction and validation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adawave import AdaWave
from repro.grid.quantizer import GridQuantizer
from repro.grid.sparse_grid import SparseGrid
from repro.tune import GridPyramid, default_base_scale, is_power_of_two

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


def _assert_grids_identical(actual: SparseGrid, expected: SparseGrid) -> None:
    assert actual.shape == expected.shape
    np.testing.assert_array_equal(actual.coords, expected.coords)
    np.testing.assert_array_equal(actual.values, expected.values)


points_2d = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=2,
    max_size=120,
)


class TestCoarsenExactness:
    @given(points=points_2d, exponent=st.integers(min_value=2, max_value=7))
    @settings(max_examples=80, deadline=None)
    def test_coarsen_equals_quantize_at_half_scale(self, points, exponent):
        """coarsen(quantize(X, 2s)) == quantize(X, s), bit for bit."""
        X = np.asarray(points)
        scale = 2**exponent
        fine = GridQuantizer(scale=2 * scale, bounds=BOUNDS).fit_transform(X).grid
        coarse = GridQuantizer(scale=scale, bounds=BOUNDS).fit_transform(X).grid
        _assert_grids_identical(fine.coarsen(2), coarse)

    @given(points=points_2d, steps=st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_coarsen_composes(self, points, steps):
        """coarsen(2) applied k times == coarsen(2**k) in one shot."""
        X = np.asarray(points)
        grid = GridQuantizer(scale=128, bounds=BOUNDS).fit_transform(X).grid
        stepwise = grid
        for _ in range(steps):
            stepwise = stepwise.coarsen(2)
        _assert_grids_identical(stepwise, grid.coarsen(2**steps))

    @given(
        points=points_2d,
        exp_x=st.integers(min_value=2, max_value=6),
        exp_y=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_per_dimension_scale_sequences(self, points, exp_x, exp_y):
        """The identity holds per dimension for anisotropic scales."""
        X = np.asarray(points)
        scale = (2**exp_x, 2**exp_y)
        fine = GridQuantizer(
            scale=(2 * scale[0], 2 * scale[1]), bounds=BOUNDS
        ).fit_transform(X).grid
        coarse = GridQuantizer(scale=scale, bounds=BOUNDS).fit_transform(X).grid
        _assert_grids_identical(fine.coarsen(2), coarse)
        # And coarsening along one axis only.
        semi = GridQuantizer(
            scale=(scale[0], 2 * scale[1]), bounds=BOUNDS
        ).fit_transform(X).grid
        _assert_grids_identical(fine.coarsen((2, 1)), semi)

    @given(
        points=points_2d,
        n_batches=st.integers(min_value=1, max_value=5),
        exponent=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_merged_streaming_sketches_coarsen_exactly(
        self, points, n_batches, exponent
    ):
        """Coarsening a merged multi-shard stream sketch == quantizing the
        concatenated data at the half scale: the rescale primitive composes
        with the mergeable-sketch property."""
        X = np.asarray(points)
        scale = 2**exponent
        shards = [
            AdaWave(scale=2 * scale, bounds=BOUNDS, lookup_only=True)
            for _ in range(n_batches)
        ]
        for shard, batch in zip(shards, np.array_split(X, n_batches)):
            shard.partial_fit(batch)
        merged = AdaWave(scale=2 * scale, bounds=BOUNDS, lookup_only=True)
        for shard in shards:
            merged.merge_stream(shard)
        expected = GridQuantizer(scale=scale, bounds=BOUNDS).fit_transform(X).grid
        _assert_grids_identical(merged._sketch.coarsen(2), expected)

    def test_mass_is_preserved(self):
        rng = np.random.default_rng(0)
        grid = GridQuantizer(scale=64, bounds=BOUNDS).fit_transform(
            rng.uniform(size=(3000, 2))
        ).grid
        for factor in (1, 2, 8, 64):
            assert grid.coarsen(factor).total_mass() == grid.total_mass()

    def test_factor_one_is_identity_copy(self):
        grid = SparseGrid((8, 8), {(1, 2): 3.0, (7, 7): 1.0})
        copy = grid.coarsen(1)
        _assert_grids_identical(copy, grid)
        copy.add((0, 0), 1.0)
        assert (0, 0) not in grid  # independent storage

    def test_invalid_factors_raise(self):
        grid = SparseGrid((8, 8), {(0, 0): 1.0})
        with pytest.raises(ValueError, match=">= 1"):
            grid.coarsen(0)
        with pytest.raises(ValueError, match="per dimension"):
            grid.coarsen((2, 2, 2))

    def test_non_divisible_shape_uses_ceil(self):
        grid = SparseGrid((5, 5), {(4, 4): 2.0, (0, 0): 1.0})
        coarse = grid.coarsen(2)
        assert coarse.shape == (3, 3)
        assert coarse.get((2, 2)) == 2.0
        assert coarse.get((0, 0)) == 1.0


class TestGridPyramid:
    def _grid(self, scale=64, n=4000, seed=0):
        rng = np.random.default_rng(seed)
        return GridQuantizer(scale=scale, bounds=BOUNDS).fit_transform(
            rng.uniform(size=(n, 2))
        ).grid

    def test_levels_match_direct_quantization(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(5000, 2))
        base = GridQuantizer(scale=64, bounds=BOUNDS).fit_transform(X).grid
        pyramid = GridPyramid(base, min_scale=8)
        assert pyramid.factors == (1, 2, 4, 8)
        for level in pyramid:
            expected = GridQuantizer(
                scale=level.scale, bounds=BOUNDS
            ).fit_transform(X).grid
            _assert_grids_identical(level.grid, expected)

    def test_explicit_factors(self):
        pyramid = GridPyramid(self._grid(), factors=(1, 4))
        assert pyramid.factors == (1, 4)
        assert pyramid.levels[1].scale == (16, 16)

    def test_rejects_non_power_of_two_base(self):
        grid = SparseGrid((100, 100), {(0, 0): 1.0})
        with pytest.raises(ValueError, match="power-of-two"):
            GridPyramid(grid)

    def test_rejects_bad_factors(self):
        grid = self._grid()
        with pytest.raises(ValueError, match="powers of two"):
            GridPyramid(grid, factors=(1, 3))
        with pytest.raises(ValueError, match="exceeds"):
            GridPyramid(grid, factors=(128,))
        with pytest.raises(ValueError, match="increasing"):
            GridPyramid(grid, factors=(4, 2))

    def test_default_base_scale_is_power_of_two(self):
        for d in range(1, 12):
            assert is_power_of_two(default_base_scale(d))
        assert default_base_scale(2) == 256
        with pytest.raises(ValueError, match="n_features"):
            default_base_scale(0)
