"""Tests for repro.spatial: union-find, KD-tree and neighbour helpers."""

import numpy as np
import pytest

from repro.spatial.kdtree import KDTree
from repro.spatial.neighbors import k_nearest_neighbors, pairwise_distances, radius_neighbors
from repro.spatial.union_find import UnionFind


class TestUnionFind:
    def test_initial_components(self):
        union = UnionFind(["a", "b", "c"])
        assert union.n_components == 3
        assert len(union) == 3

    def test_union_reduces_components(self):
        union = UnionFind(["a", "b", "c"])
        union.union("a", "b")
        assert union.n_components == 2
        assert union.connected("a", "b")
        assert not union.connected("a", "c")

    def test_union_is_transitive(self):
        union = UnionFind()
        union.union(1, 2)
        union.union(2, 3)
        assert union.connected(1, 3)

    def test_add_is_idempotent(self):
        union = UnionFind()
        union.add("x")
        union.add("x")
        assert union.n_components == 1

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            UnionFind().find("missing")

    def test_groups(self):
        union = UnionFind([1, 2, 3, 4])
        union.union(1, 2)
        union.union(3, 4)
        groups = union.groups()
        assert sorted(sorted(group) for group in groups.values()) == [[1, 2], [3, 4]]

    def test_component_labels_are_dense(self):
        union = UnionFind([10, 20, 30])
        union.union(10, 30)
        labels = union.component_labels()
        assert set(labels.values()) == {0, 1}
        assert labels[10] == labels[30]

    def test_tuple_keys(self):
        union = UnionFind()
        union.union((0, 0), (0, 1))
        assert union.connected((0, 0), (0, 1))

    def test_union_same_set_keeps_count(self):
        union = UnionFind([1, 2])
        union.union(1, 2)
        union.union(1, 2)
        assert union.n_components == 1


class TestKDTree:
    @pytest.fixture
    def points(self):
        return np.random.default_rng(0).uniform(size=(200, 3))

    def test_radius_query_matches_bruteforce(self, points):
        tree = KDTree(points, leaf_size=8)
        query = points[17]
        radius = 0.3
        expected = np.flatnonzero(np.linalg.norm(points - query, axis=1) <= radius)
        np.testing.assert_array_equal(tree.query_radius(query, radius), expected)

    def test_knn_matches_bruteforce(self, points):
        tree = KDTree(points, leaf_size=8)
        query = np.array([0.5, 0.5, 0.5])
        distances, indices = tree.query(query, k=5)
        brute = np.linalg.norm(points - query, axis=1)
        expected_indices = np.argsort(brute)[:5]
        np.testing.assert_array_equal(np.sort(indices), np.sort(expected_indices))
        np.testing.assert_allclose(np.sort(distances), np.sort(brute[expected_indices]))

    def test_knn_distances_sorted(self, points):
        distances, _ = KDTree(points).query(points[0], k=10)
        assert np.all(np.diff(distances) >= 0)

    def test_k_larger_than_n_is_capped(self):
        points = np.random.default_rng(1).uniform(size=(5, 2))
        distances, indices = KDTree(points).query(points[0], k=50)
        assert len(indices) == 5

    def test_zero_radius_returns_self(self, points):
        tree = KDTree(points)
        result = tree.query_radius(points[3], 0.0)
        assert 3 in result

    def test_dimension_mismatch_raises(self, points):
        tree = KDTree(points)
        with pytest.raises(ValueError, match="features"):
            tree.query_radius([0.1, 0.2], 0.5)
        with pytest.raises(ValueError, match="features"):
            tree.query([0.1, 0.2], k=1)

    def test_invalid_parameters(self, points):
        with pytest.raises(ValueError):
            KDTree(points, leaf_size=0)
        with pytest.raises(ValueError):
            KDTree(points).query_radius(points[0], -1.0)
        with pytest.raises(ValueError):
            KDTree(points).query(points[0], k=0)

    def test_duplicate_points_handled(self):
        points = np.zeros((50, 2))
        tree = KDTree(points)
        assert len(tree.query_radius([0.0, 0.0], 0.1)) == 50


class TestNeighbors:
    def test_pairwise_distances_symmetric_and_zero_diagonal(self):
        X = np.random.default_rng(2).uniform(size=(20, 4))
        distances = pairwise_distances(X)
        np.testing.assert_allclose(distances, distances.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(distances), 0.0, atol=1e-6)

    def test_pairwise_distances_known_values(self):
        X = np.array([[0.0, 0.0], [3.0, 4.0]])
        np.testing.assert_allclose(pairwise_distances(X)[0, 1], 5.0)

    def test_pairwise_cross(self):
        X = np.array([[0.0, 0.0]])
        Y = np.array([[1.0, 0.0], [0.0, 2.0]])
        np.testing.assert_allclose(pairwise_distances(X, Y), [[1.0, 2.0]])

    def test_feature_mismatch(self):
        with pytest.raises(ValueError, match="features"):
            pairwise_distances(np.ones((2, 2)), np.ones((2, 3)))

    def test_radius_neighbors_include_self(self):
        X = np.random.default_rng(3).uniform(size=(30, 2))
        neighborhoods = radius_neighbors(X, 0.2)
        for index, neighbors in enumerate(neighborhoods):
            assert index in neighbors

    def test_radius_neighbors_bruteforce_and_tree_agree(self):
        X = np.random.default_rng(4).uniform(size=(600, 2))
        small = radius_neighbors(X[:100], 0.15)
        tree_based = radius_neighbors(X, 0.15)
        for index in range(100):
            expected = np.flatnonzero(np.linalg.norm(X - X[index], axis=1) <= 0.15)
            np.testing.assert_array_equal(tree_based[index], expected)
        assert len(small) == 100

    def test_knn_excludes_self(self):
        X = np.random.default_rng(5).uniform(size=(40, 2))
        distances, indices = k_nearest_neighbors(X, 3)
        assert distances.shape == (40, 3)
        for index in range(40):
            assert index not in indices[index]
        assert np.all(distances > 0)

    def test_knn_k_too_large(self):
        with pytest.raises(ValueError, match="k must be <"):
            k_nearest_neighbors(np.ones((3, 2)), 3)
