"""StreamController alert callbacks and the telemetry drift-history export.

The control-loop contract: ``on_drift`` fires with the full
:class:`~repro.stream.DriftReport` payload whenever a check flags drift,
``on_swap`` fires with ``(version, model)`` on every publication (warmup
included), exceptions raised by user callbacks are contained -- counted in
telemetry, never propagated into ``ingest`` -- and the drift-check history
reads out of the serving telemetry snapshot.
"""

import numpy as np
import pytest

from repro.datasets.synthetic import drifting_dataset
from repro.serve import ClusterModel, ClusteringService, Telemetry
from repro.stream import DriftReport, StreamController

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


def _controller(**kwargs):
    return StreamController(
        "live",
        BOUNDS,
        2,
        base_scale=256,
        warmup=1000,
        check_every=1,
        **kwargs,
    )


@pytest.fixture(scope="module")
def phases():
    """A stationary warmup snapshot and a fully shifted one."""
    return (
        drifting_dataset(0.0, n_per_cluster=600, seed=3).points,
        drifting_dataset(1.0, n_per_cluster=600, seed=4).points,
    )


class TestAlertCallbacks:
    def test_on_swap_fires_with_version_and_model(self, phases):
        stationary, _ = phases
        published = []
        with _controller(on_swap=lambda version, model: published.append((version, model))) as plane:
            plane.ingest(stationary)
        assert [version for version, _ in published] == ["live@v1"]
        assert all(isinstance(model, ClusterModel) for _, model in published)
        assert published[0][1] is plane.model_

    def test_on_drift_fires_with_report_payload(self, phases):
        stationary, shifted = phases
        alerts = []
        swaps = []
        with _controller(
            window=1,  # the sketch turns over completely each batch
            on_drift=alerts.append,
            on_swap=lambda version, model: swaps.append(version),
        ) as plane:
            plane.ingest(stationary)
            assert swaps == ["live@v1"]  # warmup publish, no drift yet
            assert alerts == []
            report = plane.ingest(shifted)
        assert report is not None and report.drifted
        assert alerts == [report]
        assert isinstance(alerts[0], DriftReport)
        assert alerts[0].reasons  # the payload carries the scored criteria
        assert alerts[0].stability <= 1.0
        # The drift triggered a re-tune, so on_swap fired again.
        assert len(swaps) == 2 and swaps[-1] == plane.version_

    def test_raising_callbacks_are_contained_and_counted(self, phases):
        stationary, shifted = phases

        def explode(*_args):
            raise RuntimeError("pager down")

        with _controller(window=1, on_drift=explode, on_swap=explode) as plane:
            plane.ingest(stationary)  # on_swap raises; must not propagate
            assert plane.callback_errors_ == 1
            report = plane.ingest(shifted)  # on_drift + on_swap raise
            assert report is not None and report.drifted
        assert plane.callback_errors_ == 3
        assert plane.n_retunes_ == 2  # the control loop kept re-tuning
        callbacks = plane.telemetry.snapshot()["callbacks"]
        assert callbacks["errors"] == 3
        assert "pager down" in callbacks["last"]

    def test_manual_retune_also_fires_on_swap(self, phases):
        stationary, _ = phases
        swaps = []
        with _controller(on_swap=lambda version, model: swaps.append(version)) as plane:
            plane.ingest(stationary)
            plane.retune()
        assert swaps == ["live@v1", "live@v2"]


class TestTelemetryExport:
    def test_drift_history_reads_out_of_the_service_snapshot(self, phases):
        stationary, shifted = phases
        service = ClusteringService(telemetry=Telemetry(history_limit=8))
        with _controller(window=1, service=service) as plane:
            plane.ingest(stationary)
            plane.ingest(stationary)
            plane.ingest(shifted)
            snapshot = plane.telemetry.snapshot()
        assert plane.telemetry is service.telemetry
        drift = snapshot["drift"]
        assert drift["checks"] == plane.n_checks_ == 2
        assert drift["drifted"] >= 1
        history = drift["history"]
        assert len(history) == 2
        # The history entries are the full report payloads, JSON-able.
        for entry, report in zip(history, plane.history_):
            assert entry["drifted"] == report.drifted
            assert entry["stability"] == pytest.approx(report.stability)
            assert entry["n_seen"] == report.n_seen
            assert isinstance(entry["reasons"], list)
        # Swaps recorded by the service land in the same snapshot: the
        # warmup publish plus the drift re-tune.
        assert snapshot["swaps"]["count"] == plane.n_retunes_ == 2
        service.close()

    def test_predictions_and_swaps_share_the_snapshot(self, phases):
        stationary, _ = phases
        with _controller() as plane:
            plane.ingest(stationary)
            queries = np.random.default_rng(5).uniform(size=(200, 2))
            plane.predict(queries)
            snapshot = plane.telemetry.snapshot()
        assert snapshot["predict"]["live"]["rows"] == 200
        assert snapshot["swaps"]["by_name"] == {"live": 1}
