"""Tests for the dip test, SkinnyDip, DipMeans, WaveCluster, spectral and RIC."""

import numpy as np
import pytest

from repro.baselines import (
    RIC,
    DipMeans,
    SelfTuningSpectralClustering,
    SkinnyDip,
    SpectralClustering,
    UniDip,
    WaveCluster,
)
from repro.baselines.diptest import dip_and_modal_interval, dip_statistic, dip_test
from repro.metrics import adjusted_mutual_info, ami_on_true_clusters


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestDipStatistic:
    def test_lower_bound(self, rng):
        sample = rng.uniform(size=100)
        assert dip_statistic(sample) >= 1.0 / 200.0

    def test_unimodal_samples_have_small_dip(self, rng):
        gaussian = rng.normal(size=800)
        uniform = rng.uniform(size=800)
        assert dip_statistic(gaussian) < 0.04
        assert dip_statistic(uniform) < 0.05

    def test_bimodal_sample_has_large_dip(self, rng):
        bimodal = np.concatenate([rng.normal(-4, 0.5, 400), rng.normal(4, 0.5, 400)])
        assert dip_statistic(bimodal) > 0.1

    def test_bimodal_exceeds_unimodal(self, rng):
        gaussian = rng.normal(size=500)
        bimodal = np.concatenate([rng.normal(-4, 0.5, 250), rng.normal(4, 0.5, 250)])
        assert dip_statistic(bimodal) > 3 * dip_statistic(gaussian)

    def test_scale_and_shift_invariance(self, rng):
        sample = rng.normal(size=300)
        base = dip_statistic(sample)
        assert dip_statistic(5.0 * sample + 100.0) == pytest.approx(base, abs=1e-12)

    def test_tiny_samples(self):
        assert dip_statistic([1.0, 2.0]) == pytest.approx(0.25)
        assert dip_statistic([3.0, 3.0, 3.0, 3.0]) == pytest.approx(1.0 / 8.0)

    def test_modal_interval_covers_the_mode(self, rng):
        sample = np.sort(np.concatenate([rng.normal(-5, 0.3, 300), rng.normal(5, 0.3, 300)]))
        _dip, (low, high) = dip_and_modal_interval(sample)
        assert 0 <= low <= high < len(sample)


class TestDipTest:
    def test_unimodal_p_value_large(self, rng):
        _dip, p_value = dip_test(rng.normal(size=400), n_boot=100)
        assert p_value > 0.2

    def test_bimodal_p_value_small(self, rng):
        sample = np.concatenate([rng.normal(-4, 0.5, 200), rng.normal(4, 0.5, 200)])
        _dip, p_value = dip_test(sample, n_boot=100)
        assert p_value < 0.01

    def test_tiny_sample_is_unimodal_by_convention(self):
        _dip, p_value = dip_test([1.0, 2.0, 3.0])
        assert p_value == 1.0

    def test_null_cache_reused(self, rng):
        from repro.baselines import diptest

        diptest._NULL_CACHE.clear()
        dip_test(rng.normal(size=128), n_boot=50)
        assert (128, 50) in diptest._NULL_CACHE


class TestUniDip:
    def test_single_gaussian_gives_one_interval(self, rng):
        intervals = UniDip(alpha=0.05, n_boot=60).fit(rng.normal(size=400))
        assert len(intervals) == 1

    def test_two_separated_modes_give_two_intervals(self, rng):
        sample = np.concatenate([rng.normal(-5, 0.3, 400), rng.normal(5, 0.3, 400)])
        intervals = UniDip(alpha=0.05, n_boot=60).fit(sample)
        assert len(intervals) >= 2
        # The intervals are disjoint and ordered.
        for (low_a, high_a), (low_b, _high_b) in zip(intervals, intervals[1:]):
            assert high_a <= low_b

    def test_empty_input(self):
        assert UniDip().fit([]) == []

    def test_tiny_input(self):
        assert UniDip().fit([1.0, 2.0]) == [(1.0, 2.0)]


class TestSkinnyDip:
    def test_finds_gaussian_clusters_in_noise(self, rng):
        clusters = np.vstack(
            [
                rng.normal([-5, -5], 0.3, size=(300, 2)),
                rng.normal([5, 5], 0.3, size=(300, 2)),
            ]
        )
        noise = rng.uniform(-10, 10, size=(600, 2))
        points = np.vstack([clusters, noise])
        labels_true = np.concatenate([np.zeros(300), np.ones(300), -np.ones(600)]).astype(int)
        model = SkinnyDip(alpha=0.05, n_boot=60).fit(points)
        assert model.n_clusters_found_ >= 2
        assert ami_on_true_clusters(labels_true, model.labels_) > 0.4

    def test_concentrates_cluster_in_one_hyperrectangle(self, rng):
        cluster = rng.normal([0, 0], 0.2, size=(200, 2))
        noise = rng.uniform(-8, 8, size=(400, 2))
        model = SkinnyDip(alpha=0.05, n_boot=60).fit(np.vstack([cluster, noise]))
        cluster_labels = model.labels_[:200]
        assigned = cluster_labels[cluster_labels != -1]
        assert assigned.size > 100
        # The dense Gaussian ends up concentrated in a single modal box.
        dominant = np.bincount(assigned).max()
        assert dominant > 0.8 * assigned.size

    def test_hyperrectangles_match_cluster_count(self, rng):
        points = rng.normal(size=(200, 2))
        model = SkinnyDip(n_boot=60).fit(points)
        assert len(model.hyperrectangles_) == model.n_clusters_found_


class TestDipMeans:
    def test_estimates_three_clusters(self, rng):
        centers = np.array([[0, 0], [8, 0], [4, 8]])
        points = np.vstack([rng.normal(c, 0.4, size=(120, 2)) for c in centers])
        labels_true = np.repeat(np.arange(3), 120)
        model = DipMeans(random_state=0, n_boot=60).fit(points)
        assert 2 <= model.n_clusters_ <= 4
        assert adjusted_mutual_info(labels_true, model.labels_) > 0.7

    def test_single_gaussian_is_not_split(self, rng):
        model = DipMeans(random_state=0, n_boot=60).fit(rng.normal(size=(300, 2)))
        assert model.n_clusters_ == 1


class TestWaveCluster:
    def test_finds_blobs(self, rng):
        blob_a = rng.normal([0.25, 0.25], 0.02, size=(400, 2))
        blob_b = rng.normal([0.75, 0.75], 0.02, size=(400, 2))
        points = np.vstack([blob_a, blob_b])
        labels_true = np.repeat([0, 1], 400)
        model = WaveCluster(scale=64).fit(points)
        assert model.n_clusters_ >= 2
        assert ami_on_true_clusters(labels_true, model.labels_) > 0.8

    def test_rejects_high_dimensional_input(self, rng):
        with pytest.raises(ValueError, match="dense grid"):
            WaveCluster(scale=8).fit(rng.normal(size=(50, 8)))

    def test_percentile_bounds_validated(self):
        with pytest.raises(ValueError):
            WaveCluster(density_percentile=150.0)

    def test_threshold_recorded(self, rng):
        model = WaveCluster(scale=32).fit(rng.uniform(size=(500, 2)))
        assert model.threshold_ >= 0


class TestSpectral:
    def test_recovers_blobs(self, rng):
        centers = np.array([[0, 0], [4, 0], [2, 4]])
        points = np.vstack([rng.normal(c, 0.2, size=(60, 2)) for c in centers])
        labels_true = np.repeat(np.arange(3), 60)
        model = SpectralClustering(n_clusters=3, random_state=0).fit(points)
        assert adjusted_mutual_info(labels_true, model.labels_) > 0.9

    def test_self_tuning_estimates_k(self, rng):
        centers = np.array([[0, 0], [5, 0], [0, 5]])
        points = np.vstack([rng.normal(c, 0.2, size=(50, 2)) for c in centers])
        model = SelfTuningSpectralClustering(random_state=0).fit(points)
        assert model.n_clusters in (2, 3, 4)
        assert model.labels_ is not None

    def test_separates_concentric_rings_where_kmeans_cannot(self, rng):
        from repro.baselines import KMeans
        from repro.datasets.shapes import ring

        inner = ring(150, center=(0, 0), radius=1.0, width=0.05, random_state=rng)
        outer = ring(150, center=(0, 0), radius=4.0, width=0.05, random_state=rng)
        points = np.vstack([inner, outer])
        labels_true = np.repeat([0, 1], 150)
        spectral = SelfTuningSpectralClustering(n_clusters=2, random_state=0).fit(points)
        kmeans = KMeans(n_clusters=2, random_state=0).fit(points)
        assert adjusted_mutual_info(labels_true, spectral.labels_) > 0.9
        assert adjusted_mutual_info(labels_true, kmeans.labels_) < 0.5

    def test_too_many_points_rejected(self):
        with pytest.raises(ValueError, match="subsample"):
            SpectralClustering(n_clusters=2).fit(np.random.uniform(size=(5000, 2)))


class TestRIC:
    def test_purifies_noise_and_merges(self, rng):
        blob_a = rng.normal([0, 0], 0.2, size=(200, 2))
        blob_b = rng.normal([6, 6], 0.2, size=(200, 2))
        noise = rng.uniform(-4, 10, size=(100, 2))
        points = np.vstack([blob_a, blob_b, noise])
        labels_true = np.concatenate([np.zeros(200), np.ones(200), -np.ones(100)]).astype(int)
        model = RIC(n_initial_clusters=8, random_state=0).fit(points)
        assert model.n_clusters_ <= 8
        assert ami_on_true_clusters(labels_true, model.labels_) > 0.5

    def test_purification_and_merge_never_add_clusters(self, rng):
        points = rng.normal(size=(300, 2))
        model = RIC(n_initial_clusters=6, random_state=0).fit(points)
        assert 1 <= model.n_clusters_ <= 6
        assert model.labels_.shape == (300,)
