"""Tests for repro.wavelets.filters: filter bank construction."""

import numpy as np
import pytest

from repro.wavelets.filters import (
    Wavelet,
    available_wavelets,
    build_wavelet,
    daubechies_scaling_filter,
    quadrature_mirror,
    symlet_scaling_filter,
)

SQRT2 = np.sqrt(2.0)


class TestDaubechiesConstruction:
    def test_db1_is_haar(self):
        np.testing.assert_allclose(daubechies_scaling_filter(1), [SQRT2 / 2, SQRT2 / 2])

    def test_db2_matches_published_coefficients(self):
        expected = np.array([0.48296291, 0.83651630, 0.22414387, -0.12940952])
        np.testing.assert_allclose(daubechies_scaling_filter(2), expected, atol=1e-7)

    @pytest.mark.parametrize("order", [1, 2, 3, 4, 6, 8, 10])
    def test_scaling_filter_sums_to_sqrt2(self, order):
        assert daubechies_scaling_filter(order).sum() == pytest.approx(SQRT2)

    @pytest.mark.parametrize("order", [2, 3, 4, 5, 6, 8, 10])
    def test_orthonormality_of_even_shifts(self, order):
        h = daubechies_scaling_filter(order)
        for shift in range(0, len(h), 2):
            inner = np.sum(h[: len(h) - shift] * h[shift:])
            expected = 1.0 if shift == 0 else 0.0
            assert inner == pytest.approx(expected, abs=1e-8)

    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_filter_length_is_twice_order(self, order):
        assert len(daubechies_scaling_filter(order)) == 2 * order

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            daubechies_scaling_filter(0)

    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_vanishing_moments_of_wavelet_filter(self, order):
        """The QMF high-pass must annihilate polynomials up to degree order-1."""
        h = daubechies_scaling_filter(order)
        g = quadrature_mirror(h)
        support = np.arange(len(g))
        for degree in range(order):
            assert np.sum(g * support**degree) == pytest.approx(0.0, abs=1e-6)


class TestSymletConstruction:
    @pytest.mark.parametrize("order", [2, 4, 6, 8])
    def test_orthonormality(self, order):
        h = symlet_scaling_filter(order)
        for shift in range(0, len(h), 2):
            inner = np.sum(h[: len(h) - shift] * h[shift:])
            expected = 1.0 if shift == 0 else 0.0
            assert inner == pytest.approx(expected, abs=1e-8)

    def test_sum_is_sqrt2(self):
        assert symlet_scaling_filter(4).sum() == pytest.approx(SQRT2)


class TestBuildWavelet:
    def test_available_list_is_nonempty_and_buildable(self):
        names = available_wavelets()
        assert "db1" in names and "bior2.2" in names
        for name in names:
            assert isinstance(build_wavelet(name), Wavelet)

    def test_haar_alias(self):
        assert build_wavelet("haar").name == "db1"

    def test_cdf22_alias(self):
        assert build_wavelet("cdf2.2").name == "bior2.2"

    def test_wavelet_instance_passthrough(self):
        wavelet = build_wavelet("db3")
        assert build_wavelet(wavelet) is wavelet

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="Unknown wavelet"):
            build_wavelet("meyer99")

    def test_non_string_raises(self):
        with pytest.raises(TypeError):
            build_wavelet(42)

    def test_cache_returns_same_object(self):
        assert build_wavelet("db4") is build_wavelet("db4")

    def test_orthogonal_flag(self):
        assert build_wavelet("db2").orthogonal
        assert not build_wavelet("bior2.2").orthogonal

    def test_bior22_analysis_lowpass_is_legall_53(self):
        wavelet = build_wavelet("bior2.2")
        expected = SQRT2 * np.array([-0.125, 0.25, 0.75, 0.25, -0.125])
        np.testing.assert_allclose(wavelet.dec_lo, expected)
        expected_rec = SQRT2 * np.array([0.25, 0.5, 0.25])
        np.testing.assert_allclose(wavelet.rec_lo, expected_rec)

    def test_biorthogonality_of_cdf_pairs(self):
        """sum_n rec_lo[n] dec_lo[n - 2k] = delta_k for the spline pairs."""
        for name in ("bior1.1", "bior2.2", "bior1.3"):
            wavelet = build_wavelet(name)
            # Place both filters on a common time axis using their offsets.
            times_rec = np.arange(len(wavelet.rec_lo)) - wavelet.rec_lo_offset
            times_dec = np.arange(len(wavelet.dec_lo)) - wavelet.dec_lo_offset
            for k in range(-3, 4):
                total = 0.0
                for value_rec, time_rec in zip(wavelet.rec_lo, times_rec):
                    for value_dec, time_dec in zip(wavelet.dec_lo, times_dec):
                        if time_dec == time_rec - 2 * k:
                            total += value_rec * value_dec
                expected = 1.0 if k == 0 else 0.0
                assert total == pytest.approx(expected, abs=1e-10), name

    def test_filter_length_property(self):
        wavelet = build_wavelet("bior2.2")
        assert wavelet.filter_length == 5

    def test_vanishing_moments_recorded(self):
        assert build_wavelet("db5").vanishing_moments == 5
        assert build_wavelet("bior2.2").vanishing_moments == 2


class TestQuadratureMirror:
    def test_alternating_signs(self):
        h = np.array([1.0, 2.0, 3.0, 4.0])
        g = quadrature_mirror(h)
        np.testing.assert_allclose(g, [4.0, -3.0, 2.0, -1.0])

    def test_haar_mirror(self):
        g = quadrature_mirror(np.array([SQRT2 / 2, SQRT2 / 2]))
        np.testing.assert_allclose(g, [SQRT2 / 2, -SQRT2 / 2])
