"""DriftMonitor and the end-to-end drift -> re-tune -> hot-swap loop.

The acceptance bar for the online control plane: stream a distribution
shift (moving clusters, rising noise) through StreamSketch + DriftMonitor +
ClusteringService; the served model must be re-tuned and hot-swapped with
zero failed ``predict`` calls, and the post-swap noise-aware AMI on the
shifted suite must reach at least 0.95x a from-scratch
``AdaWave(scale="tune")`` fit.
"""

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.datasets.synthetic import drifting_dataset
from repro.experiments.drift import run_drift_recovery
from repro.metrics import ami_on_true_clusters
from repro.serve import ClusteringService
from repro.stream import DriftMonitor, StreamController, StreamSketch
from repro.utils.validation import NotFittedError

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


def _shuffled_batches(points, n_batches, rng):
    permutation = rng.permutation(len(points))
    return [points[ix] for ix in np.array_split(permutation, n_batches)]


@pytest.fixture(scope="module")
def stationary():
    return drifting_dataset(0.0, n_per_cluster=600, seed=0)


@pytest.fixture(scope="module")
def shifted():
    return drifting_dataset(1.0, n_per_cluster=600, seed=1)


class TestDriftMonitor:
    def _published(self, points):
        """A sketch holding ``points`` and a model tuned from it."""
        sketch = StreamSketch(BOUNDS, 256, 2)
        sketch.ingest(points)
        estimator = AdaWave(scale="tune", bounds=BOUNDS)
        estimator.fit(points)
        model = estimator.export_model()
        monitor = DriftMonitor()
        monitor.rebase(model, sketch)
        return sketch, model, monitor

    def test_assess_before_rebase_raises(self, stationary):
        sketch = StreamSketch(BOUNDS, 256, 2)
        sketch.ingest(stationary.points)
        with pytest.raises(NotFittedError, match="rebase"):
            DriftMonitor().assess(sketch)

    def test_stationary_stream_is_not_drift(self, stationary):
        sketch, _model, monitor = self._published(stationary.points)
        # More draws from the same distribution: the model keeps explaining
        # the sketch.
        fresh = drifting_dataset(0.0, n_per_cluster=600, seed=5)
        sketch.ingest(fresh.points)
        report = monitor.assess(sketch)
        assert not report.drifted
        assert report.stability >= monitor.min_stability
        assert report.noise_shift <= monitor.max_noise_shift
        assert report.reasons == ()

    def test_distribution_shift_is_drift(self, stationary, shifted):
        _sketch, model, monitor = self._published(stationary.points)
        # A window that has fully turned over to the shifted distribution.
        live = StreamSketch(BOUNDS, 256, 2)
        live.ingest(shifted.points)
        monitor.rebase(model, _sketch)
        report = monitor.assess(live)
        assert report.drifted
        assert report.reasons

    def test_mismatched_bounds_rejected(self, stationary):
        _sketch, model, monitor = self._published(stationary.points)
        alien = StreamSketch(([0.0, 0.0], [2.0, 2.0]), 256, 2)
        alien.ingest(stationary.points)
        with pytest.raises(ValueError, match="bounds"):
            monitor.assess(alien)

    def test_non_nesting_resolution_rejected(self, stationary):
        _sketch, model, monitor = self._published(stationary.points)
        coarse = StreamSketch(BOUNDS, 48, 2)  # 48 does not nest under 256
        coarse.ingest(stationary.points)
        with pytest.raises(ValueError, match="nest"):
            monitor.assess(coarse)


class TestStreamControllerLoop:
    def test_publishes_after_warmup(self, stationary):
        controller = StreamController("warm", BOUNDS, 2, warmup=500)
        rng = np.random.default_rng(0)
        with controller:
            with pytest.raises(NotFittedError, match="warmup"):
                controller.predict(stationary.points[:10])
            for batch in _shuffled_batches(stationary.points, 6, rng):
                controller.ingest(batch)
            assert controller.model_ is not None
            assert controller.version_.startswith("warm@v")
            assert controller.n_retunes_ >= 1
            labels = controller.predict(stationary.points[:100])
            assert labels.shape == (100,)

    def test_retune_from_empty_sketch_raises(self):
        controller = StreamController("empty", BOUNDS, 2)
        with pytest.raises(ValueError, match="empty"):
            controller.retune()

    def test_non_power_of_two_base_scale_fails_at_construction(self):
        """A bad base_scale must fail before warmup ingestion, not at the
        first publish."""
        with pytest.raises(ValueError, match="power of two"):
            StreamController("bad", BOUNDS, 2, base_scale=100)
        with pytest.raises(ValueError, match="power of two"):
            StreamController("bad", BOUNDS, 2, base_scale=(128, 100))

    def test_stationary_stream_does_not_retune(self, stationary):
        controller = StreamController(
            "calm", BOUNDS, 2, warmup=len(stationary.points) // 2, check_every=1
        )
        rng = np.random.default_rng(3)
        with controller:
            for batch in _shuffled_batches(stationary.points, 8, rng):
                controller.ingest(batch)
            more = drifting_dataset(0.0, n_per_cluster=600, seed=9)
            for batch in _shuffled_batches(more.points, 8, rng):
                controller.ingest(batch)
            assert controller.n_retunes_ == 1  # the initial publish only
            assert all(not report.drifted for report in controller.history_)

    def test_end_to_end_drift_retune_hot_swap(self):
        """The acceptance test: shift the stream, observe detection, re-tune
        and hot-swap under live read traffic with zero failures, and recover
        >= 0.95x of a from-scratch tuned fit on the shifted suite."""
        result = run_drift_recovery(
            n_per_cluster=800, n_batches=8, check_every=2, window=8, seed=0
        )
        assert result.metadata["failed_predicts"] == 0
        assert result.metadata["reader_predicts"] > 0
        assert result.metadata["retunes_in_phase_b"] >= 1
        drifted_checks = [row for row in result.rows if row["drifted"]]
        assert drifted_checks, "the shift was never flagged as drift"
        assert result.metadata["recovery_ratio"] >= 0.95, (
            f"served AMI {result.metadata['ami_served']:.3f} is below 0.95x the "
            f"from-scratch tuned AMI {result.metadata['ami_scratch']:.3f}"
        )

    def test_swaps_are_versioned_blue_green(self, stationary, shifted):
        service = ClusteringService()
        controller = StreamController(
            "live",
            BOUNDS,
            2,
            service=service,
            warmup=len(stationary.points) // 2,
            check_every=1,
            window=6,
        )
        rng = np.random.default_rng(0)
        for batch in _shuffled_batches(stationary.points, 6, rng):
            controller.ingest(batch)
        for batch in _shuffled_batches(shifted.points, 6, rng):
            controller.ingest(batch)
        registry = service.registry
        assert controller.n_retunes_ >= 2
        assert registry.active_version("live") == controller.version_
        assert registry.get("live") is controller.model_
        assert len(registry.versions("live")) == controller.n_retunes_
        # Externally supplied service is left open by controller.close().
        controller.close()
        assert not service.closed
        service.close()
