"""Nightly benchmark-regression checker: seeding, comparison, exit codes."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


def _bench_json(path: Path, means: dict) -> Path:
    path.write_text(json.dumps({
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }))
    return path


class TestLoadAndCompare:
    def test_load_extracts_means(self, tmp_path):
        path = _bench_json(tmp_path / "run.json", {"a": 1.0, "b": 0.25})
        assert checker.load_benchmarks(path) == {"a": 1.0, "b": 0.25}

    def test_load_skips_malformed_entries(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps({"benchmarks": [
            {"fullname": "ok", "stats": {"mean": 1.0}},
            {"fullname": "no-stats"},
            {"stats": {"mean": 2.0}},  # no name
            {"fullname": "zero", "stats": {"mean": 0.0}},
        ]}))
        assert checker.load_benchmarks(path) == {"ok": 1.0}

    def test_compare_flags_only_past_threshold(self):
        baseline = {"fast": 1.0, "slow": 1.0, "gone": 1.0}
        current = {"fast": 1.15, "slow": 1.35, "new": 9.0}
        regressions, lines = checker.compare(baseline, current, threshold=0.20)
        assert regressions == ["slow"]
        text = "\n".join(lines)
        assert "! slow" in text
        assert "+ new" in text and "- gone" in text

    def test_improvements_never_fail(self):
        regressions, _ = checker.compare({"a": 2.0}, {"a": 0.5}, threshold=0.20)
        assert regressions == []


class TestMainExitCodes:
    def test_missing_baseline_seeds_and_passes(self, tmp_path, capsys):
        current = _bench_json(tmp_path / "current.json", {"a": 1.0})
        baseline = tmp_path / "baseline.json"
        assert checker.main([str(baseline), str(current)]) == 0
        assert "seeded baseline" in capsys.readouterr().out
        assert checker.load_benchmarks(baseline) == {"a": 1.0}

    def test_regression_fails_job(self, tmp_path, capsys):
        baseline = _bench_json(tmp_path / "baseline.json", {"a": 1.0})
        current = _bench_json(tmp_path / "current.json", {"a": 1.5})
        assert checker.main([str(baseline), str(current)]) == 1
        assert "FAILED" in capsys.readouterr().out
        # The failing run must not overwrite the baseline.
        assert checker.load_benchmarks(baseline) == {"a": 1.0}

    def test_pass_within_threshold_and_update(self, tmp_path, capsys):
        baseline = _bench_json(tmp_path / "baseline.json", {"a": 1.0})
        current = _bench_json(tmp_path / "current.json", {"a": 1.1})
        assert checker.main([str(baseline), str(current)]) == 0
        assert checker.load_benchmarks(baseline) == {"a": 1.0}  # no --update
        assert checker.main([str(baseline), str(current), "--update"]) == 0
        assert checker.load_benchmarks(baseline) == {"a": 1.1}

    def test_custom_threshold(self, tmp_path):
        baseline = _bench_json(tmp_path / "baseline.json", {"a": 1.0})
        current = _bench_json(tmp_path / "current.json", {"a": 1.3})
        assert checker.main([str(baseline), str(current)]) == 1
        assert checker.main(
            [str(baseline), str(current), "--threshold", "0.5"]
        ) == 0

    def test_empty_current_run_fails(self, tmp_path, capsys):
        baseline = _bench_json(tmp_path / "baseline.json", {"a": 1.0})
        current = _bench_json(tmp_path / "current.json", {})
        assert checker.main([str(baseline), str(current)]) == 1
        assert "nothing to check" in capsys.readouterr().out
