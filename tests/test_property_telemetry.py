"""Hypothesis properties: Telemetry snapshots stay JSON-able and consistent.

The snapshot is the single read surface every consumer (the edge's
``/metrics``, the Prometheus renderer, operators debugging slow requests)
shares, so two invariants must hold under *any* interleaving of recordings:

* ``snapshot()`` is always ``json.dumps``-able -- no ndarray, deque, tuple
  key or other non-JSON type ever leaks into it;
* it is internally consistent: per-trace stage span sums never exceed the
  trace total, histogram buckets are cumulative with the ``+Inf`` bucket
  equal to the count, and the counters are monotone non-decreasing across
  successive snapshots even while recorder threads race the reader.
"""

import json
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import Trace
from repro.serve.metrics import Telemetry

STAGES = ("edge-parse", "admission-wait", "queue-wait", "worker-predict",
          "collect")

# One recorded event, as (kind, payload) tuples a worker thread replays.
events = st.one_of(
    st.tuples(
        st.just("predict"),
        st.tuples(
            st.sampled_from(("live", "canary")),
            st.floats(min_value=0.0, max_value=0.5,
                      allow_nan=False, allow_infinity=False),
            st.integers(min_value=0, max_value=10_000),
        ),
    ),
    st.tuples(
        st.just("stage"),
        st.tuples(
            st.sampled_from(STAGES),
            st.floats(min_value=0.0, max_value=20.0,
                      allow_nan=False, allow_infinity=False),
        ),
    ),
    st.tuples(
        st.just("edge"),
        st.tuples(
            st.sampled_from(("predict", "healthz", "bad-request")),
            st.sampled_from((200, 400, 404, 429, 504)),
            st.floats(min_value=0.0, max_value=2.0,
                      allow_nan=False, allow_infinity=False),
        ),
    ),
    st.tuples(
        st.just("trace"),
        st.tuples(
            st.lists(
                st.tuples(
                    st.sampled_from(STAGES),
                    st.floats(min_value=0.0, max_value=0.2,
                              allow_nan=False, allow_infinity=False),
                ),
                max_size=6,
            ),
            st.booleans(),  # errored?
            st.one_of(st.none(), st.floats(min_value=0.0, max_value=0.05,
                                           allow_nan=False,
                                           allow_infinity=False)),
        ),
    ),
    st.tuples(st.just("reject"), st.sampled_from(("live", "canary"))),
    st.tuples(st.just("swap"), st.sampled_from(("live", "canary"))),
)


def _replay(telemetry, event):
    kind, payload = event
    if kind == "predict":
        model, seconds, batch = payload
        telemetry.record_predict(model, seconds, batch)
    elif kind == "stage":
        stage, seconds = payload
        telemetry.record_stage(stage, seconds)
    elif kind == "edge":
        route, status, seconds = payload
        telemetry.record_edge_request(route, status, seconds)
    elif kind == "trace":
        spans, errored, deadline = payload
        trace = Trace(deadline=deadline)
        cursor = trace.started
        for stage, seconds in spans:
            trace.add_span(stage, cursor, cursor + seconds)
            cursor += seconds
        trace.close(error="synthetic failure" if errored else None)
        telemetry.record_trace(trace)
    elif kind == "reject":
        telemetry.record_reject(payload)
    elif kind == "swap":
        telemetry.record_swap(payload, "v2")


def _assert_consistent(snapshot):
    # JSON-able, round-trip stable.
    round_tripped = json.loads(json.dumps(snapshot))
    assert round_tripped["traces"]["count"] == snapshot["traces"]["count"]
    # Histogram buckets cumulative; +Inf bucket equals the series count.
    for stage, series in snapshot["stages"].items():
        counts = [count for _, count in series["buckets"]]
        assert counts == sorted(counts), f"{stage} buckets not cumulative"
        assert series["buckets"][-1][0] == "+Inf"
        assert series["buckets"][-1][1] == series["count"]
        assert series["seconds_total"] >= 0.0
        assert series["max"] >= 0.0
    # Edge series: status counts sum to the route count; quantiles ordered.
    for route, series in snapshot["edge"]["routes"].items():
        assert sum(series["by_status"].values()) == series["count"]
        latency = series["latency"]
        assert latency["p50"] <= latency["p90"] <= latency["p99"]
        assert latency["p99"] <= latency["max"] + 1e-12
    # Captured traces: span sums never exceed the measured total.
    captured = (
        snapshot["traces"]["slowest"] + snapshot["traces"]["violations"]
    )
    for entry in captured:
        span_sum = sum(span["seconds"] for span in entry["spans"])
        assert span_sum <= entry["total_seconds"] + 1e-9, entry
        assert 0.0 <= entry["coverage"] <= 1.0
    assert snapshot["traces"]["errors"] <= snapshot["traces"]["count"]
    assert (
        snapshot["traces"]["deadline_violations"]
        <= snapshot["traces"]["count"]
    )


def _counter_vector(snapshot):
    """The monotone counters of a snapshot, as one comparable structure."""
    return {
        "traces": snapshot["traces"]["count"],
        "trace_errors": snapshot["traces"]["errors"],
        "violations": snapshot["traces"]["deadline_violations"],
        "rejections": snapshot["rejections"]["total"],
        "swaps": snapshot["swaps"]["count"],
        "stage_counts": {
            stage: series["count"]
            for stage, series in snapshot["stages"].items()
        },
        "edge_counts": {
            route: series["count"]
            for route, series in snapshot["edge"]["routes"].items()
        },
        "predict_counts": {
            model: series["count"]
            for model, series in snapshot["predict"].items()
        },
    }


def _monotone(before, after):
    assert after["traces"] >= before["traces"]
    assert after["trace_errors"] >= before["trace_errors"]
    assert after["violations"] >= before["violations"]
    assert after["rejections"] >= before["rejections"]
    assert after["swaps"] >= before["swaps"]
    for key in ("stage_counts", "edge_counts", "predict_counts"):
        for name, count in before[key].items():
            assert after[key].get(name, 0) >= count, (key, name)


class TestSnapshotProperties:
    @given(batch=st.lists(events, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_serial_snapshots_consistent_and_monotone(self, batch):
        telemetry = Telemetry(slow_traces=4)
        previous = None
        for index, event in enumerate(batch):
            _replay(telemetry, event)
            if index % 7 == 0:
                snapshot = telemetry.snapshot()
                _assert_consistent(snapshot)
                current = _counter_vector(snapshot)
                if previous is not None:
                    _monotone(previous, current)
                previous = current
        _assert_consistent(telemetry.snapshot())

    @given(
        batches=st.lists(
            st.lists(events, min_size=1, max_size=20),
            min_size=2, max_size=4,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_threaded_interleavings_never_corrupt_snapshot(self, batches):
        telemetry = Telemetry(slow_traces=4)
        start = threading.Barrier(len(batches) + 1)
        errors = []

        def worker(events_for_thread):
            try:
                start.wait(timeout=10)
                for event in events_for_thread:
                    _replay(telemetry, event)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(batch,), daemon=True)
            for batch in batches
        ]
        for thread in threads:
            thread.start()
        start.wait(timeout=10)
        # Snapshot while the recorders race the reader.
        vectors = []
        for _ in range(5):
            snapshot = telemetry.snapshot()
            _assert_consistent(snapshot)
            vectors.append(_counter_vector(snapshot))
            time.sleep(0.0005)
        for thread in threads:
            thread.join(timeout=10)
        assert not errors, errors
        final = telemetry.snapshot()
        _assert_consistent(final)
        vectors.append(_counter_vector(final))
        for before, after in zip(vectors, vectors[1:]):
            _monotone(before, after)
        expected_traces = sum(
            1 for batch in batches for kind, _ in batch if kind == "trace"
        )
        assert final["traces"]["count"] == expected_traces
