"""Asyncio front end and close()/context-manager lifecycle of the service.

The async entry points must (a) never block the event loop on a micro-batch
leader pass, (b) return exactly the labels the sync path returns, and (c)
respect the closed state.
"""

import asyncio

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.serve import ClusteringService, ServiceClosed

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(31)
    blob = np.clip(rng.normal(0.4, 0.05, size=(1500, 2)), 0.0, 1.0)
    noise = rng.uniform(size=(2000, 2))
    X = np.vstack([blob, noise])
    return X, AdaWave(scale=64, bounds=BOUNDS).fit(X).export_model()


class TestAsyncFrontEnd:
    def test_predict_async_matches_sync(self, fitted):
        X, model = fitted

        async def main():
            async with ClusteringService() as service:
                service.register("m", model)
                return await service.predict_async("m", X[:500])

        labels = asyncio.run(main())
        np.testing.assert_array_equal(labels, model.predict(X[:500]))

    def test_concurrent_coroutines_coalesce_and_match(self, fitted):
        X, model = fitted
        expected = model.predict(X)

        async def main():
            async with ClusteringService() as service:
                service.register("m", model)
                slices = [slice(i * 200, (i + 1) * 200) for i in range(8)]
                results = await asyncio.gather(
                    *(service.predict_async("m", X[s]) for s in slices)
                )
                return slices, results, service.n_requests_

        slices, results, n_requests = asyncio.run(main())
        for s, labels in zip(slices, results):
            np.testing.assert_array_equal(labels, expected[s])
        assert n_requests == 8

    def test_unknown_model_raises_through_await(self, fitted):
        async def main():
            async with ClusteringService() as service:
                await service.predict_async("missing", np.zeros((2, 2)))

        with pytest.raises(KeyError, match="missing"):
            asyncio.run(main())

    def test_ingest_async_registers_and_serves(self, fitted):
        X, _model = fitted

        async def main():
            async with ClusteringService() as service:
                frozen = await service.ingest_async(
                    "streamed", np.array_split(X, 4), bounds=BOUNDS, scale=64
                )
                labels = await service.predict_async("streamed", X)
                return frozen, labels

        frozen, labels = asyncio.run(main())
        reference = AdaWave(scale=64, bounds=BOUNDS).fit(X)
        np.testing.assert_array_equal(labels, reference.labels_)
        assert frozen.metadata["n_seen"] == len(X)


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_requests(self, fitted):
        X, model = fitted
        service = ClusteringService()
        service.register("m", model)
        service.predict("m", X[:10])
        service.close()
        service.close()  # idempotent
        assert service.closed
        with pytest.raises(RuntimeError, match="closed"):
            service.predict("m", X[:10])
        with pytest.raises(RuntimeError, match="closed"):
            service.ingest("late", [X[:10]], bounds=BOUNDS, scale=64)

    def test_closed_errors_are_the_dedicated_service_closed_type(self, fitted):
        """Callers can catch the serving plane's shutdown distinctly (and
        ServiceClosed stays a RuntimeError for older call sites)."""
        X, model = fitted
        service = ClusteringService()
        service.register("m", model)
        service.close()
        assert issubclass(ServiceClosed, RuntimeError)
        with pytest.raises(ServiceClosed):
            service.predict("m", X[:10])
        with pytest.raises(ServiceClosed):
            service.submit("m", X[:10])
        with pytest.raises(ServiceClosed):
            service.ingest("late", [X[:10]], bounds=BOUNDS, scale=64)

        async def main():
            await service.predict_async("m", X[:10])

        with pytest.raises(ServiceClosed):
            asyncio.run(main())

    def test_sync_context_manager_closes(self, fitted):
        X, model = fitted
        with ClusteringService() as service:
            service.register("m", model)
            service.predict("m", X[:10])
        assert service.closed

    def test_async_calls_after_close_raise(self, fitted):
        X, model = fitted
        service = ClusteringService()
        service.register("m", model)
        service.close()

        async def main():
            await service.predict_async("m", X[:10])

        with pytest.raises(RuntimeError, match="closed"):
            asyncio.run(main())

    def test_close_lets_queued_async_requests_finish(self, fitted):
        """Requests admitted to the dispatch pool before close() must
        complete, not be rejected mid-flight by the closed flag."""
        import threading

        X, model = fitted
        service = ClusteringService(max_async_workers=1)
        service.register("m", model)
        release = threading.Event()

        async def main():
            loop = asyncio.get_running_loop()
            pool = service._dispatch_pool()
            # Occupy the single worker so the next request queues behind it.
            blocker = loop.run_in_executor(pool, release.wait)
            queued = asyncio.ensure_future(service.predict_async("m", X[:50]))
            await asyncio.sleep(0.05)  # let the queued request be admitted
            closer = loop.run_in_executor(None, service.close)
            release.set()
            labels = await queued
            await blocker
            await closer
            return labels

        labels = asyncio.run(main())
        np.testing.assert_array_equal(labels, model.predict(X[:50]))
        assert service.closed

    def test_registry_survives_close(self, fitted):
        """Closing the service front end must not touch the (shared) registry."""
        X, model = fitted
        service = ClusteringService()
        service.register("m", model)
        service.close()
        assert "m" in service.registry
        np.testing.assert_array_equal(
            service.registry.get("m").predict(X[:10]), model.predict(X[:10])
        )

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="max_async_workers"):
            ClusteringService(max_async_workers=0)
