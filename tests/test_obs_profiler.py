"""Sampling profiler: collapsed stacks, lifecycle, and the predict-frame bar.

The acceptance bar from the monitoring issue: profiling a service under
load yields non-empty collapsed stacks containing a ``predict`` frame.
The profiler only sees the *current process's* threads, so that bar is
exercised against the in-process :class:`~repro.serve.ClusteringService`
(pool workers live in other processes by design).
"""

import threading
import time

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.obs.profiler import DEFAULT_HZ, SamplingProfiler, _collect_stacks
from repro.serve import ClusteringService, ModelRegistry

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


def _distinctly_named_busy_loop(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(index * index for index in range(2000))


def _parse_collapsed(text):
    """collapsed text -> list of (frame tuple, count)."""
    out = []
    for line in text.splitlines():
        if line.startswith("["):
            continue
        stack, count = line.rsplit(" ", 1)
        out.append((tuple(stack.split(";")), int(count)))
    return out


class TestSamplingProfiler:
    def test_validation(self):
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=0.0)
        with pytest.raises(ValueError, match="max_seconds"):
            SamplingProfiler(max_seconds=0.0)
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler().start(hz=-1.0)

    def test_idle_profiler_has_no_thread_and_empty_output(self):
        profiler = SamplingProfiler()
        assert not profiler.running
        assert profiler.collapsed() == ""
        report = profiler.report()
        assert report["running"] is False
        assert report["samples"] == 0
        assert report["seconds"] == 0.0

    def test_captures_a_busy_thread_by_name(self):
        stop = threading.Event()
        worker = threading.Thread(
            target=_distinctly_named_busy_loop, args=(stop,), daemon=True
        )
        worker.start()
        profiler = SamplingProfiler(hz=200.0)
        try:
            assert profiler.start() is True
            assert profiler.start() is False  # already running
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if "_distinctly_named_busy_loop" in profiler.collapsed():
                    break
                time.sleep(0.05)
            assert profiler.stop() is True
            assert profiler.stop() is False  # already stopped
        finally:
            stop.set()
            worker.join(timeout=5.0)
        text = profiler.collapsed()
        assert "_distinctly_named_busy_loop" in text
        stacks = _parse_collapsed(text)
        assert stacks, "capture produced no stacks"
        # Collapsed lines are sorted by descending count.
        counts = [count for _, count in stacks]
        assert counts == sorted(counts, reverse=True)
        # Frames carry "name (filename)" and stacks are root-first.
        busy = next(
            stack for stack, _ in stacks
            if any(frame.startswith("_distinctly_named_busy_loop") for frame in stack)
        )
        assert busy[-1].endswith("(test_obs_profiler.py)") or any(
            "(test_obs_profiler.py)" in frame for frame in busy
        )
        report = profiler.report()
        assert report["samples"] >= 1
        assert report["distinct_stacks"] == len(
            {stack for stack, _ in stacks}
        )
        assert report["seconds"] > 0.0
        assert not report["running"]

    def test_restart_resets_counts(self):
        profiler = SamplingProfiler(hz=500.0)
        with profiler:
            time.sleep(0.05)
        first = profiler.report()["samples"]
        assert first >= 1
        assert profiler.start(hz=250.0) is True
        assert profiler.hz == 250.0
        profiler.stop()
        assert profiler.report()["samples"] <= first + 50  # fresh capture
        assert profiler.report()["hz"] == 250.0

    def test_max_seconds_self_stop(self):
        profiler = SamplingProfiler(hz=100.0, max_seconds=0.05)
        profiler.start()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and profiler.running:
            time.sleep(0.02)
        assert not profiler.running, "profiler must stop itself at max_seconds"

    def test_collect_stacks_skips_requested_thread(self):
        own = threading.get_ident()
        stacks = _collect_stacks(own)
        flat = [frame for stack in stacks for frame in stack]
        assert not any("test_collect_stacks_skips" in frame for frame in flat)
        stacks_with_self = _collect_stacks(None)
        flat = [frame for stack in stacks_with_self for frame in stack]
        assert any("test_collect_stacks_skips" in frame for frame in flat)


class TestPredictFrameAcceptance:
    def test_profile_of_serving_load_contains_predict_frame(self, tmp_path):
        """Acceptance: non-empty collapsed stacks with a ``predict`` frame."""
        rng = np.random.default_rng(3)
        blob = np.clip(rng.normal(0.35, 0.05, size=(1500, 2)), 0.0, 1.0)
        X = np.vstack([blob, rng.uniform(size=(2000, 2))])
        model = AdaWave(scale=64, bounds=BOUNDS).fit(X).export_model()
        registry = ModelRegistry()
        service = ClusteringService(registry)
        try:
            service.register("prod", model)
            queries = rng.uniform(size=(3000, 2))
            profiler = SamplingProfiler(hz=300.0)
            profiler.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                service.predict("prod", queries)
                if any(
                    frame.startswith("predict")
                    for stack, _ in _parse_collapsed(profiler.collapsed())
                    for frame in stack
                ):
                    break
            profiler.stop()
        finally:
            service.close()
        stacks = _parse_collapsed(profiler.collapsed())
        assert stacks, "profiling under load captured nothing"
        assert any(
            frame.startswith("predict")
            for stack, _ in stacks
            for frame in stack
        ), "collapsed stacks never caught the predict path"
