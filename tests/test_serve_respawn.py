"""Self-healing worker pool: crashes cost in-flight batches, never capacity.

The acceptance bars from the dead-worker issue:

* **chaos**: with 2+ workers and traffic flowing, SIGKILL one worker
  mid-traffic -- zero silent wrong answers (every successful future is
  bit-for-bit the model's labels; the killed worker's in-flight batches
  fail fast with an explicit error), capacity returns to the full worker
  count, the respawn shows up in telemetry, and a *subsequent* blue/green
  swap is honored by the respawned worker;
* kill -9 during model binding still converges: the respawned worker
  replays the pool's name -> digest bindings from the store and answers
  correctly;
* the double-resolution race (watchdog dooming a request whose answer is
  simultaneously in the collector's queue) resolves every future exactly
  once and never double-counts telemetry: ``n_requests_`` equals the number
  of futures that actually succeeded.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.serve import ProcessPoolService

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


@pytest.fixture(scope="module")
def corpus():
    """Two distinguishable models plus a query set they disagree on."""
    rng = np.random.default_rng(31)
    models = []
    for offset in (0.25, 0.65):
        blob = np.clip(rng.normal(offset, 0.04, size=(1500, 2)), 0.0, 1.0)
        noise = rng.uniform(size=(2500, 2))
        X = np.vstack([blob, noise])
        models.append(AdaWave(scale=64, bounds=BOUNDS).fit(X).export_model())
    queries = rng.uniform(size=(400, 2))
    expected = [model.predict(queries) for model in models]
    assert not np.array_equal(expected[0], expected[1])
    return models, queries, expected


def _wait_for(predicate, timeout=15.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def _kill_worker(service, index=0):
    process = service.pool.processes[index]
    pid = process.pid
    os.kill(pid, signal.SIGKILL)
    _wait_for(lambda: not process.is_alive(), message="SIGKILL to land")
    return pid


class TestRespawn:
    def test_chaos_kill_mid_traffic_restores_capacity(self, corpus, tmp_path):
        models, queries, expected = corpus
        service = ProcessPoolService(
            tmp_path, n_workers=2, worker_timeout=5.0, max_batch_requests=4
        )
        try:
            service.register("prod", models[0])
            stop = threading.Event()
            outcomes = []  # (labels-or-None, error-or-None), appended under lock
            outcomes_lock = threading.Lock()

            def driver():
                rng = np.random.default_rng(threading.get_ident() % 2**32)
                while not stop.is_set():
                    start = rng.integers(0, 300)
                    X = queries[start : start + 40]
                    want = expected[0][start : start + 40]
                    try:
                        got = service.predict("prod", X)
                        with outcomes_lock:
                            outcomes.append((got, want, None))
                    except Exception as error:
                        with outcomes_lock:
                            outcomes.append((None, None, error))

            drivers = [threading.Thread(target=driver) for _ in range(3)]
            for thread in drivers:
                thread.start()
            time.sleep(0.3)  # traffic flowing
            killed_pid = _kill_worker(service, index=0)
            # Keep traffic flowing through the death and the respawn.
            _wait_for(
                lambda: service.pool.respawns >= 1 and all(service.pool.alive()),
                message="respawn to restore capacity",
            )
            time.sleep(0.3)
            stop.set()
            for thread in drivers:
                thread.join(timeout=15.0)
                assert not thread.is_alive(), "driver thread hung"

            # Zero silent wrong answers: every success is exact.
            successes = 0
            for got, want, error in outcomes:
                if error is None:
                    np.testing.assert_array_equal(got, want)
                    successes += 1
                else:
                    assert "died" in str(error) or "no live worker" in str(error)
            assert successes > 0, "chaos run produced no successful predicts"

            # Capacity is back: a fresh process serves the old slot.
            assert all(service.pool.alive())
            assert service.pool.processes[0].pid != killed_pid
            snapshot = service.telemetry.snapshot()["workers"]
            assert snapshot["respawns"] >= 1
            assert snapshot["by_worker"].get(0, 0) >= 1

            # A swap *after* the crash must be honored by the respawned
            # worker: drive enough round-robin requests to hit both workers.
            service.swap("prod", models[1])
            for start in range(0, 200, 25):
                X = queries[start : start + 25]
                np.testing.assert_array_equal(
                    service.predict("prod", X), expected[1][start : start + 25]
                )
        finally:
            service.close()

    def test_kill_during_bind_replays_bindings(self, corpus, tmp_path):
        """SIGKILL racing the initial model load still converges via replay."""
        models, queries, expected = corpus
        service = ProcessPoolService(tmp_path, n_workers=2, worker_timeout=5.0)
        try:
            # Fire the bind broadcast and kill immediately: the worker is
            # likely mid-load (or has not even dequeued the bind yet).
            service.register("prod", models[0])
            _kill_worker(service, index=0)
            _wait_for(
                lambda: service.pool.respawns >= 1 and all(service.pool.alive()),
                message="respawn after mid-bind kill",
            )
            # Every worker (the respawned one included, via round-robin)
            # must answer from the replayed binding.
            for start in range(0, 160, 20):
                X = queries[start : start + 20]
                np.testing.assert_array_equal(
                    service.predict("prod", X), expected[0][start : start + 20]
                )
            assert service.pool.bindings().keys() == {"prod"}
        finally:
            service.close()

    def test_in_flight_batches_fail_fast_not_hang(self, corpus, tmp_path):
        models, queries, expected = corpus
        service = ProcessPoolService(
            tmp_path, n_workers=1, worker_timeout=5.0, respawn_workers=False
        )
        try:
            service.register("prod", models[0])
            service.predict("prod", queries[:10])  # worker is warm
            futures = [service.submit("prod", queries[:50]) for _ in range(4)]
            _kill_worker(service, index=0)
            for future in futures:
                # Either answered before the kill or failed fast -- never hung.
                try:
                    labels = future.result(timeout=10.0)
                    np.testing.assert_array_equal(labels, expected[0][:50])
                except RuntimeError as error:
                    assert "died" in str(error)
            assert service.pool.respawns == 0  # respawn_workers=False honored
        finally:
            service.close()

    def test_double_resolution_stress_counts_each_request_once(
        self, corpus, tmp_path
    ):
        """Watchdog and collector racing on the same request id is benign.

        Repeated kill-under-load rounds maximise the window where a worker's
        answer sits in the result queue while the watchdog dooms the same
        request id.  Whoever loses the race must be a no-op: every future
        completes exactly once, and the service counts exactly the requests
        that succeeded (a double resolution would double-count
        ``n_requests_`` or crash a daemon thread).
        """
        models, queries, expected = corpus
        service = ProcessPoolService(
            tmp_path, n_workers=2, worker_timeout=5.0, max_batch_requests=2
        )
        try:
            service.register("prod", models[0])
            all_futures = []
            for round_index in range(3):
                futures = [
                    service.submit("prod", queries[:30]) for _ in range(12)
                ]
                all_futures.extend(futures)
                _kill_worker(service, index=round_index % 2)
                _wait_for(
                    lambda: all(service.pool.alive()),
                    message="capacity after stress round",
                )
            successes = 0
            for future in all_futures:
                assert future.done() or future.result(timeout=10.0) is not None
                if future.exception(timeout=10.0) is None:
                    np.testing.assert_array_equal(
                        future.result(), expected[0][:30]
                    )
                    successes += 1
            # Exactly-once accounting: only successful requests are counted,
            # and none is counted twice.
            assert service.n_requests_ == successes
            assert service.telemetry.snapshot()["workers"]["respawns"] >= 3
        finally:
            service.close()
