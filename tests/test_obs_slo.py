"""SLO burn rates: objectives, multi-window alerting, containment sharing.

The acceptance bar: an injected latency/error spike fires the burn-rate
alert callback exactly once per window while the burn lasts, and the
contained-callback idiom (:func:`repro.obs.slo.fire_contained`) is shared
with :class:`repro.stream.StreamController`'s drift plumbing.
"""

import numpy as np
import pytest

from repro.obs.slo import Objective, SloMonitor, fire_contained
from repro.obs.timeseries import TimeSeriesStore
from repro.serve.metrics import STAGE_BUCKETS, Telemetry


def _availability_store(errors_per_tick: float, *, ticks: int = 30) -> TimeSeriesStore:
    """A store where every tick adds 10 requests and the given errors."""
    store = TimeSeriesStore(step=1.0)
    for tick in range(ticks + 1):
        store.observe(
            "edge.requests", tick * 10.0, kind="counter", at=float(tick)
        )
        store.observe(
            "edge.errors", tick * errors_per_tick, kind="counter", at=float(tick)
        )
    return store


class TestObjective:
    def test_validation(self):
        with pytest.raises(ValueError, match="objective"):
            Objective(name="x", objective=1.5)
        with pytest.raises(ValueError, match="kind"):
            Objective(name="x", objective=0.99, kind="exotic")
        with pytest.raises(ValueError, match="histogram series"):
            Objective(name="x", objective=0.99, kind="latency")
        with pytest.raises(ValueError, match="window"):
            Objective(name="x", objective=0.99, windows=())

    def test_availability_bad_fraction_and_burn(self):
        objective = Objective(name="avail", objective=0.99)
        store = _availability_store(5.0)
        # Half the requests fail; budget is 1%: burn = 0.5 / 0.01 = 50.
        assert objective.bad_fraction(store, 30.0, 30.0) == pytest.approx(0.5)
        burns = objective.burn_rates(store, 30.0)
        assert all(entry["burn"] == pytest.approx(50.0) for entry in burns)

    def test_quiet_store_has_zero_burn(self):
        objective = Objective(name="avail", objective=0.99)
        store = TimeSeriesStore()
        assert objective.bad_fraction(store, 60.0, 100.0) == 0.0

    def test_latency_objective_reads_histogram(self):
        telemetry = Telemetry(series=TimeSeriesStore(step=1.0))
        for _ in range(20):
            telemetry.record_stage("worker_predict", 0.5)  # all slow
        telemetry.sample_series(at=10.0)
        objective = Objective(
            name="lat", objective=0.99, kind="latency",
            series="stage.worker_predict", threshold_seconds=0.1,
        )
        assert objective.bad_fraction(
            telemetry.series, 60.0, 10.0
        ) == pytest.approx(1.0)


class TestSloMonitor:
    def test_unique_names_enforced(self):
        a = Objective(name="same", objective=0.99)
        b = Objective(name="same", objective=0.999)
        with pytest.raises(ValueError, match="unique"):
            SloMonitor([a, b], telemetry=Telemetry())

    def test_spike_fires_exactly_once_per_window(self):
        telemetry = Telemetry()
        fired = []
        monitor = SloMonitor(
            [Objective(
                name="avail", objective=0.99,
                windows=((10.0, 10.0), (5.0, 10.0)),
            )],
            telemetry=telemetry,
            on_alert=fired.append,
        )
        store = _availability_store(5.0)  # burning throughout
        # Evaluate every second, as a sampler would: the alert must fire on
        # the first burning evaluation, then stay suppressed until the
        # shortest window (5s) has rolled over.
        for tick in range(10, 21):
            monitor.evaluate(store, float(tick))
        assert len(fired) == 3  # t=10, t=15, t=20
        assert [entry["objective"] for entry in fired] == ["avail"] * 3
        assert monitor.alerts_fired == 3
        assert monitor.burning() == ["avail"]

    def test_alert_payload_carries_burn_rates(self):
        telemetry = Telemetry()
        fired = []
        monitor = SloMonitor(
            [Objective(name="avail", objective=0.99)],
            telemetry=telemetry, on_alert=fired.append,
        )
        monitor.evaluate(_availability_store(5.0), 30.0)
        [payload] = fired
        assert payload["burning"] is True
        assert payload["burn_rates"][0]["burn"] > payload["burn_rates"][0]["threshold"]

    def test_recovery_clears_burning(self):
        telemetry = Telemetry()
        monitor = SloMonitor(
            [Objective(name="avail", objective=0.99, windows=((5.0, 10.0),))],
            telemetry=telemetry,
        )
        store = TimeSeriesStore(step=1.0)
        for tick in range(11):
            store.observe("edge.requests", tick * 10.0, kind="counter", at=float(tick))
            # Errors only during the first 5 ticks, then flat.
            errors = min(tick, 5) * 5.0
            store.observe("edge.errors", errors, kind="counter", at=float(tick))
        monitor.evaluate(store, 5.0)
        assert monitor.burning() == ["avail"]
        monitor.evaluate(store, 10.0)
        assert monitor.burning() == []
        assert monitor.status()["burning"] == []

    def test_all_windows_must_burn(self):
        telemetry = Telemetry()
        monitor = SloMonitor(
            # Long window threshold is unreachable: never alerts.
            [Objective(
                name="avail", objective=0.99,
                windows=((10.0, 1e9), (5.0, 1.0)),
            )],
            telemetry=telemetry,
        )
        results = monitor.evaluate(_availability_store(5.0), 30.0)
        assert results[0]["burning"] is False
        assert monitor.alerts_fired == 0

    def test_raising_alert_callback_is_contained(self):
        telemetry = Telemetry()

        def explode(payload):
            raise RuntimeError("pager is down")

        monitor = SloMonitor(
            [Objective(name="avail", objective=0.99)],
            telemetry=telemetry, on_alert=explode,
        )
        results = monitor.evaluate(_availability_store(5.0), 30.0)
        assert results[0]["fired"] is True
        snapshot = telemetry.snapshot()
        assert snapshot["callbacks"]["errors"] == 1
        assert "slo:avail" in snapshot["callbacks"]["last"]


class TestFireContained:
    def test_none_callback_returns_none(self):
        assert fire_contained(None, "x", Telemetry()) is None

    def test_clean_callback_returns_true(self):
        seen = []
        assert fire_contained(seen.append, "x", Telemetry(), 42) is True
        assert seen == [42]

    def test_raising_callback_contained_and_counted(self):
        telemetry = Telemetry()

        def explode(*args):
            raise ValueError("boom")

        assert fire_contained(explode, "hook", telemetry, 1) is False
        snapshot = telemetry.snapshot()
        assert snapshot["callbacks"]["errors"] == 1
        assert "hook" in snapshot["callbacks"]["last"]

    def test_stream_controller_shares_the_idiom(self):
        """StreamController._fire routes through fire_contained."""
        from repro.stream.controller import StreamController

        controller = StreamController.__new__(StreamController)
        controller.telemetry = Telemetry()
        controller.callback_errors_ = 0

        def explode(*args):
            raise RuntimeError("drift hook down")

        controller._fire(explode, "on_drift", "payload")
        assert controller.callback_errors_ == 1
        snapshot = controller.telemetry.snapshot()
        assert snapshot["callbacks"]["errors"] == 1
        controller._fire(None, "on_drift")
        assert controller.callback_errors_ == 1
