"""Regenerate the golden-regression fixtures under ``tests/golden/``.

Each fixture freezes the full AdaWave output (labels, threshold, cluster
count) of the dict-based seed implementation on one canonical dataset, so the
vectorized engine introduced later can be asserted to reproduce the original
results.  The fixtures were generated once from the seed implementation and
are committed; rerun this script only when an *intentional* behaviour change
makes the frozen outputs obsolete::

    PYTHONPATH=src python tests/golden/generate_golden.py

The datasets cover the regimes the paper exercises: the running example,
arbitrarily shaped clusters (two moons) in noise, the Roadmap case study,
higher-dimensional Gaussians, pure noise and a single cluster.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.core.adawave import AdaWave  # noqa: E402
from repro.datasets.roadmap import roadmap_simulant  # noqa: E402
from repro.datasets.shapes import gaussian_blob, uniform_noise  # noqa: E402
from repro.datasets.synthetic import running_example  # noqa: E402

GOLDEN_DIR = Path(__file__).resolve().parent


def _two_moons(n_per_moon: int, noise_std: float, rng: np.random.Generator) -> np.ndarray:
    """Two interleaving half circles (the classic two-moons layout)."""
    theta = rng.uniform(0.0, np.pi, size=n_per_moon)
    upper = np.column_stack([np.cos(theta), np.sin(theta)])
    theta = rng.uniform(0.0, np.pi, size=n_per_moon)
    lower = np.column_stack([1.0 - np.cos(theta), 0.5 - np.sin(theta)])
    moons = np.vstack([upper, lower])
    moons += rng.normal(scale=noise_std, size=moons.shape)
    return moons


def golden_cases() -> dict:
    """The six canonical datasets, each with the AdaWave parameters to freeze."""
    cases = {}

    data = running_example(noise_fraction=0.75, n_per_cluster=1000, seed=0)
    cases["running_example"] = (data.points, {"scale": 128})

    rng = np.random.default_rng(7)
    moons = _two_moons(900, noise_std=0.04, rng=rng)
    noise = rng.uniform([-1.4, -1.2], [2.4, 1.6], size=(1800, 2))
    cases["two_moons_noise"] = (np.vstack([moons, noise]), {"scale": 64})

    data = roadmap_simulant(n_samples=8000, seed=0)
    cases["roadmap_case"] = (data.points, {"scale": 128})

    rng = np.random.default_rng(11)
    centers = np.array(
        [[0.0, 0.0, 0.0, 0.0], [4.0, 4.0, 0.0, 0.0], [0.0, 4.0, 4.0, 4.0]]
    )
    blobs = [rng.normal(loc=c, scale=0.35, size=(400, 4)) for c in centers]
    noise = rng.uniform(-2.0, 6.0, size=(600, 4))
    cases["gaussians_4d"] = (np.vstack(blobs + [noise]), {"scale": 16})

    rng = np.random.default_rng(13)
    cases["uniform_noise_only"] = (
        uniform_noise(2000, [0.0, 0.0], [1.0, 1.0], random_state=rng),
        {"scale": 64},
    )

    rng = np.random.default_rng(17)
    cases["single_cluster"] = (
        gaussian_blob(1200, center=[0.5, 0.5], std=0.05, random_state=rng),
        {"scale": 64},
    )
    return cases


def main() -> None:
    for name, (points, params) in golden_cases().items():
        model = AdaWave(**params).fit(points)
        path = GOLDEN_DIR / f"{name}.npz"
        np.savez_compressed(
            path,
            points=points,
            labels=model.labels_,
            threshold=np.float64(model.threshold_),
            n_clusters=np.int64(model.n_clusters_),
            scale=np.int64(params["scale"]),
        )
        print(
            f"{name}: n={points.shape[0]} d={points.shape[1]} "
            f"clusters={model.n_clusters_} threshold={model.threshold_:.4f} -> {path.name}"
        )


if __name__ == "__main__":
    main()
