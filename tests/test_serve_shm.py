"""Zero-copy shared-memory data plane: slab rings and path equivalence.

The acceptance bars from the dead-worker/data-plane issue:

* :class:`SlotRing` round-trips arrays bit-for-bit across dtypes and
  shapes, and its parent-side free-list saturates to the pickle fallback
  instead of blocking;
* a :class:`ProcessPoolService` answers *identically* whether a batch rode
  the shared-memory ring or the pickle queue -- a Hypothesis property over
  batch shapes (empty and 1-point included) pins bit-for-bit equality;
* oversized and non-contiguous batches fall back to the pickle path
  automatically and still answer correctly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adawave import AdaWave
from repro.serve import ProcessPoolService, SlotRing, SlotRingClient, shm_available
from repro.serve.shm import fits_slot

BOUNDS = ([0.0, 0.0], [1.0, 1.0])

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


class TestSlotRing:
    def test_write_read_round_trip_across_dtypes(self):
        rng = np.random.default_rng(7)
        with_ring = SlotRing(slot_bytes=4096, n_slots=2)
        try:
            for dtype in (np.float64, np.float32, np.int64, np.int32, np.uint8):
                array = (rng.uniform(0, 100, size=(16, 3)) + 0.5).astype(dtype)
                slot = with_ring.acquire()
                assert slot is not None
                shape, dtype_str = with_ring.write(slot, array)
                out = with_ring.read(slot, shape, dtype_str)
                assert out.dtype == array.dtype
                np.testing.assert_array_equal(out, array)
                with_ring.release(slot)
        finally:
            with_ring.close()

    def test_free_list_saturates_then_recovers(self):
        ring = SlotRing(slot_bytes=64, n_slots=2)
        try:
            slots = [ring.acquire(), ring.acquire()]
            assert sorted(slots) == [0, 1]
            assert ring.acquire() is None  # saturated -> caller falls back
            assert ring.free_slots() == 0
            ring.release(slots[0])
            assert ring.acquire() == slots[0]
        finally:
            ring.close()

    def test_client_attach_views_the_same_bytes(self):
        ring = SlotRing(slot_bytes=1024, n_slots=1)
        try:
            client = SlotRingClient(*ring.spec())
            payload = np.arange(24, dtype=np.float64).reshape(4, 6)
            slot = ring.acquire()
            shape, dtype = ring.write(slot, payload)
            view = client.view(slot, shape, dtype)
            np.testing.assert_array_equal(view, payload)
            # The worker answers in the request's own slot.
            labels = np.arange(4, dtype=np.int64)
            out_shape, out_dtype = client.write(slot, labels)
            del view
            np.testing.assert_array_equal(
                ring.read(slot, out_shape, out_dtype), labels
            )
            client.close()
        finally:
            ring.close()

    def test_bounds_and_capacity_are_enforced(self):
        ring = SlotRing(slot_bytes=64, n_slots=1)
        try:
            with pytest.raises(ValueError, match="do not fit"):
                ring.write(0, np.zeros(100, dtype=np.float64))
            with pytest.raises(IndexError, match="out of range"):
                ring.read(5, (1,), "float64")
        finally:
            ring.close()
        with pytest.raises(ValueError, match="must be >= 1"):
            SlotRing(slot_bytes=0, n_slots=1)

    def test_close_is_idempotent_and_acquire_refuses(self):
        ring = SlotRing(slot_bytes=64, n_slots=1)
        ring.close()
        ring.close()
        assert ring.acquire() is None

    def test_fits_slot_gates_eligibility(self):
        assert fits_slot(np.zeros((10, 2)), 8 << 20)
        assert not fits_slot(np.zeros((0, 2)), 8 << 20)  # empty -> pickle
        assert not fits_slot(np.zeros((10, 2)), 64)  # oversized
        contiguous = np.zeros((10, 4))
        assert not fits_slot(contiguous[:, ::2], 8 << 20)  # strided
        assert not fits_slot(np.asfortranarray(np.zeros((3, 4))), 8 << 20)


@pytest.fixture(scope="module")
def shm_and_queue_services(tmp_path_factory):
    """One model served twice: over the shm ring and over the pickle queue."""
    rng = np.random.default_rng(13)
    blob = np.clip(rng.normal(0.35, 0.05, size=(1500, 2)), 0.0, 1.0)
    X = np.vstack([blob, rng.uniform(size=(2000, 2))])
    model = AdaWave(scale=64, bounds=BOUNDS).fit(X).export_model()
    services = []
    for use_shm in (True, False):
        directory = tmp_path_factory.mktemp(f"store-shm-{use_shm}")
        service = ProcessPoolService(
            directory, n_workers=2, use_shm=use_shm, worker_timeout=5.0
        )
        service.register("prod", model)
        services.append(service)
    yield services[0], services[1], model
    for service in services:
        service.close()


class TestPathEquivalence:
    @given(
        n=st.one_of(st.sampled_from([0, 1, 2]), st.integers(min_value=3, max_value=80)),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_shm_and_queue_paths_are_bit_identical(
        self, shm_and_queue_services, n, seed
    ):
        shm_service, queue_service, model = shm_and_queue_services
        X = np.random.default_rng(seed).uniform(size=(n, 2))
        via_shm = shm_service.predict("prod", X)
        via_queue = queue_service.predict("prod", X)
        expected = model.predict(X)
        assert via_shm.dtype == via_queue.dtype == expected.dtype
        np.testing.assert_array_equal(via_shm, via_queue)
        np.testing.assert_array_equal(via_shm, expected)

    def test_paths_actually_diverged(self, shm_and_queue_services):
        """The property above is vacuous unless the shm path really ran."""
        shm_service, queue_service, _ = shm_and_queue_services
        assert shm_service.pool.use_shm
        assert shm_service.pool.shm_sends > 0
        assert not queue_service.pool.use_shm
        assert queue_service.pool.shm_sends == 0
        assert queue_service.pool.pickle_sends > 0

    def test_empty_batch_takes_pickle_path(self, shm_and_queue_services):
        shm_service, _, model = shm_and_queue_services
        before = shm_service.pool.shm_sends
        labels = shm_service.predict("prod", np.empty((0, 2)))
        assert labels.shape == (0,)
        assert shm_service.pool.shm_sends == before

    def test_non_contiguous_batch_answers_correctly(self, shm_and_queue_services):
        shm_service, _, model = shm_and_queue_services
        wide = np.random.default_rng(3).uniform(size=(50, 4))
        X = wide[:, ::2]
        assert not X.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(
            shm_service.predict("prod", X), model.predict(X)
        )


class TestForcedFallback:
    def test_tiny_slots_force_pickle_fallback(self, tmp_path):
        rng = np.random.default_rng(5)
        X = rng.uniform(size=(1200, 2))
        model = AdaWave(scale=32, bounds=BOUNDS).fit(X).export_model()
        with ProcessPoolService(
            tmp_path, n_workers=1, use_shm=True, shm_slot_bytes=64, worker_timeout=5.0
        ) as service:
            service.register("prod", model)
            queries = rng.uniform(size=(300, 2))  # 4800 bytes >> 64-byte slots
            np.testing.assert_array_equal(
                service.predict("prod", queries), model.predict(queries)
            )
            assert service.pool.shm_sends == 0
            assert service.pool.pickle_sends > 0

    def test_small_batches_use_the_ring(self, tmp_path):
        rng = np.random.default_rng(5)
        X = rng.uniform(size=(1200, 2))
        model = AdaWave(scale=32, bounds=BOUNDS).fit(X).export_model()
        with ProcessPoolService(
            tmp_path, n_workers=1, use_shm=True, worker_timeout=5.0
        ) as service:
            service.register("prod", model)
            queries = rng.uniform(size=(100, 2))
            np.testing.assert_array_equal(
                service.predict("prod", queries), model.predict(queries)
            )
            assert service.pool.shm_sends > 0
            assert service.pool.pickle_sends == 0
