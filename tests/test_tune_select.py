"""End-to-end behaviour of the grid-pyramid auto-tuning subsystem.

The acceptance bar: ``AdaWave(scale="tune")`` must -- without ever seeing
ground-truth labels -- pick a resolution whose noise-aware AMI (the repo's standard quality metric) is within 5 %
of the best fixed power-of-two scale on the paper's seeded synthetic noise
suites.  Plus: exactness of the tuned fit vs the fixed fit at the chosen
scale, streaming (finalize-time) tuning invariance, provenance in exported
artifacts, and the scoring-layer units.
"""

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.datasets.synthetic import noise_sweep_dataset, running_example
from repro.metrics import ami_on_true_clusters
from repro.tune import select_best, tune_pyramid, weighted_partition_nmi
from repro.tune.scoring import (
    CandidateScore,
    cluster_prior,
    noise_sanity,
)

FIXED_POW2_SCALES = (8, 16, 32, 64, 128, 256)


def _best_fixed_pow2(dataset):
    """Best noise-aware AMI over the fixed power-of-two scales."""
    return max(
        ami_on_true_clusters(
            dataset.labels, AdaWave(scale=scale).fit(dataset.points).labels_
        )
        for scale in FIXED_POW2_SCALES
    )


class TestTunedScaleQuality:
    """Acceptance: tuned AMI within 5 % of the best fixed pow2 scale."""

    @pytest.mark.parametrize("noise_fraction", [0.3, 0.75])
    def test_within_5_percent_of_best_fixed_scale(self, noise_fraction):
        dataset = noise_sweep_dataset(
            noise_fraction=noise_fraction, n_per_cluster=1500, seed=0
        )
        tuned = AdaWave(scale="tune").fit(dataset.points)
        tuned_ami = ami_on_true_clusters(dataset.labels, tuned.labels_)
        best = _best_fixed_pow2(dataset)
        assert tuned_ami >= 0.95 * best, (
            f"tuned scale {tuned.tune_result_.scale} scores AMI {tuned_ami:.3f}; "
            f"the best fixed pow2 scale scores {best:.3f}."
        )

    def test_running_example_within_5_percent(self):
        dataset = running_example(noise_fraction=0.8, n_per_cluster=1500, seed=0)
        tuned = AdaWave(scale="tune").fit(dataset.points)
        tuned_ami = ami_on_true_clusters(dataset.labels, tuned.labels_)
        assert tuned_ami >= 0.95 * _best_fixed_pow2(dataset)

    def test_tuned_fit_equals_fixed_fit_at_chosen_scale(self):
        """The pyramid is exact, so the tuned result must be bit-identical to
        a fixed fit at whatever scale the sweep selected."""
        dataset = running_example(noise_fraction=0.75, n_per_cluster=800, seed=0)
        tuned = AdaWave(scale="tune").fit(dataset.points)
        chosen = tuned.tune_result_.scale
        fixed = AdaWave(scale=chosen, level=tuned.tune_result_.level).fit(dataset.points)
        np.testing.assert_array_equal(tuned.labels_, fixed.labels_)
        assert tuned.n_clusters_ == fixed.n_clusters_
        assert tuned.threshold_ == fixed.threshold_


class TestTuneResultSurface:
    @pytest.fixture(scope="class")
    def tuned(self):
        dataset = running_example(noise_fraction=0.75, n_per_cluster=800, seed=0)
        return AdaWave(scale="tune").fit(dataset.points), dataset

    def test_tune_result_populated(self, tuned):
        model, _ = tuned
        result = model.tune_result_
        assert result is not None
        assert result.scale in FIXED_POW2_SCALES
        assert result.level == 1
        assert result.threshold == model.threshold_
        assert len(result.scores) >= 4

    def test_score_table_rows(self, tuned):
        model, _ = tuned
        rows = model.tune_result_.table()
        assert sum(row["selected"] for row in rows) == 1
        for row in rows:
            assert 0.0 <= row["score"] <= 1.0
            assert 0.0 <= row["noise_fraction"] <= 1.0
        selected = next(row for row in rows if row["selected"])
        assert selected["scale"] == model.tune_result_.scale
        assert selected["score"] == max(row["score"] for row in rows)

    def test_provenance_in_exported_model(self, tuned, tmp_path):
        import json

        from repro.serve.model import ClusterModel

        model, dataset = tuned
        frozen = model.export_model()
        provenance = frozen.metadata["tuning"]
        assert provenance["method"] == "grid-pyramid sweep"
        assert provenance["chosen_scale"] == list(model.result_.quantization.grid.shape)
        json.dumps(provenance)  # must be JSON-serializable for the header
        path = tmp_path / "tuned.npz"
        frozen.save(path)
        loaded = ClusterModel.load(path)
        assert loaded.metadata["tuning"] == provenance
        np.testing.assert_array_equal(loaded.predict(dataset.points), model.labels_)

    def test_untuned_fit_clears_tune_result(self, tuned):
        model, dataset = tuned
        refit = AdaWave(scale=64).fit(dataset.points)
        assert refit.tune_result_ is None
        assert "tuning" not in refit.export_model().metadata

    def test_parallel_sweep_matches_serial(self, tuned):
        model, dataset = tuned
        # Rebuild the base quantization and compare serial vs threaded sweeps.
        from repro.grid.quantizer import GridQuantizer
        from repro.tune.pyramid import default_base_scale

        base = GridQuantizer(scale=default_base_scale(2)).fit_transform(
            dataset.points
        ).grid
        serial = tune_pyramid(base, levels=(1,))
        threaded = tune_pyramid(base, levels=(1,), n_workers=4)
        assert serial.scale == threaded.scale
        assert serial.level == threaded.level
        assert [s.total for s in serial.scores] == pytest.approx(
            [s.total for s in threaded.scores]
        )

    def test_tune_levels_sweeps_decomposition_levels(self):
        dataset = running_example(noise_fraction=0.75, n_per_cluster=800, seed=0)
        model = AdaWave(scale="tune", tune_levels=(1, 2)).fit(dataset.points)
        levels_seen = {score.candidate.level for score in model.tune_result_.scores}
        assert levels_seen == {1, 2}
        assert model.tune_result_.level in (1, 2)
        assert model.result_.level == model.tune_result_.level


class TestStreamingTuning:
    """scale='tune' streams ingest fine and pick the resolution at finalize."""

    @pytest.fixture(scope="class")
    def data(self):
        dataset = running_example(noise_fraction=0.75, n_per_cluster=800, seed=1)
        bounds = (dataset.points.min(axis=0), dataset.points.max(axis=0))
        return dataset, bounds

    def test_stream_matches_one_shot_tune(self, data):
        dataset, bounds = data
        one_shot = AdaWave(scale="tune", bounds=bounds).fit(dataset.points)
        stream = AdaWave(scale="tune", bounds=bounds)
        for batch in np.array_split(dataset.points, 7):
            stream.partial_fit(batch)
        stream.finalize()
        np.testing.assert_array_equal(stream.labels_, one_shot.labels_)
        assert stream.tune_result_.scale == one_shot.tune_result_.scale
        assert stream.threshold_ == one_shot.threshold_

    def test_lookup_only_stream_tunes(self, data):
        dataset, bounds = data
        one_shot = AdaWave(scale="tune", bounds=bounds).fit(dataset.points)
        stream = AdaWave(scale="tune", bounds=bounds, lookup_only=True)
        for batch in np.array_split(dataset.points, 5):
            stream.partial_fit(batch)
        stream.finalize()
        np.testing.assert_array_equal(
            stream.predict(dataset.points), one_shot.labels_
        )
        assert stream.tune_result_.scale == one_shot.tune_result_.scale

    def test_merge_stream_tunes_identically(self, data):
        dataset, bounds = data
        one_shot = AdaWave(scale="tune", bounds=bounds).fit(dataset.points)
        shards = []
        for batch in np.array_split(dataset.points, 3):
            shard = AdaWave(scale="tune", bounds=bounds, lookup_only=True)
            shard.partial_fit(batch)
            shards.append(shard)
        merged = AdaWave(scale="tune", bounds=bounds, lookup_only=True)
        for shard in shards:
            merged.merge_stream(shard)
        merged.finalize()
        np.testing.assert_array_equal(
            merged.predict(dataset.points), one_shot.labels_
        )

    def test_failed_finalize_tuning_keeps_stream_guarded(self, data):
        """Regression: when the finalize-time sweep raises (no resolution
        yields >= 2 clusters), the stream must stay dirty so fit() keeps
        refusing to silently discard the ingested batches."""
        dataset, bounds = data
        model = AdaWave(scale="tune", bounds=bounds)
        # 50 identical points: one occupied cell at every resolution, so no
        # candidate can produce two clusters and selection must fail.
        model.partial_fit(np.full((50, 2), 0.5))
        with pytest.raises(ValueError, match="tuning failed"):
            model.finalize()
        with pytest.raises(ValueError, match="mid-stream"):
            model.fit(dataset.points)
        model.reset()
        model.fit(dataset.points)  # reset is still the escape hatch

    def test_compacted_tune_result_keeps_provenance_surface(self, data):
        """After a fit, the retained TuneResult has released the sweep
        intermediates but still serves the score table and chosen config."""
        dataset, bounds = data
        model = AdaWave(scale="tune", bounds=bounds).fit(dataset.points)
        result = model.tune_result_
        for score in result.scores:
            assert score.candidate.grid is None
            assert score.candidate.pipeline is None
            assert score.candidate.base_cell_labels is None
        assert result.scale == model.result_.quantization.grid.shape[0]
        assert result.threshold == model.threshold_
        rows = result.table()
        assert len(rows) == len(result.scores)
        assert sum(row["selected"] for row in rows) == 1
        assert all(row["n_clusters"] >= 0 for row in rows)

    def test_partial_fit_with_auto_scale_raises_actionable_error(self, data):
        """Satellite regression test: the mid-stream 'auto' error must name
        both workable options instead of a generic complaint."""
        dataset, bounds = data
        model = AdaWave(scale="auto", bounds=bounds)
        with pytest.raises(ValueError) as excinfo:
            model.partial_fit(dataset.points[:100])
        message = str(excinfo.value)
        assert "scale='tune'" in message
        assert "power-of-two" in message
        assert "finalize()" in message

    def test_merge_stream_with_auto_scale_raises_actionable_error(self, data):
        dataset, bounds = data
        shard = AdaWave(scale=256, bounds=bounds, lookup_only=True)
        shard.partial_fit(dataset.points[:100])
        merged = AdaWave(scale="auto", bounds=bounds, lookup_only=True)
        with pytest.raises(ValueError, match="scale='tune'"):
            merged.merge_stream(shard)


class TestScoringUnits:
    def test_noise_sanity_band(self):
        assert noise_sanity(0.5) == 1.0
        assert noise_sanity(0.02) == 1.0
        assert noise_sanity(0.98) == 1.0
        assert noise_sanity(0.0) == 0.0
        assert noise_sanity(1.0) == 0.0
        assert 0.0 < noise_sanity(0.99) < 1.0

    def test_cluster_prior(self):
        assert cluster_prior(0) == 0.0
        assert cluster_prior(1) == 0.0
        assert cluster_prior(2) == 1.0
        assert cluster_prior(32) == 1.0
        assert cluster_prior(64) == 0.5

    def test_weighted_partition_nmi(self):
        labels = np.array([0, 0, 1, 1, -1])
        weights = np.ones(5)
        assert weighted_partition_nmi(labels, labels, weights) == pytest.approx(1.0)
        permuted = np.array([1, 1, 0, 0, -1])
        assert weighted_partition_nmi(labels, permuted, weights) == pytest.approx(1.0)
        # Weights matter: zero-weight disagreements do not count.
        other = np.array([0, 0, 1, 1, 0])
        masked = np.array([1.0, 1.0, 1.0, 1.0, 0.0])
        assert weighted_partition_nmi(labels, other, masked) == pytest.approx(1.0)
        with pytest.raises(ValueError, match="equal"):
            weighted_partition_nmi(labels, labels, weights[:3])

    def test_select_best_raises_when_all_degenerate(self):
        from repro.grid.quantizer import GridQuantizer

        rng = np.random.default_rng(0)
        # Pure uniform noise: no resolution yields >= 2 clusters ... but some
        # might; build the failure case directly from the scoring layer.
        base = GridQuantizer(scale=16).fit_transform(rng.uniform(size=(40, 2))).grid
        try:
            result = tune_pyramid(base, levels=(1,), min_scale=8)
        except ValueError as error:
            assert "tuning failed" in str(error)
        else:
            assert result.best.candidate.n_clusters >= 2

    def test_select_best_rejects_empty(self):
        with pytest.raises(ValueError, match="no candidates"):
            select_best([])

    def test_tune_rejects_invalid_levels(self):
        from repro.grid.quantizer import GridQuantizer

        rng = np.random.default_rng(0)
        base = GridQuantizer(scale=32).fit_transform(rng.uniform(size=(100, 2))).grid
        with pytest.raises(ValueError, match="levels"):
            tune_pyramid(base, levels=())

    def test_explicit_factors_not_starting_at_one_keep_diagnostics(self):
        """Regression: with factors=(2, 4) the comparison cells come from the
        factor-2 level, so every candidate's noise_fraction (and scores) must
        match the same candidate evaluated in a factors-starting-at-1 sweep."""
        from repro.grid.quantizer import GridQuantizer

        dataset = running_example(noise_fraction=0.75, n_per_cluster=800, seed=0)
        base = GridQuantizer(scale=256).fit_transform(dataset.points).grid
        full = tune_pyramid(base, factors=(1, 2, 4))
        shifted = tune_pyramid(base, factors=(2, 4))
        by_factor_full = {
            s.candidate.factor: s.candidate for s in full.scores
        }
        for score in shifted.scores:
            twin = by_factor_full[score.candidate.factor]
            assert score.candidate.noise_fraction == pytest.approx(
                twin.noise_fraction
            )
            assert score.candidate.n_clusters == twin.n_clusters


class TestTuneParameterValidation:
    def test_invalid_scale_string_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="tune"):
            AdaWave(scale="huge").fit(rng.uniform(size=(50, 2)))

    def test_invalid_tune_levels(self):
        with pytest.raises(ValueError, match="tune_levels"):
            AdaWave(scale="tune", tune_levels=(0,))
        with pytest.raises(ValueError, match="at least one"):
            AdaWave(scale="tune", tune_levels=())

    def test_multiresolution_rejects_tune(self):
        from repro.core.multiresolution import MultiResolutionAdaWave

        with pytest.raises(ValueError, match="tune_levels"):
            MultiResolutionAdaWave(scale="tune")

    def test_sweep_rejects_unknown_threshold_method(self):
        """Regression: the pipeline entry points the tuning subsystem exposes
        must reject typo'd threshold methods instead of silently falling back
        to the 'auto' rule."""
        from repro.grid.quantizer import GridQuantizer

        rng = np.random.default_rng(0)
        base = GridQuantizer(scale=32).fit_transform(rng.uniform(size=(200, 2))).grid
        with pytest.raises(ValueError, match="threshold_method"):
            tune_pyramid(base, threshold_method="sgements")

    def test_streaming_typo_scale_gets_generic_message(self):
        """Regression: a typo'd scale string mid-stream must not be blamed on
        scale='auto'."""
        model = AdaWave(scale="tunee", bounds=([0.0, 0.0], [1.0, 1.0]))
        with pytest.raises(ValueError, match="got 'tunee'"):
            model.partial_fit(np.random.default_rng(0).uniform(size=(10, 2)))
