"""Tests for repro.core.threshold and repro.core.transform."""

import numpy as np
import pytest

from repro.core.threshold import (
    ThresholdDiagnostics,
    adaptive_threshold,
    elbow_threshold_angle,
    elbow_threshold_distance,
    elbow_threshold_segments,
)
from repro.core.transform import grid_energy, wavelet_smooth_grid
from repro.grid.quantizer import GridQuantizer
from repro.grid.sparse_grid import SparseGrid


def three_regime_densities(rng=None, n_signal=30, n_middle=80, n_noise=600):
    """Synthetic density curve with the Fig. 6 structure: signal / middle / noise."""
    rng = rng or np.random.default_rng(0)
    signal = rng.uniform(60.0, 100.0, n_signal)
    middle = rng.uniform(12.0, 40.0, n_middle)
    noise = rng.uniform(0.0, 6.0, n_noise)
    return np.concatenate([signal, middle, noise])


class TestSegmentsThreshold:
    def test_threshold_separates_noise_from_middle(self):
        densities = three_regime_densities()
        result = elbow_threshold_segments(densities)
        assert result.method == "segments"
        # The chosen threshold must fall between the bulk of the noise and the
        # bulk of the middle regime.
        assert 3.0 <= result.threshold <= 20.0

    def test_result_contains_sorted_curve(self):
        result = elbow_threshold_segments(three_regime_densities())
        assert np.all(np.diff(result.sorted_densities) <= 0)
        assert result.breakpoints is not None and len(result.breakpoints) == 2

    def test_degenerate_constant_input(self):
        result = elbow_threshold_segments(np.full(20, 3.0))
        assert result.method == "degenerate"

    def test_too_few_values(self):
        result = elbow_threshold_segments([5.0, 1.0, 0.5])
        assert result.method == "degenerate"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            elbow_threshold_segments([])

    def test_subsampling_gives_similar_threshold(self):
        densities = three_regime_densities(n_noise=5000)
        coarse = elbow_threshold_segments(densities, max_curve_points=200)
        fine = elbow_threshold_segments(densities, max_curve_points=1200)
        assert abs(coarse.threshold - fine.threshold) < 15.0


class TestDistanceThreshold:
    def test_finds_knee_of_curve(self):
        result = elbow_threshold_distance(three_regime_densities())
        assert 0.0 < result.threshold < 60.0
        assert result.method == "distance"

    def test_degenerate_input(self):
        assert elbow_threshold_distance([1.0, 1.0]).method == "degenerate"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            elbow_threshold_distance([])


class TestAngleThreshold:
    def test_returns_diagnostics_or_none(self):
        result = elbow_threshold_angle(three_regime_densities())
        assert result is None or isinstance(result, ThresholdDiagnostics)

    def test_invalid_divisor(self):
        with pytest.raises(ValueError):
            elbow_threshold_angle([3.0, 2.0, 1.0, 0.5], angle_divisor=1.0)

    def test_short_input_returns_none(self):
        assert elbow_threshold_angle([1.0, 2.0]) is None


class TestAdaptiveThreshold:
    def test_prefers_segments(self):
        result = adaptive_threshold(three_regime_densities())
        assert result.method == "segments"

    def test_falls_back_on_tiny_input(self):
        result = adaptive_threshold([5.0, 1.0])
        assert result.method in ("distance", "degenerate")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            adaptive_threshold([])

    def test_filtering_keeps_most_cluster_cells(self):
        """End-to-end property: the adaptive threshold removes the vast
        majority of noise cells while keeping most signal cells."""
        rng = np.random.default_rng(1)
        signal = rng.uniform(50.0, 90.0, 50)
        noise = rng.uniform(0.0, 5.0, 1000)
        threshold = adaptive_threshold(np.concatenate([signal, noise])).threshold
        assert np.mean(signal > threshold) > 0.9
        assert np.mean(noise > threshold) < 0.1


class TestWaveletSmoothGrid:
    def _make_grid(self):
        rng = np.random.default_rng(2)
        points = np.vstack(
            [
                rng.normal(loc=[0.3, 0.3], scale=0.02, size=(400, 2)),
                rng.uniform(size=(200, 2)),
            ]
        )
        return GridQuantizer(scale=32).fit_transform(points).grid

    def test_resolution_halves_per_level(self):
        grid = self._make_grid()
        transformed, shape = wavelet_smooth_grid(grid, "bior2.2", level=1)
        assert shape == (16, 16)
        transformed2, shape2 = wavelet_smooth_grid(grid, "bior2.2", level=2)
        assert shape2 == (8, 8)

    def test_mass_is_approximately_preserved_up_to_normalisation(self):
        grid = self._make_grid()
        transformed, _ = wavelet_smooth_grid(grid, "haar", level=1)
        # Each 1-D Haar pass scales the total mass by 1/sqrt(2); two passes
        # (one per dimension) give a factor of 1/2.
        assert transformed.total_mass() * 2.0 == pytest.approx(grid.total_mass(), rel=1e-6)

    def test_dense_cluster_cell_dominates_after_transform(self):
        grid = self._make_grid()
        transformed, _ = wavelet_smooth_grid(grid, "bior2.2", level=1)
        densities = np.sort(transformed.densities())[::-1]
        # The dense Gaussian blob must still stand far above the noise cells.
        assert densities[0] > 5 * np.median(densities)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            wavelet_smooth_grid(SparseGrid((8, 8), {(0, 0): 1.0}), level=0)

    def test_tiny_grid_stops_early(self):
        grid = SparseGrid((2, 2), {(0, 0): 1.0, (1, 1): 2.0})
        transformed, shape = wavelet_smooth_grid(grid, "haar", level=5)
        assert min(shape) >= 1

    def test_grid_energy_helper(self):
        grid = SparseGrid((4,), {(0,): 3.0, (1,): 4.0})
        assert grid_energy(grid) == pytest.approx(25.0)
