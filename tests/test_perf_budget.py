"""Fast perf-budget smoke test for the vectorized engine.

Runs in tier-1 (not marked slow) so a hot-path regression that drags the
pipeline back toward per-cell Python speed is caught on every test run,
without the multi-minute full benchmark suite.  The budget is generous --
the vectorized engine clusters this workload in well under half a second on
commodity hardware -- so the assertion only trips on order-of-magnitude
regressions, not machine noise.
"""

import time

import numpy as np

from repro.core.adawave import AdaWave
from repro.datasets.synthetic import scaled_runtime_dataset


def test_vectorized_engine_stays_within_budget():
    dataset = scaled_runtime_dataset(50_000, noise_fraction=0.75, seed=0)
    model = AdaWave(scale=128)
    start = time.perf_counter()
    model.fit(dataset.points)
    elapsed = time.perf_counter() - start
    assert model.n_clusters_ >= 1
    assert model.labels_.shape == (dataset.n_samples,)
    assert elapsed < 2.0, (
        f"vectorized AdaWave took {elapsed:.2f}s on 50k points at scale=128; "
        "budget is 2s -- a hot path has regressed."
    )


def test_streaming_ingest_stays_within_budget():
    dataset = scaled_runtime_dataset(50_000, noise_fraction=0.75, seed=0)
    points = dataset.points
    bounds = (points.min(axis=0), points.max(axis=0))
    model = AdaWave(scale=128, bounds=bounds)
    start = time.perf_counter()
    for batch in np.array_split(points, 20):
        model.partial_fit(batch)
    model.finalize()
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0, (
        f"streaming AdaWave took {elapsed:.2f}s over 20 batches of a 50k point "
        "dataset; budget is 2s."
    )
