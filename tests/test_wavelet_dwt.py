"""Tests for repro.wavelets.dwt: 1-D transforms and perfect reconstruction."""

import numpy as np
import pytest

from repro.wavelets.dwt import dwt, dwt_max_level, idwt, smooth_signal, wavedec, waverec

ALL_WAVELETS = ["haar", "db2", "db4", "db8", "sym4", "bior1.1", "bior2.2", "bior1.3"]
ORTHOGONAL = ["haar", "db2", "db4", "sym4"]


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestPerfectReconstruction:
    @pytest.mark.parametrize("wavelet", ALL_WAVELETS)
    @pytest.mark.parametrize("length", [8, 16, 37, 64])
    def test_periodization_roundtrip(self, wavelet, length, rng):
        signal = rng.standard_normal(length)
        approx, detail = dwt(signal, wavelet)
        reconstructed = idwt(approx, detail, wavelet, output_length=length)
        np.testing.assert_allclose(reconstructed, signal, atol=1e-10)

    @pytest.mark.parametrize("wavelet", ORTHOGONAL)
    @pytest.mark.parametrize("mode", ["zero", "symmetric"])
    def test_padded_roundtrip(self, wavelet, mode, rng):
        signal = rng.standard_normal(45)
        approx, detail = dwt(signal, wavelet, mode=mode)
        reconstructed = idwt(approx, detail, wavelet, mode=mode, output_length=45)
        np.testing.assert_allclose(reconstructed, signal, atol=1e-10)

    @pytest.mark.parametrize("wavelet", ALL_WAVELETS)
    def test_multilevel_roundtrip(self, wavelet, rng):
        signal = rng.standard_normal(64)
        coefficients = wavedec(signal, wavelet, level=3)
        reconstructed = waverec(coefficients, wavelet, output_length=64)
        np.testing.assert_allclose(reconstructed, signal, atol=1e-9)


class TestCoefficientProperties:
    def test_periodization_halves_length(self, rng):
        approx, detail = dwt(rng.standard_normal(32), "db2")
        assert len(approx) == 16
        assert len(detail) == 16

    def test_odd_length_rounds_up(self, rng):
        approx, _ = dwt(rng.standard_normal(33), "haar")
        assert len(approx) == 17

    def test_orthogonal_energy_preservation(self, rng):
        signal = rng.standard_normal(64)
        approx, detail = dwt(signal, "db4")
        energy_in = np.sum(signal**2)
        energy_out = np.sum(approx**2) + np.sum(detail**2)
        assert energy_out == pytest.approx(energy_in, rel=1e-10)

    def test_constant_signal_has_zero_detail(self):
        approx, detail = dwt(np.full(32, 5.0), "db3")
        np.testing.assert_allclose(detail, 0.0, atol=1e-10)
        # The approximation carries the (scaled) constant mass.
        assert approx.sum() == pytest.approx(32 * 5.0 / np.sqrt(2.0))

    def test_linear_signal_annihilated_by_db2(self):
        """db2 has two vanishing moments: linear ramps give zero detail
        (periodization wraps, so test away from the seam via a zero mode)."""
        signal = np.linspace(0.0, 1.0, 64)
        _, detail = dwt(signal, "db2", mode="zero")
        interior = detail[2:-2]
        np.testing.assert_allclose(interior, 0.0, atol=1e-10)

    def test_haar_approximation_is_pairwise_mean(self):
        signal = np.array([1.0, 3.0, 5.0, 7.0])
        approx, detail = dwt(signal, "haar")
        np.testing.assert_allclose(approx, [4.0 / np.sqrt(2), 12.0 / np.sqrt(2)])
        np.testing.assert_allclose(np.abs(detail), [2.0 / np.sqrt(2), 2.0 / np.sqrt(2)])


class TestErrorHandling:
    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            dwt(np.ones(8), "haar", mode="reflect")

    def test_empty_signal(self):
        with pytest.raises(ValueError, match="empty"):
            dwt(np.array([]), "haar")

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            dwt(np.ones((4, 4)), "haar")

    def test_idwt_requires_matching_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            idwt(np.ones(4), np.ones(5), "haar")

    def test_idwt_requires_some_input(self):
        with pytest.raises(ValueError, match="at least one"):
            idwt(None, None, "haar")

    def test_idwt_accepts_missing_detail(self):
        result = idwt(np.ones(4), None, "haar")
        assert len(result) == 8

    def test_wavedec_rejects_zero_level(self):
        with pytest.raises(ValueError, match="level"):
            wavedec(np.ones(8), "haar", level=0)

    def test_waverec_needs_two_arrays(self):
        with pytest.raises(ValueError, match="at least"):
            waverec([np.ones(4)], "haar")


class TestMaxLevel:
    def test_known_values(self):
        assert dwt_max_level(64, 2) == 6
        assert dwt_max_level(64, 4) == 4
        assert dwt_max_level(100, 8) == 3

    def test_short_signal(self):
        assert dwt_max_level(3, 8) == 0


class TestSmoothSignal:
    def test_preserves_length(self, rng):
        signal = rng.standard_normal(50)
        assert len(smooth_signal(signal, "bior2.2", level=2)) == 50

    def test_reduces_high_frequency_energy(self, rng):
        time = np.arange(128)
        slow = np.sin(2 * np.pi * time / 64)
        fast = 0.5 * np.sin(2 * np.pi * time / 4)
        smoothed = smooth_signal(slow + fast, "db4", level=2)
        residual_fast = np.abs(np.fft.rfft(smoothed))[20:].sum()
        original_fast = np.abs(np.fft.rfft(slow + fast))[20:].sum()
        assert residual_fast < 0.3 * original_fast

    def test_preserves_total_mass_approximately(self):
        signal = np.zeros(64)
        signal[20:30] = 10.0
        smoothed = smooth_signal(signal, "bior2.2", level=1)
        assert smoothed.sum() == pytest.approx(signal.sum(), rel=1e-6)

    def test_invalid_level(self):
        with pytest.raises(ValueError, match="level"):
            smooth_signal(np.ones(16), "haar", level=0)
