"""Structured JSON logging: opt-in, trace-correlated, contained, reversible.

Importing :mod:`repro` must never touch global logging state; enabling the
JSON stream attaches exactly one handler to the ``repro`` logger tree,
every record emits as one JSON object per line with ``extra=`` fields
(notably ``trace_id``) forwarded, formatter failures degrade to a minimal
envelope instead of raising, and disabling restores the prior state.
"""

import io
import json
import logging

import numpy as np
import pytest

from repro.obs import JsonFormatter, disable_json_logging, enable_json_logging
from repro.obs.logging import ROOT_LOGGER


@pytest.fixture(autouse=True)
def clean_logging_state():
    yield
    disable_json_logging()


def _capture():
    stream = io.StringIO()
    handler = enable_json_logging(level=logging.INFO, stream=stream)
    return stream, handler


class TestJsonLogging:
    def test_disabled_by_default(self):
        logger = logging.getLogger(ROOT_LOGGER)
        assert not any(
            isinstance(h.formatter, JsonFormatter) for h in logger.handlers
        )

    def test_records_emit_one_json_object_per_line(self):
        stream, _ = _capture()
        logging.getLogger("repro.serve.edge").info(
            "POST /predict/live -> 200", extra={"trace_id": "abc123", "status": 200}
        )
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["message"] == "POST /predict/live -> 200"
        assert record["trace_id"] == "abc123"
        assert record["status"] == 200
        assert record["logger"] == "repro.serve.edge"
        assert record["level"] == "INFO"
        assert record["ts"].endswith("+00:00")

    def test_enable_is_idempotent(self):
        _capture()
        _capture()
        logger = logging.getLogger(ROOT_LOGGER)
        json_handlers = [
            h for h in logger.handlers if isinstance(h.formatter, JsonFormatter)
        ]
        assert len(json_handlers) == 1
        assert logger.propagate is False

    def test_disable_restores_state(self):
        _capture()
        disable_json_logging()
        logger = logging.getLogger(ROOT_LOGGER)
        assert not any(
            isinstance(h.formatter, JsonFormatter) for h in logger.handlers
        )
        assert logger.propagate is True
        disable_json_logging()  # second call is a no-op

    def test_unserialisable_extras_are_contained(self):
        stream, _ = _capture()
        logging.getLogger("repro.test").info(
            "weird payload", extra={"blob": np.zeros(3)}
        )
        record = json.loads(stream.getvalue().strip())
        assert record["message"] == "weird payload"  # stringified, not raised

    def test_exceptions_carry_traceback_text(self):
        stream, _ = _capture()
        try:
            raise ValueError("boom")
        except ValueError:
            logging.getLogger("repro.test").exception("predict failed")
        record = json.loads(stream.getvalue().strip())
        assert record["level"] == "ERROR"
        assert "ValueError: boom" in record["exc"]

    def test_edge_logs_requests_with_trace_ids(self):
        from repro.core.adawave import AdaWave
        from repro.serve import ClusteringService, EdgeThread
        import urllib.request

        rng = np.random.default_rng(2)
        blob = np.clip(rng.normal(0.3, 0.05, size=(1200, 2)), 0.0, 1.0)
        X = np.vstack([blob, rng.uniform(size=(1200, 2))])
        frozen = AdaWave(
            scale=64, bounds=([0.0, 0.0], [1.0, 1.0])
        ).fit(X).export_model()
        stream, _ = _capture()
        service = ClusteringService()
        service.register("live", frozen)
        with EdgeThread(service) as edge:
            body = json.dumps({"points": [[0.3, 0.3]]}).encode()
            request = urllib.request.Request(
                f"{edge.url}/predict/live",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                header_id = response.headers["X-Trace-Id"]
        service.close()
        records = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if line.strip().startswith("{")
        ]
        predict_logs = [
            r for r in records if r.get("route") == "predict"
        ]
        assert predict_logs, "the edge must log served predicts"
        assert predict_logs[0]["trace_id"] == header_id
        assert predict_logs[0]["status"] == 200
