"""Hypothesis equivalence tests: vectorized engine vs reference implementations.

Every vectorized stage (COO grid accumulation / merge, sort-join connected
components, array lookup) is compared against the straightforward dict-based
implementation on randomized inputs.  Agreement here plus the golden fixtures
is what lets the vectorized engine replace the seed implementation safely.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adawave import AdaWave
from repro.engine import reference
from repro.grid.connectivity import connected_components, label_components_array
from repro.grid.lookup import LookupTable
from repro.grid.quantizer import GridQuantizer
from repro.grid.sparse_grid import SparseGrid
from repro.spatial.union_find import ArrayUnionFind, UnionFind

cells_2d = st.lists(
    st.tuples(st.integers(min_value=0, max_value=11), st.integers(min_value=0, max_value=11)),
    min_size=0,
    max_size=60,
)

coo_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    ),
    min_size=0,
    max_size=60,
)


def _accumulate_dict(entries):
    table = {}
    for row, col, value in entries:
        table[(row, col)] = table.get((row, col), 0.0) + value
    return table


class TestSparseGridEquivalence:
    @given(entries=coo_entries)
    @settings(max_examples=80, deadline=None)
    def test_bulk_accumulation_matches_scalar_adds(self, entries):
        bulk = SparseGrid((8, 8))
        if entries:
            coords = np.array([(r, c) for r, c, _ in entries], dtype=np.int64)
            values = np.array([v for _, _, v in entries])
            bulk.add_many(coords, values)
        scalar = SparseGrid((8, 8))
        for row, col, value in entries:
            scalar.add((row, col), value)
        expected = _accumulate_dict(entries)
        assert dict(bulk.items()) == pytest.approx(expected)
        assert dict(scalar.items()) == pytest.approx(expected)

    @given(first=coo_entries, second=coo_entries)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_concatenated_accumulation(self, first, second):
        grid_a = SparseGrid((8, 8), _accumulate_dict(first))
        grid_b = SparseGrid((8, 8), _accumulate_dict(second))
        grid_a.merge(grid_b)
        assert dict(grid_a.items()) == pytest.approx(_accumulate_dict(first + second))

    @given(entries=coo_entries, axis=st.integers(min_value=0, max_value=1))
    @settings(max_examples=60, deadline=None)
    def test_line_matrix_matches_lines_along(self, entries, axis):
        grid = SparseGrid((8, 8), _accumulate_dict(entries))
        keys, matrix = grid.line_matrix(axis)
        iterated = list(grid.lines_along(axis))
        assert [tuple(k) for k in keys.tolist()] == [key for key, _ in iterated]
        for row, (_key, line) in zip(matrix, iterated):
            np.testing.assert_allclose(row, line)

    @given(entries=coo_entries, connectivity=st.sampled_from(["face", "full"]))
    @settings(max_examples=60, deadline=None)
    def test_neighbor_pairs_match_brute_force(self, entries, connectivity):
        grid = SparseGrid((8, 8), _accumulate_dict(entries))
        coords = grid.coords
        sources, targets = grid.neighbor_pairs(connectivity)
        found = {(tuple(coords[a]), tuple(coords[b])) for a, b in zip(sources, targets)}
        from repro.grid.connectivity import neighbor_offsets

        occupied = {tuple(row) for row in coords.tolist()}
        expected = set()
        for cell in occupied:
            for offset in neighbor_offsets(2, connectivity):
                neighbor = (cell[0] + offset[0], cell[1] + offset[1])
                if neighbor in occupied:
                    expected.add((cell, neighbor))
        assert found == expected

    @given(entries=coo_entries)
    @settings(max_examples=60, deadline=None)
    def test_coords_values_are_canonical(self, entries):
        grid = SparseGrid((8, 8), _accumulate_dict(entries))
        coords = grid.coords
        # Lexicographically sorted and unique.
        as_tuples = [tuple(row) for row in coords.tolist()]
        assert as_tuples == sorted(set(as_tuples))
        assert len(grid.values) == len(coords)


class TestConnectivityEquivalence:
    @given(cells=cells_2d, connectivity=st.sampled_from(["face", "full"]))
    @settings(max_examples=80, deadline=None)
    def test_vectorized_matches_hash_probing(self, cells, connectivity):
        vectorized = connected_components(cells, connectivity=connectivity)
        hashed = reference.connected_components_reference(cells, connectivity=connectivity)
        assert vectorized == hashed

    @given(cells=cells_2d)
    @settings(max_examples=40, deadline=None)
    def test_label_components_array_handles_negative_coordinates(self, cells):
        if not cells:
            return
        shifted = [(row - 6, col - 6) for row, col in cells]
        plain = connected_components(cells)
        moved = connected_components(shifted)
        assert {(r - 6, c - 6): v for (r, c), v in plain.items()} == moved

    @given(
        n=st.integers(min_value=1, max_value=40),
        edges=st.lists(
            st.tuples(st.integers(min_value=0, max_value=39), st.integers(min_value=0, max_value=39)),
            max_size=80,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_array_union_find_matches_hashable_union_find(self, n, edges):
        edges = [(a % n, b % n) for a, b in edges]
        array_uf = ArrayUnionFind(n)
        if edges:
            pairs = np.asarray(edges, dtype=np.int64)
            array_uf.union_pairs(pairs[:, 0], pairs[:, 1])
        plain = UnionFind(range(n))
        for a, b in edges:
            plain.union(a, b)
        assert array_uf.n_components == plain.n_components
        labels = array_uf.labels()
        for a, b in edges:
            assert (labels[a] == labels[b]) == plain.connected(a, b)


class TestLookupEquivalence:
    @given(
        points=st.lists(
            st.tuples(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15)),
            min_size=1,
            max_size=50,
        ),
        labelled=st.dictionaries(
            st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
            st.integers(min_value=0, max_value=5),
            max_size=20,
        ),
        level=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=80, deadline=None)
    def test_label_points_matches_reference(self, points, labelled, level):
        lookup = LookupTable(level=level)
        point_cells = np.asarray(points, dtype=np.int64)
        vectorized = lookup.label_points(point_cells, labelled)
        looped = reference.label_points_reference(lookup, point_cells, labelled)
        np.testing.assert_array_equal(vectorized, looped)

    def test_label_points_survives_unencodable_extent(self):
        """Coordinates whose bounding box exceeds the int64 code range must
        fall back to the dict path rather than silently colliding."""
        lookup = LookupTable(level=0)
        huge = 2**31
        point_cells = np.array([[0, 0], [huge, huge], [huge, 0]], dtype=np.int64)
        labelled = {(0, 0): 3, (huge, huge): 5}
        np.testing.assert_array_equal(
            lookup.label_points(point_cells, labelled), [3, 5, -1]
        )


class TestQuantizerEquivalence:
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            min_size=2,
            max_size=80,
        ),
        scale=st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_vectorized_quantize_matches_reference(self, points, scale):
        X = np.asarray(points)
        quantizer = GridQuantizer(scale=scale).fit(X)
        vectorized = quantizer.quantize(X)
        looped = reference.quantize_reference(quantizer, X)
        assert dict(vectorized.grid.items()) == dict(looped.grid.items())
        np.testing.assert_array_equal(vectorized.cell_ids, looped.cell_ids)


class TestEndToEndEngineEquivalence:
    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_engines_produce_identical_labels(self, seed):
        # Every registered backend must reproduce the per-cell reference
        # labels: the survivor cut is tie-snapped (repro.core.pipeline
        # .snapped_cut), so last-ulp rounding differences between backends
        # cannot flip exact density ties at the threshold.
        from repro.wavelets.backends import available_backends

        rng = np.random.default_rng(seed)
        blob = rng.normal(loc=0.3, scale=0.04, size=(150, 2))
        noise = rng.uniform(size=(150, 2))
        X = np.vstack([blob, noise])
        ref = reference.fit_reference(X, scale=32)
        for backend in available_backends():
            vec = AdaWave(scale=32, backend=backend).fit(X)
            np.testing.assert_array_equal(vec.labels_, ref.labels)
            assert vec.n_clusters_ == ref.n_clusters
