"""Hypothesis properties of the level-dependent thresholding rules.

These pin the order-theoretic structure the denoising pipeline relies on:
raising a threshold can only remove survivors, the soft rule's survivors are
a subset of the hard rule's at the same cut, and the global (pooled-sigma)
and per-level noise estimates coincide exactly when every level has the same
coefficient distribution.  Nightly CI runs this module with a larger example
budget (``HYPOTHESIS_PROFILE=nightly``, see ``tests/conftest.py``).
"""

import numpy as np
from hypothesis import assume, given, strategies as st

from repro.wavelets.thresholding import (
    LevelPolicy,
    hard_threshold,
    level_thresholds,
    soft_threshold,
    threshold_levels,
)

finite_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=64,
)

cuts = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


def survivors(thresholded: np.ndarray) -> frozenset:
    """Indices the rule kept (nonzero after thresholding)."""
    return frozenset(np.flatnonzero(thresholded != 0.0).tolist())


class TestSurvivorMonotonicity:
    @given(values=finite_values, low=cuts, high=cuts)
    def test_hard_survivors_shrink_as_threshold_rises(self, values, low, high):
        low, high = min(low, high), max(low, high)
        assert survivors(hard_threshold(values, high)) <= survivors(
            hard_threshold(values, low)
        )

    @given(values=finite_values, low=cuts, high=cuts)
    def test_soft_survivors_shrink_as_threshold_rises(self, values, low, high):
        low, high = min(low, high), max(low, high)
        assert survivors(soft_threshold(values, high)) <= survivors(
            soft_threshold(values, low)
        )

    @given(values=finite_values, cut=cuts)
    def test_soft_magnitudes_never_exceed_hard(self, values, cut):
        soft = np.abs(soft_threshold(values, cut))
        hard = np.abs(hard_threshold(values, cut))
        assert np.all(soft <= hard)


class TestSoftSubsetOfHard:
    @given(values=finite_values, cut=cuts)
    def test_soft_survivors_subset_of_hard_survivors(self, values, cut):
        # Hard keeps |x| >= t, soft keeps |x| > t: the soft survivor set can
        # only lose the exact-tie entries, never gain one.
        assert survivors(soft_threshold(values, cut)) <= survivors(
            hard_threshold(values, cut)
        )

    @given(values=finite_values, cut=cuts)
    def test_surviving_signs_are_preserved(self, values, cut):
        arr = np.asarray(values, dtype=np.float64)
        for rule in (hard_threshold, soft_threshold):
            out = rule(arr, cut)
            kept = out != 0.0
            assert np.all(np.sign(out[kept]) == np.sign(arr[kept]))


class TestPerLevelEqualsGlobalWhenLevelsAgree:
    @staticmethod
    def _mad(band: np.ndarray) -> float:
        return float(np.median(np.abs(band - np.median(band))))

    @given(
        band=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=48,
        ),
        n_bands=st.integers(min_value=1, max_value=4),
    )
    def test_identical_bands_give_identical_thresholds(self, band, n_bands):
        # k repeated copies of one band leave the median and the MAD
        # unchanged under pooling (a repeated multiset keeps its order
        # statistics), so while the MAD is informative the pooled-sigma
        # global mode must agree with per-level estimation exactly -- not
        # approximately.  The std fallback (collapsed MAD) is only
        # summation-order stable to roundoff; that regime is covered by
        # test_collapsed_mad_agrees_to_roundoff below.
        band = np.asarray(band, dtype=np.float64)
        assume(self._mad(band) > 0)
        bands = [band.copy() for _ in range(n_bands)]
        assert level_thresholds(bands, mode="global") == level_thresholds(
            bands, mode="per-level"
        )

    @given(
        band=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=48,
        ),
        n_bands=st.integers(min_value=1, max_value=4),
    )
    def test_collapsed_mad_agrees_to_roundoff(self, band, n_bands):
        # With a collapsed MAD the sigma comes from the std, whose pairwise
        # summation order changes under pooling -- agreement is then exact
        # up to floating-point roundoff rather than bit-for-bit.
        bands = [np.asarray(band, dtype=np.float64) for _ in range(n_bands)]
        per_level = level_thresholds(bands, mode="per-level")
        pooled = level_thresholds(bands, mode="global")
        np.testing.assert_allclose(pooled, per_level, rtol=1e-12, atol=1e-12)

    @given(
        band=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=48,
        ),
        n_bands=st.integers(min_value=1, max_value=4),
        rule=st.sampled_from(["hard", "soft"]),
    )
    def test_identical_bands_give_identical_denoised_output(self, band, n_bands, rule):
        band = np.asarray(band, dtype=np.float64)
        assume(self._mad(band) > 0)
        bands = [band.copy() for _ in range(n_bands)]
        per_level = threshold_levels(bands, LevelPolicy(rule=rule, mode="per-level"))
        global_ = threshold_levels(bands, LevelPolicy(rule=rule, mode="global"))
        for a, b in zip(per_level, global_):
            np.testing.assert_array_equal(a, b)
