"""Frozen ClusterModel artifacts: extraction, predict, and versioned save/load.

The acceptance bar for the serving layer: on every golden dataset,
``save -> load -> predict(X_train)`` must reproduce the frozen seed labels
bit-for-bit, corrupted or incompatible files must be rejected loudly, and
the artifact's memory must scale with the occupied cells, never with the
training-set size.
"""

import json
import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.serve import FORMAT_MAGIC, FORMAT_VERSION, ClusterModel
from repro.utils.validation import NotFittedError

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

GOLDEN_NAMES = (
    "running_example",
    "two_moons_noise",
    "roadmap_case",
    "gaussians_4d",
    "uniform_noise_only",
    "single_cluster",
)


def _load_golden(name):
    path = GOLDEN_DIR / f"{name}.npz"
    if not path.exists():
        pytest.skip(f"golden fixture {path.name} missing; run generate_golden.py")
    return np.load(path)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(7)
    blob_a = np.clip(rng.normal(0.3, 0.04, size=(800, 2)), 0.0, 1.0)
    blob_b = np.clip(rng.normal(0.7, 0.04, size=(800, 2)), 0.0, 1.0)
    noise = rng.uniform(size=(3000, 2))
    X = np.vstack([blob_a, blob_b, noise])
    return X, AdaWave(scale=64).fit(X)


class TestClusterModelExtraction:
    def test_from_estimator_matches_fit_labels(self, fitted):
        X, estimator = fitted
        model = estimator.export_model()
        np.testing.assert_array_equal(model.predict(X), estimator.labels_)
        assert model.n_clusters == estimator.n_clusters_
        assert model.n_features == 2
        assert model.threshold == estimator.threshold_

    def test_adawave_predict_matches_export(self, fitted):
        X, estimator = fitted
        np.testing.assert_array_equal(
            estimator.predict(X), estimator.export_model().predict(X)
        )

    def test_unfitted_export_raises_not_fitted(self):
        with pytest.raises(NotFittedError, match="not fitted"):
            AdaWave(scale=64).export_model()

    def test_unfitted_predict_raises_not_fitted(self):
        with pytest.raises(NotFittedError, match="not fitted"):
            AdaWave(scale=64).predict(np.zeros((3, 2)))

    def test_not_fitted_error_is_value_error(self):
        # Satellite requirement: NotFittedError-style *ValueError*.
        with pytest.raises(ValueError):
            AdaWave(scale=64).predict(np.zeros((3, 2)))

    def test_metadata_records_provenance(self, fitted):
        _, estimator = fitted
        model = estimator.export_model()
        assert model.metadata["wavelet"] == "bior2.2"
        assert model.metadata["n_seen"] == estimator.n_seen_

    def test_cell_map_is_sorted_coo(self, fitted):
        _, estimator = fitted
        model = estimator.export_model()
        order = np.lexsort(model.cell_coords.T[::-1])
        np.testing.assert_array_equal(order, np.arange(len(order)))

    def test_shuffled_construction_is_canonicalised(self, fitted):
        X, estimator = fitted
        model = estimator.export_model()
        rng = np.random.default_rng(0)
        shuffle = rng.permutation(model.n_cells)
        shuffled = ClusterModel(
            lower=model.lower,
            upper=model.upper,
            grid_shape=model.grid_shape,
            level=model.level,
            threshold=model.threshold,
            cell_coords=model.cell_coords[shuffle],
            cell_labels=model.cell_labels[shuffle],
            n_clusters=model.n_clusters,
        )
        np.testing.assert_array_equal(shuffled.cell_coords, model.cell_coords)
        np.testing.assert_array_equal(shuffled.predict(X), model.predict(X))


class TestClusterModelPredict:
    def test_out_of_bounds_points_are_noise(self, fitted):
        _, estimator = fitted
        model = estimator.export_model()
        far = np.array([[10.0, 10.0], [-5.0, 0.5], [0.5, 2.5]])
        np.testing.assert_array_equal(model.predict(far), [-1, -1, -1])

    def test_empty_query_allowed(self, fitted):
        _, estimator = fitted
        assert estimator.export_model().predict(np.empty((0, 2))).shape == (0,)

    def test_feature_mismatch_raises(self, fitted):
        _, estimator = fitted
        with pytest.raises(ValueError, match="features"):
            estimator.export_model().predict(np.zeros((3, 5)))

    def test_memory_does_not_scale_with_training_size(self):
        """8x the training data must not grow the artifact appreciably."""
        def _artifact_bytes(n):
            rng = np.random.default_rng(3)
            blob = np.clip(rng.normal(0.4, 0.05, size=(n // 2, 2)), 0.0, 1.0)
            noise = rng.uniform(size=(n // 2, 2))
            model = AdaWave(
                scale=64, bounds=([0.0, 0.0], [1.0, 1.0])
            ).fit(np.vstack([blob, noise])).export_model()
            arrays = (model.lower, model.upper, model.cell_coords, model.cell_labels)
            return sum(a.nbytes for a in arrays), model

        small_bytes, small = _artifact_bytes(4_000)
        large_bytes, large = _artifact_bytes(32_000)
        assert large.metadata["n_seen"] == 8 * small.metadata["n_seen"]
        # The cell map is bounded by grid occupancy, not sample count.
        assert large_bytes < 2 * small_bytes
        assert large.n_cells < 4_000


class TestClusterModelGoldenRoundTrips:
    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_save_load_predict_reproduces_frozen_labels(self, name, tmp_path):
        data = _load_golden(name)
        estimator = AdaWave(scale=int(data["scale"])).fit(data["points"])
        np.testing.assert_array_equal(estimator.labels_, data["labels"])
        path = estimator.export_model().save(tmp_path / f"{name}.npz")
        loaded = ClusterModel.load(path)
        np.testing.assert_array_equal(
            loaded.predict(data["points"]),
            data["labels"],
            err_msg=f"save->load->predict diverged from the frozen labels on {name}",
        )
        assert loaded.n_clusters == int(data["n_clusters"])
        assert loaded.threshold == pytest.approx(float(data["threshold"]))

    def test_round_trip_preserves_all_fields(self, fitted, tmp_path):
        _, estimator = fitted
        model = estimator.export_model()
        loaded = ClusterModel.load(model.save(tmp_path / "model.npz"))
        np.testing.assert_array_equal(loaded.lower, model.lower)
        np.testing.assert_array_equal(loaded.upper, model.upper)
        np.testing.assert_array_equal(loaded.cell_coords, model.cell_coords)
        np.testing.assert_array_equal(loaded.cell_labels, model.cell_labels)
        assert loaded.grid_shape == model.grid_shape
        assert loaded.level == model.level
        assert loaded.threshold == model.threshold
        assert loaded.n_clusters == model.n_clusters
        assert loaded.metadata == model.metadata

    def test_save_is_deterministic(self, fitted, tmp_path):
        _, estimator = fitted
        model = estimator.export_model()
        path_a = model.save(tmp_path / "a.npz")
        path_b = estimator.export_model().save(tmp_path / "b.npz")
        loaded_a, loaded_b = ClusterModel.load(path_a), ClusterModel.load(path_b)
        np.testing.assert_array_equal(loaded_a.cell_coords, loaded_b.cell_coords)
        np.testing.assert_array_equal(loaded_a.cell_labels, loaded_b.cell_labels)


class TestClusterModelRejection:
    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is definitely not an npz archive")
        with pytest.raises(ValueError, match="not a readable ClusterModel"):
            ClusterModel.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not a readable ClusterModel"):
            ClusterModel.load(tmp_path / "missing.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.arange(5))
        with pytest.raises(ValueError, match="header"):
            ClusterModel.load(path)

    def test_wrong_version_rejected(self, fitted, tmp_path):
        _, estimator = fitted
        model = estimator.export_model()
        header = model._header()
        header["version"] = FORMAT_VERSION + 1
        path = tmp_path / "future.npz"
        with open(path, "wb") as stream:
            np.savez(
                stream,
                header=np.frombuffer(
                    json.dumps(header).encode("utf-8"), dtype=np.uint8
                ),
                lower=model.lower,
                upper=model.upper,
                grid_shape=np.asarray(model.grid_shape, dtype=np.int64),
                cell_coords=model.cell_coords,
                cell_labels=model.cell_labels,
            )
        with pytest.raises(ValueError, match="version"):
            ClusterModel.load(path)

    def test_wrong_magic_rejected(self, fitted, tmp_path):
        _, estimator = fitted
        model = estimator.export_model()
        header = model._header()
        header["format"] = "somebody.else/model"
        path = tmp_path / "alien.npz"
        with open(path, "wb") as stream:
            np.savez(
                stream,
                header=np.frombuffer(
                    json.dumps(header).encode("utf-8"), dtype=np.uint8
                ),
                lower=model.lower,
                upper=model.upper,
                grid_shape=np.asarray(model.grid_shape, dtype=np.int64),
                cell_coords=model.cell_coords,
                cell_labels=model.cell_labels,
            )
        with pytest.raises(ValueError, match=FORMAT_MAGIC.replace("/", ".")):
            ClusterModel.load(path)

    def test_truncated_archive_rejected(self, fitted, tmp_path):
        _, estimator = fitted
        path = estimator.export_model().save(tmp_path / "model.npz")
        data = path.read_bytes()
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError):
            ClusterModel.load(truncated)

    def test_inconsistent_cell_count_rejected(self, fitted, tmp_path):
        _, estimator = fitted
        model = estimator.export_model()
        header = model._header()
        header["n_cells"] = model.n_cells + 17
        path = tmp_path / "inconsistent.npz"
        with open(path, "wb") as stream:
            np.savez(
                stream,
                header=np.frombuffer(
                    json.dumps(header).encode("utf-8"), dtype=np.uint8
                ),
                lower=model.lower,
                upper=model.upper,
                grid_shape=np.asarray(model.grid_shape, dtype=np.int64),
                cell_coords=model.cell_coords,
                cell_labels=model.cell_labels,
            )
        with pytest.raises(ValueError, match="corrupted"):
            ClusterModel.load(path)

    def test_saved_file_is_a_real_zip(self, fitted, tmp_path):
        _, estimator = fitted
        path = estimator.export_model().save(tmp_path / "model.npz")
        assert zipfile.is_zipfile(path)


class TestMemoryMappedLoad:
    """load(mmap=True): npz members memory-mapped so processes share pages."""

    @staticmethod
    def _backed_by_memmap(array):
        probe = array
        while probe is not None:
            if isinstance(probe, np.memmap):
                return True
            probe = getattr(probe, "base", None)
        return False

    def test_uncompressed_roundtrip_is_memory_mapped(self, fitted, tmp_path):
        X, estimator = fitted
        model = estimator.export_model()
        path = model.save(tmp_path / "model.npz", compress=False)
        served = ClusterModel.load(path, mmap=True)
        assert self._backed_by_memmap(served.cell_coords)
        assert self._backed_by_memmap(served.cell_labels)
        np.testing.assert_array_equal(served.predict(X), estimator.labels_)
        np.testing.assert_array_equal(served.cell_coords, model.cell_coords)
        assert served.metadata == model.metadata

    def test_compressed_artifact_falls_back_to_copying_read(self, fitted, tmp_path):
        X, estimator = fitted
        model = estimator.export_model()
        path = model.save(tmp_path / "model.npz")  # compressed default
        served = ClusterModel.load(path, mmap=True)
        assert not self._backed_by_memmap(served.cell_coords)
        np.testing.assert_array_equal(served.predict(X), estimator.labels_)

    def test_mmap_load_rejects_corruption_like_the_plain_path(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(ValueError, match="not a readable"):
            ClusterModel.load(path, mmap=True)

    def test_compressed_and_uncompressed_artifacts_are_equivalent(self, fitted, tmp_path):
        X, estimator = fitted
        model = estimator.export_model()
        compressed = ClusterModel.load(model.save(tmp_path / "c.npz", compress=True))
        plain = ClusterModel.load(
            model.save(tmp_path / "u.npz", compress=False), mmap=True
        )
        np.testing.assert_array_equal(compressed.predict(X), plain.predict(X))
        assert compressed.grid_shape == plain.grid_shape
        assert compressed.threshold == plain.threshold

    def test_registry_load_mmap_passthrough(self, fitted, tmp_path):
        from repro.serve import ModelRegistry

        X, estimator = fitted
        path = estimator.export_model().save(tmp_path / "model.npz", compress=False)
        registry = ModelRegistry()
        registry.load("prod", path, mmap=True)
        assert self._backed_by_memmap(registry.get("prod").cell_coords)
        np.testing.assert_array_equal(
            registry.get("prod").predict(X), estimator.labels_
        )
