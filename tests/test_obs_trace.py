"""Request tracing: span accounting, end-to-end coverage, doomed traces.

The acceptance bars from the observability issue:

* a traced request through the serving path yields the complete span set
  with the spans explaining >= 95% of the measured round trip -- on the
  in-process service, and on the process pool over **both** data planes
  (shared-memory rings and the pickle-queue fallback);
* a request in flight when its worker is SIGKILL'd still closes: the trace
  carries an ``error`` span covering the unaccounted tail and surfaces in
  the slow-trace capture with the failure attached;
* ``tracing=False`` switches the whole machinery off -- no traces, no
  stage histograms, no per-request cost.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.obs import (
    STAGE_ADMISSION_WAIT,
    STAGE_COLLECT,
    STAGE_ERROR,
    STAGE_IPC_BACK,
    STAGE_IPC_OUT,
    STAGE_QUEUE_WAIT,
    STAGE_WORKER_LOAD,
    STAGE_WORKER_PREDICT,
    Span,
    StageTimer,
    Trace,
    apply_worker_stamps,
    new_trace_id,
)
from repro.serve import ClusteringService, ProcessPoolService, shm_available
from repro.serve.metrics import Telemetry

BOUNDS = ([0.0, 0.0], [1.0, 1.0])

#: Serving-path stages every pooled request must account for.
POOLED_STAGES = {
    STAGE_ADMISSION_WAIT,
    STAGE_QUEUE_WAIT,
    STAGE_IPC_OUT,
    STAGE_WORKER_LOAD,
    STAGE_WORKER_PREDICT,
    STAGE_IPC_BACK,
    STAGE_COLLECT,
}


@pytest.fixture(scope="module")
def frozen():
    rng = np.random.default_rng(7)
    blob = np.clip(rng.normal(0.3, 0.05, size=(2000, 2)), 0.0, 1.0)
    X = np.vstack([blob, rng.uniform(size=(2000, 2))])
    return AdaWave(scale=64, bounds=BOUNDS).fit(X).export_model()


def _wait_for(predicate, timeout=15.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


class TestSpanAndTrace:
    def test_span_never_runs_backwards(self):
        span = Span("collect", 10.0, 9.0)
        assert span.seconds == 0.0

    def test_trace_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_lazy_id_is_stable_and_externally_settable(self):
        trace = Trace()
        assert trace.trace_id == trace.trace_id
        assert Trace("abc123").trace_id == "abc123"

    def test_span_sum_never_exceeds_total(self):
        trace = Trace()
        now = time.monotonic()
        trace.add_span("a", now, now + 0.5)
        trace.add_span("b", now + 0.5, now + 1.0)
        trace.close()
        assert trace.span_seconds() <= trace.total_seconds
        assert 0.0 <= trace.coverage() <= 1.0

    def test_close_is_first_wins(self):
        trace = Trace()
        assert trace.close() is True
        total = trace.total_seconds
        assert trace.close() is False
        assert trace.total_seconds == total

    def test_close_with_error_appends_error_span(self):
        trace = Trace()
        trace.add_span("queue-wait", trace.started, time.monotonic())
        assert trace.close(error=RuntimeError("worker died"))
        assert trace.error == "RuntimeError: worker died"
        assert trace.spans[-1].stage == STAGE_ERROR
        # The error span covers the tail, so accounting stays complete.
        assert trace.coverage() >= 0.95

    def test_deadline_violation_is_flagged(self):
        trace = Trace(deadline=0.0)
        time.sleep(0.001)
        trace.close()
        assert trace.deadline_violated
        assert trace.to_dict()["deadline_violated"] is True

    def test_last_stamp_chains_spans_contiguously(self):
        trace = Trace()
        assert trace.last_stamp() == trace.started
        trace.add_span("a", trace.started, trace.started + 0.25)
        assert trace.last_stamp() == trace.started + 0.25

    def test_worker_stamps_expand_to_four_spans(self):
        trace = Trace()
        t0 = trace.started
        apply_worker_stamps(trace, t0, (t0 + 1, t0 + 2, t0 + 3), t0 + 4)
        assert [s.stage for s in trace.spans] == [
            STAGE_IPC_OUT, STAGE_WORKER_LOAD, STAGE_WORKER_PREDICT,
            STAGE_IPC_BACK,
        ]
        assert all(s.seconds == pytest.approx(1.0) for s in trace.spans)
        before = len(trace.spans)
        apply_worker_stamps(trace, t0, None, t0 + 4)  # pickle-path no-op
        assert len(trace.spans) == before

    def test_stage_seconds_accumulates_repeated_stages(self):
        trace = Trace()
        trace.add_span("a", 0.0, 1.0)
        trace.add_span("a", 2.0, 2.5)
        assert trace.stage_seconds() == {"a": pytest.approx(1.5)}


class TestStageTimer:
    def test_accumulates_across_reentry(self):
        timer = StageTimer()
        for _ in range(3):
            with timer.stage("transform"):
                pass
        timer.add("transform", 1.0)
        assert timer.counts["transform"] == 4
        assert timer.seconds["transform"] >= 1.0
        assert timer.as_dict() == {"transform": timer.seconds["transform"]}

    def test_pipeline_reports_stage_seconds(self, frozen):
        from repro.core.pipeline import run_grid_pipeline

        rng = np.random.default_rng(3)
        est = AdaWave(scale=32, bounds=BOUNDS).fit(rng.uniform(size=(800, 2)))
        timer = StageTimer()
        result = run_grid_pipeline(est.result_.quantization.grid, timer=timer)
        assert set(result.stage_seconds) == {"transform", "threshold", "extract"}
        assert set(timer.as_dict()) == {"transform", "threshold", "extract"}
        assert all(v >= 0.0 for v in result.stage_seconds.values())

    def test_fit_records_stage_provenance_into_artifact(self):
        rng = np.random.default_rng(4)
        est = AdaWave(scale=32, bounds=BOUNDS).fit(rng.uniform(size=(800, 2)))
        assert set(est.stage_seconds_) == {"transform", "threshold", "extract"}
        model = est.export_model()
        assert model.metadata["stage_seconds"] == est.stage_seconds_


class TestInProcessTracing:
    def test_traced_predict_covers_round_trip(self, frozen):
        rng = np.random.default_rng(5)
        with ClusteringService() as service:
            service.register("live", frozen)
            for _ in range(8):
                service.predict("live", rng.uniform(size=(200, 2)))
            snapshot = service.telemetry.snapshot()
        assert snapshot["traces"]["count"] == 8
        assert snapshot["traces"]["errors"] == 0
        stages = set(snapshot["stages"])
        assert {STAGE_ADMISSION_WAIT, STAGE_QUEUE_WAIT,
                STAGE_WORKER_PREDICT, STAGE_COLLECT} <= stages
        for entry in snapshot["traces"]["slowest"]:
            assert entry["coverage"] >= 0.95, entry

    def test_tracing_off_records_nothing(self, frozen):
        rng = np.random.default_rng(5)
        with ClusteringService(tracing=False) as service:
            service.register("live", frozen)
            for _ in range(4):
                service.predict("live", rng.uniform(size=(200, 2)))
            snapshot = service.telemetry.snapshot()
        assert snapshot["traces"]["count"] == 0
        assert snapshot["stages"] == {}
        assert snapshot["traces"]["slowest"] == []

    def test_predict_error_aborts_trace_with_error(self, frozen):
        with ClusteringService() as service:
            service.register("live", frozen)
            # Wrong dimensionality passes admission and dies inside the
            # predict pass -- the doomed trace must still close.
            with pytest.raises(ValueError):
                service.predict("live", np.zeros((4, 5)))
            snapshot = service.telemetry.snapshot()
        assert snapshot["traces"]["errors"] == 1
        assert snapshot["traces"]["violations"], "doomed trace must be captured"
        entry = snapshot["traces"]["violations"][-1]
        assert entry["error"] is not None
        assert entry["spans"][-1]["stage"] == STAGE_ERROR


class TestPooledTracing:
    @pytest.mark.parametrize("use_shm", [False, True], ids=["pickle", "shm"])
    def test_full_span_chain_on_both_data_planes(self, frozen, tmp_path, use_shm):
        if use_shm and not shm_available():
            pytest.skip("shared memory unavailable on this host")
        rng = np.random.default_rng(6)
        with ProcessPoolService(
            tmp_path, n_workers=1, use_shm=use_shm
        ) as service:
            service.register("live", frozen)
            expected = frozen.predict(rng.uniform(size=(300, 2)))
            for _ in range(6):
                queries = rng.uniform(size=(300, 2))
                np.testing.assert_array_equal(
                    service.predict("live", queries), frozen.predict(queries)
                )
            if use_shm:
                assert service.pool.shm_sends > 0
            snapshot = service.telemetry.snapshot()
        assert snapshot["traces"]["count"] == 6
        assert snapshot["traces"]["errors"] == 0
        assert POOLED_STAGES <= set(snapshot["stages"])
        for entry in snapshot["traces"]["slowest"]:
            assert entry["coverage"] >= 0.95, entry
            stages = {span["stage"] for span in entry["spans"]}
            assert POOLED_STAGES <= stages, entry

    def test_killed_worker_closes_trace_with_error_span(self, frozen, tmp_path):
        with ProcessPoolService(
            tmp_path, n_workers=1, worker_timeout=4.0, respawn_workers=False
        ) as service:
            service.register("live", frozen)
            service.predict("live", np.zeros((4, 2)))  # worker warm + bound
            futures = [
                service.submit("live", np.full((64, 2), 0.5)) for _ in range(3)
            ]
            os.kill(service.pool.processes[0].pid, signal.SIGKILL)
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(("ok", future.result(timeout=30)))
                except RuntimeError as error:
                    outcomes.append(("err", error))
            assert any(kind == "err" for kind, _ in outcomes), (
                "SIGKILL must doom at least one in-flight request"
            )
            _wait_for(
                lambda: service.telemetry.snapshot()["traces"]["errors"] > 0,
                message="doomed traces to be recorded",
            )
            snapshot = service.telemetry.snapshot()
        doomed = snapshot["traces"]["violations"]
        assert doomed, "doomed traces must surface in the capture ring"
        for entry in doomed:
            assert entry["error"] is not None
            assert entry["spans"][-1]["stage"] == STAGE_ERROR
            assert entry["coverage"] >= 0.95, entry


class TestTelemetryTraceCapture:
    def test_slow_ring_keeps_n_slowest(self):
        telemetry = Telemetry(slow_traces=4)
        for ms in (1, 9, 2, 8, 3, 7, 4, 6):
            trace = Trace(started=0.0)
            trace.add_span("queue-wait", 0.0, ms / 1000.0)
            trace.total_seconds = ms / 1000.0
            telemetry.record_trace(trace)
        slowest = telemetry.snapshot()["traces"]["slowest"]
        assert len(slowest) == 4
        totals = [entry["total_seconds"] for entry in slowest]
        assert totals == sorted(totals, reverse=True)
        assert totals[0] == pytest.approx(0.009)

    def test_equal_totals_never_raise_on_heap_tie(self):
        telemetry = Telemetry(slow_traces=2)
        for _ in range(6):
            trace = Trace(started=0.0)
            trace.total_seconds = 0.005
            telemetry.record_trace(trace)
        assert telemetry.snapshot()["traces"]["count"] == 6

    def test_stage_histogram_buckets_are_cumulative(self):
        telemetry = Telemetry()
        for seconds in (1e-6, 1e-4, 1e-2, 1.0, 100.0):
            telemetry.record_stage("queue-wait", seconds)
        buckets = telemetry.snapshot()["stages"]["queue-wait"]["buckets"]
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 5
