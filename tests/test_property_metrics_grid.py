"""Hypothesis property tests for metrics, grid structures and the dip test."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.diptest import dip_statistic
from repro.grid.connectivity import connected_components
from repro.grid.quantizer import GridQuantizer
from repro.grid.sparse_grid import SparseGrid
from repro.metrics import (
    adjusted_mutual_info,
    adjusted_rand_index,
    normalized_mutual_info,
)

label_vectors = st.integers(min_value=2, max_value=60).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(min_value=-1, max_value=4), min_size=n, max_size=n),
        st.lists(st.integers(min_value=-1, max_value=4), min_size=n, max_size=n),
    )
)


class TestMetricProperties:
    @given(pair=label_vectors)
    @settings(max_examples=80, deadline=None)
    def test_ami_symmetry(self, pair):
        labels_a, labels_b = pair
        forward = adjusted_mutual_info(labels_a, labels_b)
        backward = adjusted_mutual_info(labels_b, labels_a)
        assert forward == pytest.approx(backward, abs=1e-9)

    @given(pair=label_vectors)
    @settings(max_examples=80, deadline=None)
    def test_self_agreement_is_one(self, pair):
        labels, _ = pair
        assert adjusted_mutual_info(labels, labels) == pytest.approx(1.0)
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @given(pair=label_vectors)
    @settings(max_examples=80, deadline=None)
    def test_metrics_bounded_above_by_one(self, pair):
        labels_a, labels_b = pair
        assert adjusted_mutual_info(labels_a, labels_b) <= 1.0 + 1e-9
        assert normalized_mutual_info(labels_a, labels_b) <= 1.0 + 1e-9
        assert adjusted_rand_index(labels_a, labels_b) <= 1.0 + 1e-9

    @given(pair=label_vectors)
    @settings(max_examples=60, deadline=None)
    def test_permutation_invariance_of_label_names(self, pair):
        labels_a, labels_b = pair
        renamed = [label + 10 for label in labels_b]
        assert adjusted_mutual_info(labels_a, labels_b) == pytest.approx(
            adjusted_mutual_info(labels_a, renamed), abs=1e-9
        )


class TestGridProperties:
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            min_size=1,
            max_size=200,
        ),
        scale=st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_quantization_conserves_mass(self, points, scale):
        array = np.asarray(points)
        result = GridQuantizer(scale=scale).fit_transform(array)
        assert result.grid.total_mass() == pytest.approx(len(points))
        assert result.grid.n_occupied <= len(points)
        assert result.cell_ids.min() >= 0
        assert result.cell_ids.max() < scale

    @given(
        cells=st.sets(
            st.tuples(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=9)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_connected_components_partition_the_cells(self, cells):
        labels = connected_components(cells, connectivity="face")
        assert set(labels) == set(cells)
        label_values = set(labels.values())
        assert label_values == set(range(len(label_values)))

    @given(
        cells=st.sets(
            st.tuples(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=9)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_full_connectivity_never_more_components_than_face(self, cells):
        face = connected_components(cells, connectivity="face")
        full = connected_components(cells, connectivity="full")
        assert len(set(full.values())) <= len(set(face.values()))

    @given(
        entries=st.dictionaries(
            st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_sparse_grid_dense_roundtrip(self, entries):
        grid = SparseGrid((8, 8), entries)
        roundtripped = SparseGrid.from_dense(grid.to_dense())
        assert dict(roundtripped.items()) == pytest.approx(dict(grid.items()))


class TestDipProperties:
    @given(
        sample=st.lists(st.integers(min_value=-100, max_value=100), min_size=4, max_size=150),
        shift=st.integers(min_value=-50, max_value=50),
        scale=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_dip_bounds_and_affine_invariance(self, sample, shift, scale):
        # Integer-valued samples and integer affine maps keep the tie
        # structure exactly, so the dip must be exactly invariant; the bound
        # is generous because heavy ties inflate the raw estimate.
        values = np.asarray(sample, dtype=np.float64)
        dip = dip_statistic(values)
        assert 0.0 < dip <= 1.0
        transformed = dip_statistic(float(scale) * values + float(shift))
        assert transformed == pytest.approx(dip, abs=1e-12)
