"""Tests for repro.grid.connectivity and repro.grid.lookup."""

import numpy as np
import pytest

from repro.grid.connectivity import component_sizes, connected_components, neighbor_offsets
from repro.grid.lookup import NOISE_LABEL, CellLabelIndex, LookupTable


class TestNeighborOffsets:
    def test_face_offsets_2d(self):
        assert sorted(neighbor_offsets(2, "face")) == [(0, 1), (1, 0)]

    def test_face_offsets_count_scales_with_dim(self):
        assert len(neighbor_offsets(5, "face")) == 5

    def test_full_offsets_2d(self):
        offsets = neighbor_offsets(2, "full")
        # Half of the 8 surrounding cells (symmetric pairs are folded).
        assert len(offsets) == 4

    def test_full_offsets_3d(self):
        assert len(neighbor_offsets(3, "full")) == 13

    def test_full_connectivity_dimension_limit(self):
        with pytest.raises(ValueError, match="full connectivity"):
            neighbor_offsets(9, "full")

    def test_invalid_connectivity(self):
        with pytest.raises(ValueError, match="connectivity"):
            neighbor_offsets(2, "diagonal")

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            neighbor_offsets(0)


class TestConnectedComponents:
    def test_two_separate_blobs(self):
        cells = [(0, 0), (0, 1), (1, 0), (5, 5), (5, 6)]
        labels = connected_components(cells, connectivity="face")
        assert labels[(0, 0)] == labels[(0, 1)] == labels[(1, 0)]
        assert labels[(5, 5)] == labels[(5, 6)]
        assert labels[(0, 0)] != labels[(5, 5)]
        assert len(set(labels.values())) == 2

    def test_diagonal_only_connects_with_full(self):
        cells = [(0, 0), (1, 1)]
        face = connected_components(cells, connectivity="face")
        full = connected_components(cells, connectivity="full")
        assert len(set(face.values())) == 2
        assert len(set(full.values())) == 1

    def test_empty_input(self):
        assert connected_components([]) == {}

    def test_single_cell(self):
        assert connected_components([(3, 3)]) == {(3, 3): 0}

    def test_labels_are_dense_and_deterministic(self):
        cells = [(9, 9), (0, 0), (0, 1), (5, 5)]
        labels = connected_components(cells)
        assert set(labels.values()) == {0, 1, 2}
        # Sorted-cell order determines the numbering: (0,0) block first.
        assert labels[(0, 0)] == 0

    def test_mixed_dimensionality_rejected(self):
        with pytest.raises(ValueError, match="dimensionality"):
            connected_components([(0, 0), (1,)])

    def test_ring_stays_one_component_with_full_connectivity(self):
        # Discretized circle: consecutive cells may touch only diagonally.
        angles = np.linspace(0, 2 * np.pi, 100, endpoint=False)
        cells = {(int(8 + 6 * np.cos(a)), int(8 + 6 * np.sin(a))) for a in angles}
        labels = connected_components(cells, connectivity="full")
        assert len(set(labels.values())) == 1

    def test_shape_argument_does_not_change_result(self):
        cells = [(0, 0), (0, 1), (3, 3)]
        with_shape = connected_components(cells, shape=(4, 4))
        without_shape = connected_components(cells)
        assert with_shape == without_shape

    def test_component_sizes(self):
        labels = connected_components([(0, 0), (0, 1), (5, 5)])
        sizes = component_sizes(labels)
        assert sorted(sizes.values()) == [1, 2]

    def test_3d_face_connectivity(self):
        cells = [(0, 0, 0), (0, 0, 1), (2, 2, 2)]
        labels = connected_components(cells, connectivity="face")
        assert labels[(0, 0, 0)] == labels[(0, 0, 1)]
        assert len(set(labels.values())) == 2


class TestLookupTable:
    def test_downsample_factor(self):
        assert LookupTable(level=1).downsample_factor == 2
        assert LookupTable(level=3).downsample_factor == 8

    def test_to_transformed(self):
        table = LookupTable(level=1)
        assert table.to_transformed((5, 7)) == (2, 3)

    def test_level_zero_is_identity(self):
        assert LookupTable(level=0).to_transformed((5, 7)) == (5, 7)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            LookupTable(level=-1)

    def test_build_mapping(self):
        table = LookupTable(level=1)
        mapping = table.build([(0, 0), (1, 1), (2, 2)])
        assert mapping == {(0, 0): (0, 0), (1, 1): (0, 0), (2, 2): (1, 1)}

    def test_label_cells_unmatched_is_noise(self):
        table = LookupTable(level=1)
        labels = table.label_cells([(0, 0), (4, 4)], {(0, 0): 7})
        assert labels[(0, 0)] == 7
        assert labels[(4, 4)] == NOISE_LABEL

    def test_label_points(self):
        table = LookupTable(level=1)
        point_cells = np.array([[0, 1], [2, 3], [6, 6]])
        labels = table.label_points(point_cells, {(0, 0): 0, (1, 1): 1})
        np.testing.assert_array_equal(labels, [0, 1, NOISE_LABEL])

    def test_label_points_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            LookupTable().to_transformed_many(np.array([1, 2, 3]))


class TestCellLabelIndex:
    def test_lookup_matches_dict_semantics(self):
        cells = np.array([[0, 0], [1, 2], [5, 5]])
        index = CellLabelIndex(cells, np.array([3, 1, 0]))
        queries = np.array([[1, 2], [0, 0], [4, 4], [5, 5], [-3, 0]])
        np.testing.assert_array_equal(
            index.lookup(queries), [1, 3, NOISE_LABEL, 0, NOISE_LABEL]
        )

    def test_empty_index_everything_noise(self):
        index = CellLabelIndex(np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64))
        np.testing.assert_array_equal(
            index.lookup(np.array([[0, 0], [1, 1]])), [NOISE_LABEL, NOISE_LABEL]
        )

    def test_empty_query(self):
        index = CellLabelIndex(np.array([[0, 0]]), np.array([2]))
        assert index.lookup(np.empty((0, 2), dtype=np.int64)).shape == (0,)

    def test_outside_bounding_box_is_noise_without_encoding(self):
        index = CellLabelIndex(np.array([[10, 10], [11, 10]]), np.array([0, 0]))
        np.testing.assert_array_equal(
            index.lookup(np.array([[0, 0], [10, 10], [2**40, 2**40]])),
            [NOISE_LABEL, 0, NOISE_LABEL],
        )

    def test_overflow_extent_falls_back_to_hash_table(self):
        huge = np.array([[0] * 9, [2**8] * 9], dtype=np.int64) * (2**32 // 2**8)
        index = CellLabelIndex(huge, np.array([4, 5]))
        assert index._table is not None  # the int64-code path would collide
        np.testing.assert_array_equal(
            index.lookup(np.vstack([huge, np.ones((1, 9), dtype=np.int64)])),
            [4, 5, NOISE_LABEL],
        )

    def test_dimension_mismatch_rejected(self):
        index = CellLabelIndex(np.array([[0, 0]]), np.array([1]))
        with pytest.raises(ValueError, match="shape"):
            index.lookup(np.array([[1, 2, 3]]))

    def test_misaligned_labels_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            CellLabelIndex(np.array([[0, 0], [1, 1]]), np.array([1]))
