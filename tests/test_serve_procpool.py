"""Multi-process serving plane: artifact store, worker pool, swap storms.

The acceptance bars, mirroring ``test_serve_swap`` across process
boundaries:

* worker-process predicts are bit-for-bit the frozen model's labels;
* a swap storm (writer swapping every few milliseconds while many
  ``predict_async`` callers hammer the pool) produces zero failed predicts,
  no torn/missing model, and every answer consistent with a version that
  was live when the request was enqueued;
* ``close()`` is idempotent, safe with requests in flight, and later
  requests fail with a clean ``ServiceClosed`` -- never a hang.
"""

import asyncio
import os
import threading
import time

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.serve import (
    ArtifactStore,
    ClusterModel,
    ModelRegistry,
    ProcessPoolService,
    ServiceClosed,
)

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


@pytest.fixture(scope="module")
def corpus():
    """Two distinguishable models plus a query set they disagree on."""
    rng = np.random.default_rng(29)
    models = []
    for offset in (0.25, 0.65):
        blob = np.clip(rng.normal(offset, 0.04, size=(1500, 2)), 0.0, 1.0)
        noise = rng.uniform(size=(2500, 2))
        X = np.vstack([blob, noise])
        models.append(AdaWave(scale=64, bounds=BOUNDS).fit(X).export_model())
    queries = rng.uniform(size=(400, 2))
    expected = [model.predict(queries) for model in models]
    assert not np.array_equal(expected[0], expected[1])
    return models, queries, expected


class TestArtifactStore:
    def test_publish_is_content_addressed_and_idempotent(self, corpus, tmp_path):
        models, queries, expected = corpus
        store = ArtifactStore(tmp_path)
        digest = store.publish(models[0])
        assert digest == models[0].content_digest()
        assert store.publish(models[0]) == digest  # no second file
        assert store.digests() == [digest]
        assert digest in store
        served = store.load(digest)
        np.testing.assert_array_equal(served.predict(queries), expected[0])

    def test_distinct_models_get_distinct_digests(self, corpus, tmp_path):
        models, _, _ = corpus
        store = ArtifactStore(tmp_path)
        digests = {store.publish(model) for model in models}
        assert len(digests) == 2
        assert store.digests() == sorted(digests)

    def test_missing_digest_raises_keyerror(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(KeyError, match="not in the store"):
            store.load("deadbeef")

    def test_gc_keeps_only_named_digests(self, corpus, tmp_path):
        models, _, _ = corpus
        store = ArtifactStore(tmp_path)
        keep = store.publish(models[0])
        drop = store.publish(models[1])
        assert store.gc([keep]) == [drop]
        assert store.digests() == [keep]

    def test_load_racing_gc_raises_actionable_keyerror(self, corpus, tmp_path, monkeypatch):
        """A digest can pass ``in store`` and be unlinked before the open lands.

        The open is retried once (a transient unlink mid-``np.load`` is
        indistinguishable from a slow republish) and then surfaced as the
        same actionable ``KeyError`` a never-present digest gets -- callers
        must never see a raw ``FileNotFoundError`` from the race.
        """
        models, _, _ = corpus
        store = ArtifactStore(tmp_path)
        digest = store.publish(models[0])
        assert digest in store

        real_load = ClusterModel.load

        def racing_load(path, *args, **kwargs):
            # Concurrent gc() unlinks between the existence check and the open.
            store.path(digest).unlink(missing_ok=True)
            return real_load(path, *args, **kwargs)

        monkeypatch.setattr(ClusterModel, "load", staticmethod(racing_load))
        with pytest.raises(KeyError, match="concurrent gc"):
            store.load(digest)

    def test_load_survives_one_transient_vanish(self, corpus, tmp_path, monkeypatch):
        models, queries, expected = corpus
        store = ArtifactStore(tmp_path)
        digest = store.publish(models[0])
        real_load = ClusterModel.load
        calls = []

        def flaky_load(path, *args, **kwargs):
            if not calls:
                calls.append("raced")
                raise FileNotFoundError(path)
            return real_load(path, *args, **kwargs)

        monkeypatch.setattr(ClusterModel, "load", staticmethod(flaky_load))
        served = store.load(digest)
        assert calls == ["raced"]
        np.testing.assert_array_equal(served.predict(queries), expected[0])

    def test_evict_stale_garbage_collects_store_files(self, corpus, tmp_path):
        """TTL eviction must release npz files, keeping live + pinned digests."""
        models, _, _ = corpus
        now = [0.0]
        store = ArtifactStore(tmp_path)
        registry = ModelRegistry(
            ttl_seconds=10.0, clock=lambda: now[0], store=store
        )
        registry.swap("live", models[0])
        now[0] = 5.0
        registry.swap("live", models[1])  # v1 superseded at t=5
        assert set(store.digests()) == {
            models[0].content_digest(), models[1].content_digest()
        }
        now[0] = 20.0  # v1 is 20s old (stale); v2 is live
        assert registry.evict_stale() == ["live@v1"]
        assert store.digests() == [models[1].content_digest()]
        assert registry.digest("live") == models[1].content_digest()

    def test_evict_stale_keeps_files_still_referenced_elsewhere(self, corpus, tmp_path):
        """A digest evicted under one name but bound under another survives gc."""
        models, _, _ = corpus
        now = [0.0]
        store = ArtifactStore(tmp_path)
        registry = ModelRegistry(
            ttl_seconds=10.0, clock=lambda: now[0], store=store
        )
        registry.swap("live", models[0])
        registry.register("pinned", models[0])  # same artifact, second binding
        now[0] = 5.0
        registry.swap("live", models[1])
        now[0] = 20.0
        assert registry.evict_stale() == ["live@v1"]
        # models[0]'s file survives: "pinned" still resolves to it.
        assert set(store.digests()) == {
            models[0].content_digest(), models[1].content_digest()
        }

    def test_registry_with_store_records_digests(self, corpus, tmp_path):
        models, _, _ = corpus
        store = ArtifactStore(tmp_path)
        registry = ModelRegistry(store=store)
        version = registry.swap("live", models[0])
        digest = models[0].content_digest()
        assert registry.digest("live") == digest
        assert registry.digest(version) == digest
        assert digest in store
        registry.register("pinned", models[1])
        assert registry.digest("pinned") == models[1].content_digest()

    def test_concurrent_publishers_of_one_model_never_collide(self, corpus, tmp_path):
        """Racing publishers (re-tune swap vs user register) must all succeed
        and leave exactly one intact artifact -- no torn file, no crash."""
        models, queries, expected = corpus
        store = ArtifactStore(tmp_path)
        barrier = threading.Barrier(4)
        errors = []

        def publisher():
            try:
                barrier.wait()
                for _ in range(25):
                    store.publish(models[0])
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=publisher) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.digests() == [models[0].content_digest()]
        np.testing.assert_array_equal(
            store.load(models[0].content_digest()).predict(queries), expected[0]
        )
        assert list(tmp_path.glob("*.tmp")) == []  # no scratch litter

    def test_mismatched_registry_store_is_rejected(self, corpus, tmp_path):
        models, _, _ = corpus
        foreign = ModelRegistry(store=ArtifactStore(tmp_path / "elsewhere"))
        with pytest.raises(ValueError, match="different artifact store"):
            ProcessPoolService(tmp_path / "store", n_workers=1, registry=foreign)
        # Same directory (even via a distinct ArtifactStore object) is fine.
        shared = ModelRegistry(store=ArtifactStore(tmp_path / "store"))
        with ProcessPoolService(
            tmp_path / "store", n_workers=1, registry=shared
        ) as service:
            service.register("live", models[0])
            assert service.registry is shared

    def test_content_digest_survives_save_load_roundtrip(self, corpus, tmp_path):
        models, _, _ = corpus
        path = models[0].save(tmp_path / "artifact.npz", compress=False)
        assert ClusterModel.load(path).content_digest() == models[0].content_digest()
        assert (
            ClusterModel.load(path, mmap=True).content_digest()
            == models[0].content_digest()
        )


class TestProcessPoolService:
    def test_predict_matches_model_bit_for_bit(self, corpus, tmp_path):
        models, queries, expected = corpus
        with ProcessPoolService(tmp_path, n_workers=2) as service:
            service.register("live", models[0])
            np.testing.assert_array_equal(service.predict("live", queries), expected[0])
            # Micro-batch bookkeeping still ticks across the process boundary.
            assert service.n_requests_ == 1
            assert service.n_batches_ == 1

    def test_unknown_model_fails_fast(self, corpus, tmp_path):
        models, queries, _ = corpus
        with ProcessPoolService(tmp_path, n_workers=1) as service:
            service.register("live", models[0])
            with pytest.raises(KeyError, match="missing"):
                service.predict("missing", queries)

    def test_invalid_input_error_propagates_from_worker(self, corpus, tmp_path):
        models, _, _ = corpus
        with ProcessPoolService(tmp_path, n_workers=1) as service:
            service.register("live", models[0])
            with pytest.raises(ValueError):
                service.predict("live", np.zeros((5, 7)))  # wrong width
            # The worker survives a bad request and keeps serving.
            queries = np.random.default_rng(0).uniform(size=(50, 2))
            np.testing.assert_array_equal(
                service.predict("live", queries), models[0].predict(queries)
            )

    def test_swap_switches_served_version(self, corpus, tmp_path):
        models, queries, expected = corpus
        with ProcessPoolService(tmp_path, n_workers=2) as service:
            service.register("live", models[0])
            np.testing.assert_array_equal(service.predict("live", queries), expected[0])
            version = service.swap("live", models[1])
            assert version == "live@v1"
            # A predict enqueued after swap() returns always sees the new
            # version: the bind rides the same FIFO queues.
            np.testing.assert_array_equal(service.predict("live", queries), expected[1])
            np.testing.assert_array_equal(
                service.predict("live@v1", queries), expected[1]
            )

    def test_concurrent_callers_coalesce_and_match(self, corpus, tmp_path):
        models, queries, expected = corpus
        with ProcessPoolService(tmp_path, n_workers=2) as service:
            service.register("live", models[0])
            errors = []

            def caller():
                try:
                    for _ in range(10):
                        np.testing.assert_array_equal(
                            service.predict("live", queries), expected[0]
                        )
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [threading.Thread(target=caller) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert service.n_requests_ == 60
            # At least some requests rode along in a coalesced batch.
            assert service.n_batches_ <= service.n_requests_
            snapshot = service.telemetry.snapshot()
            assert snapshot["predict"]["live"]["rows"] == 60 * len(queries)

    def test_load_serves_artifact_from_disk(self, corpus, tmp_path):
        models, queries, expected = corpus
        path = models[1].save(tmp_path / "frozen.npz", compress=False)
        with ProcessPoolService(tmp_path / "store", n_workers=1) as service:
            service.load("live", path)
            np.testing.assert_array_equal(service.predict("live", queries), expected[1])


class TestCloseSemantics:
    def test_close_is_idempotent_and_raises_service_closed(self, corpus, tmp_path):
        models, queries, _ = corpus
        service = ProcessPoolService(tmp_path, n_workers=1)
        service.register("live", models[0])
        service.predict("live", queries)
        service.close()
        service.close()  # double-close must be a no-op
        assert service.closed
        with pytest.raises(ServiceClosed, match="closed"):
            service.predict("live", queries)
        with pytest.raises(ServiceClosed, match="closed"):
            service.submit("live", queries)

    def test_close_with_async_requests_in_flight_never_hangs(self, corpus, tmp_path):
        """Requests racing close() either resolve exactly or fail cleanly."""
        models, queries, expected = corpus
        service = ProcessPoolService(tmp_path, n_workers=2)
        service.register("live", models[0])
        outcomes = []

        async def main():
            async def one(index):
                try:
                    labels = await service.predict_async("live", queries)
                    outcomes.append(np.array_equal(labels, expected[0]))
                except (ServiceClosed, RuntimeError):
                    outcomes.append("rejected")

            tasks = [asyncio.ensure_future(one(i)) for i in range(12)]
            await asyncio.sleep(0.01)
            closer = asyncio.get_running_loop().run_in_executor(None, service.close)
            await asyncio.gather(*tasks)
            await closer

        asyncio.run(asyncio.wait_for(main(), timeout=30.0))
        assert service.closed
        assert len(outcomes) == 12  # nothing hung or vanished
        assert all(done is True or done == "rejected" for done in outcomes)

    def test_workers_are_gone_after_close(self, corpus, tmp_path):
        models, _, _ = corpus
        service = ProcessPoolService(tmp_path, n_workers=2)
        service.register("live", models[0])
        assert all(service.pool.alive())
        service.close()
        assert not any(service.pool.alive())


class TestSwapStorm:
    def test_swap_storm_never_fails_or_tears_across_processes(self, corpus, tmp_path):
        """Writer swaps every few ms; async readers through worker processes.

        Zero failed predicts, and every answer must equal one of the two
        registered artifacts' answers bit-for-bit -- a torn or missing model
        would produce something else.
        """
        models, queries, expected = corpus
        service = ProcessPoolService(
            tmp_path, n_workers=2, registry=ModelRegistry(max_versions=3)
        )
        service.register("live", models[0])
        stop = threading.Event()
        swaps = [0]

        def swapper():
            flip = 0
            # Bounded so a slow host cannot blow the version counter into
            # the tens of thousands while readers make progress.
            while not stop.is_set() and swaps[0] < 500:
                flip ^= 1
                service.swap("live", models[flip])
                swaps[0] += 1
                time.sleep(0.002)

        writer = threading.Thread(target=swapper)
        writer.start()
        try:
            async def main():
                results = await asyncio.gather(
                    *(service.predict_async("live", queries) for _ in range(120))
                )
                return list(results)

            results = asyncio.run(asyncio.wait_for(main(), timeout=60.0))
        finally:
            stop.set()
            writer.join()

        assert len(results) == 120  # zero failed or dropped predicts
        torn = [
            labels
            for labels in results
            if not any(np.array_equal(labels, want) for want in expected)
        ]
        assert torn == []
        assert swaps[0] >= 3  # the storm actually stormed
        assert all(service.pool.alive())
        snapshot = service.telemetry.snapshot()
        assert snapshot["swaps"]["count"] == swaps[0]
        assert snapshot["swaps"]["by_name"] == {"live": swaps[0]}
        service.close()


@pytest.mark.skipif(
    not hasattr(os, "sched_setaffinity"),
    reason="per-worker CPU pinning requires os.sched_setaffinity",
)
class TestWorkerPinning:
    def test_pin_workers_assigns_round_robin_cpus(self, tmp_path):
        from repro.serve.procpool import ProcessWorkerPool

        allowed = sorted(os.sched_getaffinity(0))
        pool = ProcessWorkerPool(tmp_path, 2, pin_workers=True)
        try:
            pinned = pool.pinned()
            assert set(pinned) == {0, 1}
            for index, cpu in pinned.items():
                assert cpu == allowed[index % len(allowed)]
                # The kernel agrees: the worker really is confined to its CPU.
                assert os.sched_getaffinity(pool.processes[index].pid) == {cpu}
        finally:
            pool.close()

    def test_pinning_off_by_default(self, tmp_path):
        from repro.serve.procpool import ProcessWorkerPool

        pool = ProcessWorkerPool(tmp_path, 2)
        try:
            assert pool.pinned() == {}
            assert pool.pinned_cpus == [None, None]
        finally:
            pool.close()

    def test_respawned_worker_is_repinned(self, tmp_path):
        import signal

        from repro.serve.procpool import ProcessWorkerPool

        pool = ProcessWorkerPool(tmp_path, 2, pin_workers=True)
        try:
            original = pool.pinned()[0]
            victim = pool.processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while victim.is_alive() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert not victim.is_alive(), "SIGKILL never landed"
            assert pool.respawn(0) == 1
            assert pool.pinned()[0] == original
            assert os.sched_getaffinity(pool.processes[0].pid) == {original}
        finally:
            pool.close()

    def test_service_surfaces_pins_in_telemetry_and_still_serves(
        self, corpus, tmp_path
    ):
        models, queries, expected = corpus
        service = ProcessPoolService(tmp_path, n_workers=2, pin_workers=True)
        try:
            workers = service.telemetry.snapshot()["workers"]
            assert set(workers["pinned"]) == {0, 1}
            assert workers["pinned"] == service.pool.pinned()
            service.register("pinned-model", models[0])
            np.testing.assert_array_equal(
                service.predict("pinned-model", queries), expected[0]
            )
        finally:
            service.close()
