"""Tests for repro.wavelets.thresholding."""

import numpy as np
import pytest

from repro.wavelets.ndwt import dwtn
from repro.wavelets.thresholding import (
    LEVEL_MODES,
    THRESHOLD_POLICY_NAMES,
    LevelPolicy,
    hard_threshold,
    level_thresholds,
    mad_sigma,
    percentile_threshold,
    soft_threshold,
    threshold_coefficients,
    threshold_levels,
    universal_threshold,
)


class TestHardThreshold:
    def test_zeros_small_values(self):
        result = hard_threshold([0.1, -0.2, 3.0, -4.0], 1.0)
        np.testing.assert_allclose(result, [0.0, 0.0, 3.0, -4.0])

    def test_keeps_values_at_threshold(self):
        np.testing.assert_allclose(hard_threshold([1.0, -1.0], 1.0), [1.0, -1.0])

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            hard_threshold([1.0], -0.5)

    def test_does_not_modify_input(self):
        values = np.array([0.1, 5.0])
        hard_threshold(values, 1.0)
        np.testing.assert_allclose(values, [0.1, 5.0])


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        result = soft_threshold([3.0, -3.0, 0.5], 1.0)
        np.testing.assert_allclose(result, [2.0, -2.0, 0.0])

    def test_zero_threshold_is_identity(self):
        values = [1.0, -2.0, 0.3]
        np.testing.assert_allclose(soft_threshold(values, 0.0), values)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            soft_threshold([1.0], -1.0)


class TestNanThresholdRejected:
    """A NaN cut keeps every coefficient (all comparisons false), so both
    rules must refuse it before touching the data."""

    def test_hard_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            hard_threshold([1.0, 2.0], float("nan"))

    def test_soft_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            soft_threshold([1.0, 2.0], float("nan"))

    def test_validation_runs_before_array_conversion(self):
        # An invalid threshold must raise its own error even when the values
        # argument is itself garbage -- validate-first semantics.
        with pytest.raises(ValueError, match="non-negative"):
            hard_threshold(object(), -1.0)


class TestMadSigma:
    def test_matches_mad_scaling_for_gaussian_noise(self):
        rng = np.random.default_rng(7)
        sigma = mad_sigma(rng.normal(scale=2.0, size=20_000))
        assert sigma == pytest.approx(2.0, rel=0.05)

    def test_half_identical_values_fall_back_to_std(self):
        # MAD collapses (half the entries equal the median) but the spread
        # is real; the estimate must come from the std, not silently be 0.
        values = np.array([1.0] * 8 + [5.0, -3.0, 9.0, 2.5])
        assert mad_sigma(values) == pytest.approx(float(np.std(values)))

    def test_constant_input_rejected(self):
        with pytest.raises(ValueError, match="constant"):
            mad_sigma(np.full(32, 7.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mad_sigma([])


class TestUniversalThreshold:
    def test_scales_with_noise_level(self):
        rng = np.random.default_rng(0)
        small = universal_threshold(rng.normal(scale=0.1, size=1000))
        large = universal_threshold(rng.normal(scale=1.0, size=1000))
        assert large > 5 * small

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            universal_threshold([])

    def test_positive_for_random_input(self):
        rng = np.random.default_rng(1)
        assert universal_threshold(rng.standard_normal(256)) > 0

    def test_half_identical_values_give_positive_threshold(self):
        # Regression: a majority-at-the-median band used to collapse the MAD
        # to zero, making the universal threshold 0.0 -- a silent no-op cut.
        values = np.array([2.0] * 10 + [40.0, 35.0, -20.0, 55.0, 12.0, 8.0])
        assert universal_threshold(values) > 0

    def test_constant_input_rejected(self):
        # All-identical input has no estimable noise scale; the old code
        # returned 0.0 here too, which hid the degenerate band from callers.
        with pytest.raises(ValueError, match="constant"):
            universal_threshold(np.ones(64))


class TestLevelPolicy:
    def test_aliases_mean_global_application(self):
        assert LevelPolicy.parse("hard") == LevelPolicy(rule="hard", mode="global")
        assert LevelPolicy.parse("soft") == LevelPolicy(rule="soft", mode="global")

    @pytest.mark.parametrize("name", THRESHOLD_POLICY_NAMES)
    def test_canonical_names_round_trip(self, name):
        assert LevelPolicy.parse(name).name == name

    def test_instance_passes_through(self):
        policy = LevelPolicy(rule="soft", mode="per-level")
        assert LevelPolicy.parse(policy) is policy

    def test_unknown_spec_lists_options(self):
        with pytest.raises(ValueError, match="global-hard"):
            LevelPolicy.parse("medium")

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError, match="rule"):
            LevelPolicy(rule="garrote")
        with pytest.raises(ValueError, match="mode"):
            LevelPolicy(mode="sometimes")

    def test_only_global_hard_skips_denoising(self):
        denoising = {
            name: LevelPolicy.parse(name).denoises for name in THRESHOLD_POLICY_NAMES
        }
        assert denoising == {
            "global-hard": False,
            "global-soft": True,
            "per-level-hard": True,
            "per-level-soft": True,
        }


class TestLevelThresholds:
    def test_per_level_uses_each_bands_own_scale(self):
        rng = np.random.default_rng(3)
        quiet = rng.normal(scale=0.1, size=512)
        loud = rng.normal(scale=5.0, size=512)
        cuts = level_thresholds([quiet, loud], mode="per-level")
        assert cuts[1] > 10 * cuts[0]
        assert cuts[0] == pytest.approx(universal_threshold(quiet))
        assert cuts[1] == pytest.approx(universal_threshold(loud))

    def test_global_pools_one_sigma(self):
        rng = np.random.default_rng(4)
        bands = [rng.normal(size=256), rng.normal(size=256)]
        pooled = mad_sigma(np.concatenate(bands))
        cuts = level_thresholds(bands, mode="global")
        for cut, band in zip(cuts, bands):
            expected = pooled * np.sqrt(2.0 * np.log(band.size))
            assert cut == pytest.approx(expected)

    def test_modes_agree_when_bands_are_identical(self):
        # The median and MAD of k repeated copies of a band equal the band's
        # own, so pooling changes nothing -- exact equality, not approximate.
        rng = np.random.default_rng(5)
        band = rng.normal(size=333)
        bands = [band, band.copy(), band.copy()]
        assert level_thresholds(bands, mode="global") == level_thresholds(
            bands, mode="per-level"
        )

    def test_degenerate_band_gets_noop_cut(self):
        rng = np.random.default_rng(6)
        cuts = level_thresholds([np.ones(16), rng.normal(size=64)], mode="per-level")
        assert cuts[0] == 0.0
        assert cuts[1] > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            level_thresholds([np.ones(4)], mode="adaptive")


class TestThresholdLevels:
    def test_applies_rule_per_band(self):
        bands = [np.array([0.5, 3.0]), np.array([-0.5, -3.0])]
        hard = threshold_levels(bands, "per-level-hard", thresholds=[1.0, 1.0])
        soft = threshold_levels(bands, "per-level-soft", thresholds=[1.0, 1.0])
        np.testing.assert_allclose(hard[0], [0.0, 3.0])
        np.testing.assert_allclose(hard[1], [0.0, -3.0])
        np.testing.assert_allclose(soft[0], [0.0, 2.0])
        np.testing.assert_allclose(soft[1], [0.0, -2.0])

    def test_threshold_count_must_match_band_count(self):
        with pytest.raises(ValueError, match="bands"):
            threshold_levels([np.ones(4)], "hard", thresholds=[1.0, 2.0])

    def test_default_thresholds_follow_policy_mode(self):
        rng = np.random.default_rng(8)
        bands = [rng.normal(scale=0.1, size=256), rng.normal(scale=5.0, size=256)]
        cuts = level_thresholds(bands, mode="per-level")
        expected = [hard_threshold(band, cut) for band, cut in zip(bands, cuts)]
        result = threshold_levels(bands, "per-level-hard")
        for got, want in zip(result, expected):
            np.testing.assert_array_equal(got, want)


class TestGoldenValues:
    """Hardcoded expected outputs pinning the numerical contract.

    Any change to the sigma estimate, the sqrt(2 ln n) factor or the shrink
    arithmetic shows up here as an exact mismatch, independent of the
    property suite's generated examples.
    """

    BAND = np.array([0.5, -1.25, 2.0, -0.75, 3.5, 0.25, -2.5, 1.0])

    def test_mad_sigma_golden(self):
        assert mad_sigma(self.BAND) == pytest.approx(2.038547071905115, abs=1e-12)

    def test_universal_threshold_golden(self):
        assert universal_threshold(self.BAND) == pytest.approx(
            4.157278314253855, abs=1e-12
        )

    def test_hard_threshold_golden(self):
        np.testing.assert_allclose(
            hard_threshold(self.BAND, 1.0),
            [0.0, -1.25, 2.0, 0.0, 3.5, 0.0, -2.5, 1.0],
        )

    def test_soft_threshold_golden(self):
        np.testing.assert_allclose(
            soft_threshold(self.BAND, 1.0),
            [0.0, -0.25, 1.0, 0.0, 2.5, 0.0, -1.5, 0.0],
        )

    def test_level_thresholds_golden(self):
        quiet = np.array([0.1, -0.2, 0.15, -0.05, 0.3, -0.25])
        loud = np.array([4.0, -6.0, 2.0, -8.0, 5.0, -3.0])
        np.testing.assert_allclose(
            level_thresholds([quiet, loud], mode="per-level"),
            [0.49114637916137577, 14.032753690325022],
            atol=1e-12,
        )
        np.testing.assert_allclose(
            level_thresholds([quiet, loud], mode="global"),
            [3.15736958032313, 3.15736958032313],
            atol=1e-12,
        )


class TestPercentileThreshold:
    def test_median_of_absolute_values(self):
        assert percentile_threshold([-4.0, -2.0, 1.0, 3.0, 5.0], 50.0) == pytest.approx(3.0)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile_threshold([1.0], 150.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_threshold([], 50.0)


class TestThresholdCoefficients:
    def test_details_are_thresholded_approximation_kept(self):
        rng = np.random.default_rng(2)
        bands = dwtn(rng.standard_normal((16, 16)), "haar")
        result = threshold_coefficients(bands, threshold=10.0, rule="hard")
        np.testing.assert_allclose(result["aa"], bands["aa"])
        assert np.count_nonzero(result["dd"]) < np.count_nonzero(bands["dd"]) or np.count_nonzero(bands["dd"]) == 0

    def test_approximation_can_also_be_thresholded(self):
        bands = {"aa": np.array([[0.1, 5.0]]), "ad": np.array([[0.1, 5.0]])}
        result = threshold_coefficients(bands, threshold=1.0, keep_approximation=False)
        assert result["aa"][0, 0] == 0.0

    def test_soft_rule_applied(self):
        bands = {"ad": np.array([[3.0]]), "aa": np.array([[3.0]])}
        result = threshold_coefficients(bands, threshold=1.0, rule="soft")
        assert result["ad"][0, 0] == pytest.approx(2.0)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="rule"):
            threshold_coefficients({"aa": np.zeros((2, 2))}, 1.0, rule="garrote")

    def test_empty_detail_bands_pass_through(self):
        bands = {
            "aa": np.empty((0, 4)),
            "ad": np.empty((0, 4)),
            "dd": np.empty((0, 0)),
        }
        result = threshold_coefficients(bands, threshold=1.0, rule="soft")
        for key, band in bands.items():
            assert result[key].shape == band.shape
            assert result[key].dtype == np.float64

    def test_keep_approximation_false_thresholds_every_band(self):
        bands = {"aa": np.array([[0.4, 2.0]]), "da": np.array([[0.4, 2.0]])}
        result = threshold_coefficients(
            bands, threshold=1.0, rule="soft", keep_approximation=False
        )
        np.testing.assert_allclose(result["aa"], [[0.0, 1.0]])
        np.testing.assert_allclose(result["da"], [[0.0, 1.0]])

    def test_non_contiguous_views_match_contiguous_copies(self):
        # Strided views (reversed, every-other-column) must threshold
        # bit-identically to their contiguous copies.
        rng = np.random.default_rng(9)
        dense = rng.standard_normal((8, 8))
        views = {
            "aa": dense[::-1],
            "ad": dense[:, ::2],
            "da": dense.T,
        }
        contiguous = {key: np.ascontiguousarray(band) for key, band in views.items()}
        for rule in ("hard", "soft"):
            from_views = threshold_coefficients(
                views, threshold=0.7, rule=rule, keep_approximation=False
            )
            from_copies = threshold_coefficients(
                contiguous, threshold=0.7, rule=rule, keep_approximation=False
            )
            for key in views:
                assert not views[key].flags["C_CONTIGUOUS"]
                np.testing.assert_array_equal(from_views[key], from_copies[key])
