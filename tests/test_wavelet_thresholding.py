"""Tests for repro.wavelets.thresholding."""

import numpy as np
import pytest

from repro.wavelets.ndwt import dwtn
from repro.wavelets.thresholding import (
    hard_threshold,
    percentile_threshold,
    soft_threshold,
    threshold_coefficients,
    universal_threshold,
)


class TestHardThreshold:
    def test_zeros_small_values(self):
        result = hard_threshold([0.1, -0.2, 3.0, -4.0], 1.0)
        np.testing.assert_allclose(result, [0.0, 0.0, 3.0, -4.0])

    def test_keeps_values_at_threshold(self):
        np.testing.assert_allclose(hard_threshold([1.0, -1.0], 1.0), [1.0, -1.0])

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            hard_threshold([1.0], -0.5)

    def test_does_not_modify_input(self):
        values = np.array([0.1, 5.0])
        hard_threshold(values, 1.0)
        np.testing.assert_allclose(values, [0.1, 5.0])


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        result = soft_threshold([3.0, -3.0, 0.5], 1.0)
        np.testing.assert_allclose(result, [2.0, -2.0, 0.0])

    def test_zero_threshold_is_identity(self):
        values = [1.0, -2.0, 0.3]
        np.testing.assert_allclose(soft_threshold(values, 0.0), values)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            soft_threshold([1.0], -1.0)


class TestUniversalThreshold:
    def test_scales_with_noise_level(self):
        rng = np.random.default_rng(0)
        small = universal_threshold(rng.normal(scale=0.1, size=1000))
        large = universal_threshold(rng.normal(scale=1.0, size=1000))
        assert large > 5 * small

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            universal_threshold([])

    def test_positive_for_random_input(self):
        rng = np.random.default_rng(1)
        assert universal_threshold(rng.standard_normal(256)) > 0


class TestPercentileThreshold:
    def test_median_of_absolute_values(self):
        assert percentile_threshold([-4.0, -2.0, 1.0, 3.0, 5.0], 50.0) == pytest.approx(3.0)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile_threshold([1.0], 150.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_threshold([], 50.0)


class TestThresholdCoefficients:
    def test_details_are_thresholded_approximation_kept(self):
        rng = np.random.default_rng(2)
        bands = dwtn(rng.standard_normal((16, 16)), "haar")
        result = threshold_coefficients(bands, threshold=10.0, rule="hard")
        np.testing.assert_allclose(result["aa"], bands["aa"])
        assert np.count_nonzero(result["dd"]) < np.count_nonzero(bands["dd"]) or np.count_nonzero(bands["dd"]) == 0

    def test_approximation_can_also_be_thresholded(self):
        bands = {"aa": np.array([[0.1, 5.0]]), "ad": np.array([[0.1, 5.0]])}
        result = threshold_coefficients(bands, threshold=1.0, keep_approximation=False)
        assert result["aa"][0, 0] == 0.0

    def test_soft_rule_applied(self):
        bands = {"ad": np.array([[3.0]]), "aa": np.array([[3.0]])}
        result = threshold_coefficients(bands, threshold=1.0, rule="soft")
        assert result["ad"][0, 0] == pytest.approx(2.0)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="rule"):
            threshold_coefficients({"aa": np.zeros((2, 2))}, 1.0, rule="garrote")
