"""Integration tests for the threshold-policy tuning axis.

The level-dependent MAD thresholding threads one axis through the whole
stack: ``run_grid_pipeline(threshold=...)`` -> ``AdaWave(threshold=...)`` ->
``tune_pyramid`` (``threshold="tune"`` sweeps {hard, soft} x {global,
per-level}) -> the stream control plane's re-tunes -> ``ClusterModel``
metadata.  These tests pin the axis end to end, including the acceptance
bar: on seeded high-noise suites the sweep's pick must never be worse than
the fixed global-hard default on noise-aware AMI.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.core.pipeline import run_grid_pipeline
from repro.datasets.synthetic import noise_sweep_dataset
from repro.metrics import ami_on_true_clusters
from repro.serve import ClusteringService, ClusterModel
from repro.stream import DriftMonitor, StreamController, StreamSketch
from repro.tune import DEFAULT_THRESHOLD_SWEEP
from repro.tune.scoring import mass_retention
from repro.wavelets.thresholding import THRESHOLD_POLICY_NAMES, LevelPolicy

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


@pytest.fixture(scope="module")
def noisy():
    return noise_sweep_dataset(noise_fraction=0.85, n_per_cluster=300, seed=0)


class TestPolicyFits:
    @pytest.mark.parametrize("name", THRESHOLD_POLICY_NAMES)
    def test_every_policy_fits_and_records_provenance(self, noisy, name):
        est = AdaWave(scale=64, threshold=name).fit(noisy.points)
        assert est.threshold_method_ == name
        assert est.wavelet_ == "bior2.2"
        assert len(est.labels_) == len(noisy.points)

    def test_aliases_resolve_to_global_policies(self, noisy):
        est = AdaWave(scale=64, threshold="soft").fit(noisy.points)
        assert est.threshold_method_ == "global-soft"

    def test_default_equals_explicit_global_hard(self, noisy):
        # global-hard adds no wavelet-domain pass -- the elbow *is* the
        # global hard cut -- so the default path must stay bit-identical.
        plain = AdaWave(scale=64).fit(noisy.points)
        explicit = AdaWave(scale=64, threshold="global-hard").fit(noisy.points)
        np.testing.assert_array_equal(plain.labels_, explicit.labels_)
        assert plain.threshold_ == explicit.threshold_

    def test_policy_instance_accepted(self, noisy):
        policy = LevelPolicy(rule="soft", mode="per-level")
        est = AdaWave(scale=64, threshold=policy).fit(noisy.points)
        assert est.threshold_method_ == "per-level-soft"

    def test_unknown_policy_rejected_at_construction(self):
        with pytest.raises(ValueError, match="threshold"):
            AdaWave(threshold="medium")


class TestPipelinePolicies:
    def test_per_level_soft_equals_global_soft_at_level_one(self, noisy):
        # A one-level decomposition has a single approximation band, so
        # estimating sigma per level and globally is the same estimate.
        grid = AdaWave(scale=64).fit(noisy.points).result_.quantization.grid
        global_ = run_grid_pipeline(grid, level=1, threshold="global-soft")
        per_level = run_grid_pipeline(grid, level=1, threshold="per-level-soft")
        np.testing.assert_array_equal(global_.cell_coords, per_level.cell_coords)
        np.testing.assert_array_equal(global_.cell_labels, per_level.cell_labels)

    def test_pipeline_records_policy_provenance(self, noisy):
        grid = AdaWave(scale=64).fit(noisy.points).result_.quantization.grid
        result = run_grid_pipeline(grid, threshold="per-level-hard")
        assert result.threshold_policy == "per-level-hard"
        assert result.wavelet == "bior2.2"


class TestTuneSweep:
    def test_sweep_covers_every_policy(self, noisy):
        est = AdaWave(threshold="tune").fit(noisy.points)
        table = est.tune_result_.table()
        assert {row["threshold_method"] for row in table} == set(
            THRESHOLD_POLICY_NAMES
        )
        assert sum(row["selected"] for row in table) == 1
        assert est.threshold_method_ == est.tune_result_.threshold_method

    def test_table_rows_carry_axis_columns(self, noisy):
        est = AdaWave(threshold="tune").fit(noisy.points)
        row = est.tune_result_.table()[0]
        for key in ("wavelet", "threshold_method", "retention", "score"):
            assert key in row

    def test_default_policy_sweeps_first(self, noisy):
        # Jobs are ordered with the default policy first so an exact score
        # tie resolves to the paper's pipeline, not an arbitrary variant.
        assert DEFAULT_THRESHOLD_SWEEP[0] == "hard"
        est = AdaWave(threshold="tune").fit(noisy.points)
        assert est.tune_result_.table()[0]["threshold_method"] == "global-hard"

    def test_provenance_records_chosen_policy(self, noisy):
        est = AdaWave(threshold="tune").fit(noisy.points)
        provenance = est.tune_result_.provenance()
        assert provenance["chosen_threshold_method"] in THRESHOLD_POLICY_NAMES
        assert provenance["chosen_wavelet"] == "bior2.2"

    def test_non_pow2_scale_still_tunes_threshold(self, noisy):
        # A fixed non-dyadic scale pins the resolution (trivial pyramid) while
        # the threshold axis still sweeps.
        est = AdaWave(scale=96, threshold="tune").fit(noisy.points)
        assert est.threshold_method_ in THRESHOLD_POLICY_NAMES
        assert est.n_clusters_ >= 1

    def test_explicit_policy_tuple_not_supported(self, noisy):
        with pytest.raises(ValueError, match="threshold"):
            AdaWave(threshold=("hard", "banana")).fit(noisy.points)


class TestMassRetention:
    @staticmethod
    def _candidate(noise_fraction, factor=1, level=1, wavelet="bior2.2"):
        return SimpleNamespace(
            factor=factor, level=level, wavelet=wavelet, noise_fraction=noise_fraction
        )

    def test_singleton_groups_are_untouched(self):
        candidates = [self._candidate(0.3, factor=1), self._candidate(0.9, factor=2)]
        assert mass_retention(candidates) == [1.0, 1.0]

    def test_aggressive_policy_is_scaled_by_kept_mass(self):
        conservative = self._candidate(0.80)
        aggressive = self._candidate(0.90)
        factors = mass_retention([conservative, aggressive])
        assert factors[0] == 1.0
        assert factors[1] == pytest.approx(0.10 / 0.20)

    def test_groups_split_by_resolution_level_and_wavelet(self):
        candidates = [
            self._candidate(0.80, factor=1),
            self._candidate(0.90, factor=2),
            self._candidate(0.80, level=2),
            self._candidate(0.90, wavelet="haar"),
        ]
        assert mass_retention(candidates) == [1.0, 1.0, 1.0, 1.0]

    def test_all_noise_group_degrades_to_one(self):
        candidates = [self._candidate(1.0), self._candidate(1.0)]
        assert mass_retention(candidates) == [1.0, 1.0]


class TestAcceptanceAMI:
    @pytest.mark.parametrize("noise,seed", [(0.85, 0), (0.9, 1)])
    def test_tuned_pick_never_loses_to_default_on_high_noise(self, noise, seed):
        # The acceptance bar: sweeping {hard, soft} x {global, per-level MAD}
        # must pick a method whose noise-aware AMI is at least the fixed
        # global-hard default's on seeded high-noise suites.
        ds = noise_sweep_dataset(
            noise_fraction=noise, n_per_cluster=300, seed=seed
        )
        base = AdaWave(threshold="hard").fit(ds.points)
        tuned = AdaWave(threshold="tune").fit(ds.points)
        ami_base = ami_on_true_clusters(ds.labels, base.labels_)
        ami_tuned = ami_on_true_clusters(ds.labels, tuned.labels_)
        assert ami_tuned >= ami_base, (
            f"tuned pick {tuned.threshold_method_!r} scored AMI "
            f"{ami_tuned:.3f} < default's {ami_base:.3f}"
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("noise", [0.75, 0.85, 0.9])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_acceptance_full_suite(self, noise, seed):
        ds = noise_sweep_dataset(
            noise_fraction=noise, n_per_cluster=800, seed=seed
        )
        base = AdaWave(threshold="hard").fit(ds.points)
        tuned = AdaWave(threshold="tune").fit(ds.points)
        assert ami_on_true_clusters(ds.labels, tuned.labels_) >= ami_on_true_clusters(
            ds.labels, base.labels_
        )


class TestModelMetadata:
    def test_export_records_canonical_policy_and_selector(self, noisy):
        model = AdaWave(scale=64, threshold="per-level-soft").fit(
            noisy.points
        ).export_model()
        assert model.metadata["threshold_method"] == "per-level-soft"
        assert model.metadata["threshold_selector"] == "auto"
        assert model.metadata["threshold_rule"] in (
            "segments", "angle", "distance", "none",
        )

    def test_tuned_export_resolves_sweep_winner(self, noisy):
        est = AdaWave(threshold="tune").fit(noisy.points)
        model = est.export_model()
        assert model.metadata["threshold_method"] == est.threshold_method_
        assert model.metadata["threshold_method"] in THRESHOLD_POLICY_NAMES

    def test_round_trip_preserves_policy_metadata(self, noisy, tmp_path):
        est = AdaWave(scale=64, threshold="global-soft").fit(noisy.points)
        path = est.export_model().save(tmp_path / "model.npz")
        loaded = ClusterModel.load(path)
        assert loaded.metadata["threshold_method"] == "global-soft"
        np.testing.assert_array_equal(
            loaded.predict(noisy.points), est.labels_
        )

    def test_load_rejects_unknown_policy(self, noisy, tmp_path):
        model = AdaWave(scale=64).fit(noisy.points).export_model()
        model.metadata["threshold_method"] = "quantum-garrote"
        path = model.save(tmp_path / "tampered.npz")
        with pytest.raises(ValueError, match="threshold_method"):
            ClusterModel.load(path)

    def test_load_allows_artifacts_without_policy_metadata(self, noisy, tmp_path):
        # Artifacts written before the axis existed carry no key; they must
        # keep loading.
        model = AdaWave(scale=64).fit(noisy.points).export_model()
        del model.metadata["threshold_method"]
        path = model.save(tmp_path / "legacy.npz")
        assert ClusterModel.load(path).metadata.get("threshold_method") is None


class TestStreamThresholdAxis:
    def test_controller_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="threshold"):
            StreamController("bad", BOUNDS, 2, threshold="medium")

    def test_retuned_model_publishes_policy_provenance(self, noisy):
        service = ClusteringService()
        controller = StreamController(
            "live",
            BOUNDS,
            2,
            service=service,
            threshold="tune",
            warmup=len(noisy.points) // 2,
            check_every=1,
        )
        try:
            rng = np.random.default_rng(3)
            permutation = rng.permutation(len(noisy.points))
            for batch in np.array_split(permutation, 4):
                controller.ingest(noisy.points[batch])
            assert controller.model_ is not None
            metadata = controller.model_.metadata
            assert metadata["threshold_method"] in THRESHOLD_POLICY_NAMES
            assert metadata["wavelet"] == "bior2.2"
            assert service.registry.get("live") is controller.model_
        finally:
            controller.close()
            service.close()

    def test_drift_monitor_resolves_tune_spec_from_metadata(self, noisy):
        sketch = StreamSketch(BOUNDS, 256, 2)
        sketch.ingest(noisy.points)
        est = AdaWave(threshold="tune", bounds=BOUNDS).fit(noisy.points)
        monitor = DriftMonitor(threshold="tune")
        monitor.rebase(est.export_model(), sketch)
        report = monitor.assess(sketch)
        # Same data the model was tuned on: the re-fit under the resolved
        # policy explains it, so no drift is flagged.
        assert not report.drifted
