"""Tests for repro.wavelets.ndwt: separable multi-dimensional transforms."""

import numpy as np
import pytest

from repro.wavelets.ndwt import dwt2, dwtn, idwt2, idwtn, smooth_nd


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestDwtn:
    def test_2d_produces_four_subbands(self, rng):
        bands = dwtn(rng.standard_normal((16, 16)), "haar")
        assert set(bands) == {"aa", "ad", "da", "dd"}
        assert all(band.shape == (8, 8) for band in bands.values())

    def test_3d_produces_eight_subbands(self, rng):
        bands = dwtn(rng.standard_normal((8, 8, 8)), "haar")
        assert len(bands) == 8
        assert all(band.shape == (4, 4, 4) for band in bands.values())

    def test_roundtrip_2d(self, rng):
        array = rng.standard_normal((16, 12))
        bands = dwtn(array, "bior2.2")
        reconstructed = idwtn(bands, "bior2.2", output_shape=array.shape)
        np.testing.assert_allclose(reconstructed, array, atol=1e-10)

    def test_roundtrip_3d(self, rng):
        array = rng.standard_normal((8, 6, 10))
        bands = dwtn(array, "db2")
        reconstructed = idwtn(bands, "db2", output_shape=array.shape)
        np.testing.assert_allclose(reconstructed, array, atol=1e-10)

    def test_energy_preserved_orthogonal(self, rng):
        array = rng.standard_normal((16, 16))
        bands = dwtn(array, "db4")
        total = sum(np.sum(band**2) for band in bands.values())
        assert total == pytest.approx(np.sum(array**2), rel=1e-10)

    def test_constant_array_details_are_zero(self):
        bands = dwtn(np.full((8, 8), 3.0), "haar")
        for key, band in bands.items():
            if "d" in key:
                np.testing.assert_allclose(band, 0.0, atol=1e-12)

    def test_missing_subbands_treated_as_zero(self, rng):
        array = rng.standard_normal((16, 16))
        bands = dwtn(array, "haar")
        approx_only = idwtn({"aa": bands["aa"]}, "haar", output_shape=array.shape)
        assert approx_only.shape == array.shape
        # Approximation-only reconstruction preserves the mean.
        assert approx_only.mean() == pytest.approx(array.mean(), abs=1e-10)

    def test_invalid_key_rejected(self, rng):
        with pytest.raises(ValueError, match="invalid subband"):
            idwtn({"ax": np.zeros((4, 4))}, "haar")

    def test_empty_dict_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            idwtn({}, "haar")


class TestDwt2:
    def test_matches_dwtn(self, rng):
        array = rng.standard_normal((12, 12))
        approx, (horizontal, vertical, diagonal) = dwt2(array, "haar")
        bands = dwtn(array, "haar")
        np.testing.assert_allclose(approx, bands["aa"])
        np.testing.assert_allclose(horizontal, bands["ad"])
        np.testing.assert_allclose(vertical, bands["da"])
        np.testing.assert_allclose(diagonal, bands["dd"])

    def test_roundtrip(self, rng):
        array = rng.standard_normal((10, 14))
        approx, details = dwt2(array, "bior2.2")
        reconstructed = idwt2(approx, details, "bior2.2", output_shape=array.shape)
        np.testing.assert_allclose(reconstructed, array, atol=1e-10)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            dwt2(np.ones(16), "haar")

    def test_idwt2_with_none_details(self, rng):
        array = rng.standard_normal((8, 8))
        approx, _ = dwt2(array, "haar")
        smoothed = idwt2(approx, (None, None, None), "haar", output_shape=(8, 8))
        assert smoothed.shape == (8, 8)


class TestSmoothNd:
    def test_shape_preserved(self, rng):
        array = rng.standard_normal((16, 16))
        assert smooth_nd(array, "bior2.2", level=2).shape == (16, 16)

    def test_denoises_impulse_noise(self, rng):
        base = np.zeros((32, 32))
        base[10:20, 10:20] = 10.0
        noisy = base + rng.normal(scale=0.5, size=base.shape)
        smoothed = smooth_nd(noisy, "bior2.2", level=1)
        # The dense block is preserved while high-frequency noise shrinks.
        assert smoothed[12:18, 12:18].mean() == pytest.approx(10.0, abs=1.0)
        outside_variance = smoothed[:5, :5].var()
        assert outside_variance < noisy[:5, :5].var()

    def test_mass_preserved(self):
        array = np.zeros((16, 16))
        array[4:8, 4:8] = 2.0
        smoothed = smooth_nd(array, "haar", level=1)
        assert smoothed.sum() == pytest.approx(array.sum(), rel=1e-9)

    def test_invalid_level(self):
        with pytest.raises(ValueError, match="level"):
            smooth_nd(np.ones((8, 8)), "haar", level=0)
