"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    as_feature_matrix,
    check_array,
    check_labels,
    check_positive_int,
    check_probability,
    check_random_state,
    column_or_row,
)


class TestCheckArray:
    def test_accepts_list_of_rows(self):
        result = check_array([[1, 2], [3, 4]])
        assert result.shape == (2, 2)
        assert result.dtype == np.float64

    def test_rejects_1d_when_2d_required(self):
        with pytest.raises(ValueError, match="2-D"):
            check_array([1.0, 2.0, 3.0])

    def test_allows_1d_when_not_required(self):
        result = check_array([1.0, 2.0], ensure_2d=False)
        assert result.shape == (2,)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="at most 2-D"):
            check_array(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_array([[np.inf, 1.0]])

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValueError, match="empty"):
            check_array(np.empty((0, 2)))

    def test_allows_empty_when_requested(self):
        result = check_array(np.empty((0, 2)), allow_empty=True)
        assert result.shape == (0, 2)

    def test_output_is_contiguous(self):
        strided = np.asfortranarray(np.arange(12, dtype=float).reshape(3, 4))
        assert check_array(strided).flags["C_CONTIGUOUS"]


class TestCheckLabels:
    def test_basic(self):
        labels = check_labels([0, 1, 1, -1])
        assert labels.dtype == np.int64
        assert labels.tolist() == [0, 1, 1, -1]

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            check_labels([0, 1], n_samples=3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_labels([[0, 1]])

    def test_rejects_fractional(self):
        with pytest.raises(ValueError, match="integer"):
            check_labels([0.5, 1.0])

    def test_accepts_integer_valued_floats(self):
        assert check_labels([0.0, 1.0, 2.0]).tolist() == [0, 1, 2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_labels([])


class TestScalarValidators:
    def test_positive_int_passes(self):
        assert check_positive_int(5, name="x") == 5

    def test_positive_int_respects_minimum(self):
        with pytest.raises(ValueError, match=">= 2"):
            check_positive_int(1, name="x", minimum=2)

    def test_positive_int_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, name="x")

    def test_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, name="x")

    def test_probability_bounds(self):
        assert check_probability(0.0, name="p") == 0.0
        assert check_probability(1.0, name="p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.2, name="p")

    def test_probability_exclusive(self):
        with pytest.raises(ValueError):
            check_probability(0.0, name="p", inclusive=False)

    def test_probability_rejects_non_number(self):
        with pytest.raises(TypeError):
            check_probability("0.5", name="p")


class TestRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        first = check_random_state(42).standard_normal(5)
        second = check_random_state(42).standard_normal(5)
        np.testing.assert_array_equal(first, second)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert check_random_state(generator) is generator

    def test_legacy_randomstate_accepted(self):
        legacy = np.random.RandomState(0)
        assert isinstance(check_random_state(legacy), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            check_random_state("seed")


class TestHelpers:
    def test_as_feature_matrix_promotes_1d(self):
        assert as_feature_matrix([1.0, 2.0, 3.0]).shape == (3, 1)

    def test_column_or_row_broadcast_scalar(self):
        np.testing.assert_array_equal(column_or_row(2.0, 3, name="v"), [2.0, 2.0, 2.0])

    def test_column_or_row_length_check(self):
        with pytest.raises(ValueError):
            column_or_row([1.0, 2.0], 3, name="v")
