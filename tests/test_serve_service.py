"""ModelRegistry and ClusteringService: concurrency and micro-batching.

The acceptance bar: a service hosting several named models must return
labels identical to direct ``ClusterModel.predict`` calls under at least 8
threads of mixed-model traffic, with registration swaps staying atomic.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.serve import ClusterModel, ClusteringService, ModelRegistry


@pytest.fixture(scope="module")
def corpus():
    """Three differently-shaped datasets and their frozen models."""
    rng = np.random.default_rng(11)
    datasets = {}
    models = {}
    for index, name in enumerate(["alpha", "beta", "gamma"]):
        centers = rng.uniform(0.2, 0.8, size=(2 + index, 2))
        blobs = [
            np.clip(rng.normal(c, 0.03, size=(500, 2)), 0.0, 1.0) for c in centers
        ]
        noise = rng.uniform(size=(1500, 2))
        X = np.vstack(blobs + [noise])
        datasets[name] = X
        models[name] = AdaWave(scale=64).fit(X).export_model()
    return datasets, models


class TestModelRegistry:
    def test_register_get_roundtrip(self, corpus):
        _, models = corpus
        registry = ModelRegistry()
        registry.register("alpha", models["alpha"])
        assert registry.get("alpha") is models["alpha"]
        assert "alpha" in registry
        assert len(registry) == 1
        assert registry.names() == ["alpha"]

    def test_unknown_name_lists_known(self, corpus):
        _, models = corpus
        registry = ModelRegistry()
        registry.register("alpha", models["alpha"])
        with pytest.raises(KeyError, match="alpha"):
            registry.get("missing")

    def test_overwrite_control(self, corpus):
        _, models = corpus
        registry = ModelRegistry()
        registry.register("m", models["alpha"])
        with pytest.raises(ValueError, match="overwrite"):
            registry.register("m", models["beta"], overwrite=False)
        registry.register("m", models["beta"])  # default overwrites
        assert registry.get("m") is models["beta"]

    def test_unregister(self, corpus):
        _, models = corpus
        registry = ModelRegistry()
        registry.register("m", models["alpha"])
        assert registry.unregister("m") is models["alpha"]
        assert "m" not in registry
        with pytest.raises(KeyError):
            registry.unregister("m")

    def test_rejects_non_models(self):
        with pytest.raises(TypeError, match="ClusterModel"):
            ModelRegistry().register("m", object())

    def test_save_all_load_dir_roundtrip(self, corpus, tmp_path):
        datasets, models = corpus
        registry = ModelRegistry()
        for name, model in models.items():
            registry.register(name, model)
        paths = registry.save_all(tmp_path)
        assert sorted(paths) == sorted(models)

        fresh = ModelRegistry()
        assert fresh.load_dir(tmp_path) == sorted(models)
        for name, X in datasets.items():
            np.testing.assert_array_equal(
                fresh.get(name).predict(X), models[name].predict(X)
            )

    def test_concurrent_register_and_get(self, corpus):
        _, models = corpus
        registry = ModelRegistry()
        registry.register("hot", models["alpha"])
        stop = threading.Event()
        errors = []

        def swapper():
            flip = True
            while not stop.is_set():
                registry.register("hot", models["alpha" if flip else "beta"])
                flip = not flip

        def reader():
            try:
                for _ in range(500):
                    model = registry.get("hot")
                    assert isinstance(model, ClusterModel)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        writer = threading.Thread(target=swapper)
        writer.start()
        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        writer.join()
        assert not errors


class TestClusteringService:
    def test_predict_matches_direct_model(self, corpus):
        datasets, models = corpus
        service = ClusteringService()
        for name, model in models.items():
            service.register(name, model)
        for name, X in datasets.items():
            np.testing.assert_array_equal(
                service.predict(name, X), models[name].predict(X)
            )

    def test_unknown_model_raises_immediately(self, corpus):
        service = ClusteringService()
        with pytest.raises(KeyError, match="missing"):
            service.predict("missing", np.zeros((2, 2)))

    def test_shared_registry(self, corpus):
        _, models = corpus
        registry = ModelRegistry()
        registry.register("alpha", models["alpha"])
        service = ClusteringService(registry)
        assert service.registry is registry
        assert "alpha" in service.registry

    def test_bad_request_does_not_kill_the_queue(self, corpus):
        datasets, models = corpus
        service = ClusteringService()
        service.register("alpha", models["alpha"])
        with pytest.raises(ValueError):
            service.predict("alpha", np.zeros((3, 7)))  # wrong width
        X = datasets["alpha"]
        np.testing.assert_array_equal(
            service.predict("alpha", X), models["alpha"].predict(X)
        )

    @pytest.mark.parametrize("n_threads", [8, 16])
    def test_concurrent_mixed_model_traffic(self, corpus, n_threads):
        """>= 8 threads querying mixed models must see exact labels."""
        datasets, models = corpus
        service = ClusteringService()
        for name, model in models.items():
            service.register(name, model)
        expected = {
            name: models[name].predict(X) for name, X in datasets.items()
        }
        names = sorted(datasets)
        rng = np.random.default_rng(5)
        # Each worker issues a deterministic schedule of slice queries.
        schedules = [
            [
                (
                    names[int(rng.integers(len(names)))],
                    int(rng.integers(0, 1000)),
                    int(rng.integers(1001, 2000)),
                )
                for _ in range(25)
            ]
            for _ in range(n_threads)
        ]

        def worker(schedule):
            mismatches = 0
            for name, lo, hi in schedule:
                labels = service.predict(name, datasets[name][lo:hi])
                if not np.array_equal(labels, expected[name][lo:hi]):
                    mismatches += 1
            return mismatches

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            results = list(pool.map(worker, schedules))
        assert sum(results) == 0
        assert service.n_requests_ == n_threads * 25
        # Micro-batching never runs more passes than requests.
        assert service.n_batches_ <= service.n_requests_

    def test_micro_batching_coalesces_queued_requests(self, corpus):
        """Requests enqueued while a leader is draining ride along in one pass."""
        datasets, models = corpus
        service = ClusteringService()
        service.register("alpha", models["alpha"])
        X = datasets["alpha"]
        barrier = threading.Barrier(8)

        def worker(_):
            barrier.wait()
            return service.predict("alpha", X[:500])

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(worker, range(8)))
        for labels in results:
            np.testing.assert_array_equal(labels, models["alpha"].predict(X[:500]))
        assert service.n_requests_ == 8

    def test_cancelled_future_does_not_strand_the_queue(self, corpus):
        """A request cancelled before the leader drains it must not crash the
        leader or leave leader_active stuck (which would hang every later
        predict for that model)."""
        from concurrent.futures import Future

        datasets, models = corpus
        service = ClusteringService()
        service.register("alpha", models["alpha"])
        X = datasets["alpha"][:200]

        cancelled: Future = Future()
        assert cancelled.cancel()
        # Simulate the race: a cancelled request sits in the batch the leader
        # is about to execute.  Batch entries are (X, future, trace).
        service._execute("alpha", [(X, cancelled, None), (X, Future(), None)])
        # The queue still serves normally afterwards.
        np.testing.assert_array_equal(
            service.predict("alpha", X), models["alpha"].predict(X)
        )
        queue = service._queue_for("alpha")
        assert not queue.leader_active
        assert queue.pending == []

    def test_ingest_registers_served_model(self, corpus):
        datasets, _ = corpus
        X = datasets["alpha"]
        bounds = ([0.0, 0.0], [1.0, 1.0])
        service = ClusteringService()
        frozen = service.ingest(
            "streamed", np.array_split(X, 6), bounds=bounds, scale=64, n_workers=2
        )
        assert "streamed" in service.registry
        reference = AdaWave(scale=64, bounds=bounds).fit(X)
        np.testing.assert_array_equal(
            service.predict("streamed", X), reference.labels_
        )
        assert frozen.metadata["n_seen"] == len(X)
