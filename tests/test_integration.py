"""End-to-end integration tests across the whole pipeline."""

import numpy as np
import pytest

from repro import AdaWave, MultiResolutionAdaWave, adjusted_mutual_info
from repro.baselines import DBSCAN, KMeans, SkinnyDip, WaveCluster
from repro.baselines.postprocess import assign_noise_to_nearest_cluster
from repro.datasets import load_uci_like, noise_sweep_dataset, roadmap_simulant, running_example
from repro.metrics import ami_on_true_clusters, evaluate_clustering


class TestHeadlineClaims:
    """The paper's central claims, verified end to end on generated data."""

    def test_adawave_beats_wavecluster_and_skinnydip_at_high_noise(self):
        data = noise_sweep_dataset(noise_fraction=0.8, n_per_cluster=1200, seed=0)
        adawave_ami = ami_on_true_clusters(
            data.labels, AdaWave(scale=128).fit_predict(data.points)
        )
        wavecluster_ami = ami_on_true_clusters(
            data.labels, WaveCluster(scale=128).fit_predict(data.points)
        )
        subsample = np.random.default_rng(0).choice(data.n_samples, 4000, replace=False)
        skinny_ami = ami_on_true_clusters(
            data.labels[subsample],
            SkinnyDip(alpha=0.05, n_boot=60).fit_predict(data.points[subsample]),
        )
        assert adawave_ami > wavecluster_ami
        assert adawave_ami > skinny_ami
        assert adawave_ami > 0.6

    def test_adawave_degrades_gracefully_with_noise(self):
        scores = []
        for noise in (0.3, 0.6, 0.9):
            data = noise_sweep_dataset(noise_fraction=noise, n_per_cluster=1200, seed=1)
            labels = AdaWave(scale=128).fit_predict(data.points)
            scores.append(ami_on_true_clusters(data.labels, labels))
        # Degradation from 30% to 90% noise stays modest (the paper's key claim).
        assert scores[0] > 0.7
        assert scores[-1] > 0.5
        assert scores[0] - scores[-1] < 0.35

    @pytest.mark.slow
    def test_dbscan_collapses_at_extreme_noise_while_adawave_survives(self):
        data = noise_sweep_dataset(noise_fraction=0.85, n_per_cluster=1200, seed=2)
        adawave_ami = ami_on_true_clusters(
            data.labels, AdaWave(scale=128).fit_predict(data.points)
        )
        best_dbscan = 0.0
        for eps in (0.01, 0.02, 0.05, 0.1):
            labels = DBSCAN(eps=eps, min_samples=8).fit_predict(data.points)
            best_dbscan = max(best_dbscan, ami_on_true_clusters(data.labels, labels))
        assert adawave_ami > best_dbscan + 0.1

    def test_adawave_is_deterministic_and_order_insensitive(self):
        data = running_example(noise_fraction=0.7, n_per_cluster=600, seed=3)
        reference = AdaWave(scale=64).fit_predict(data.points)
        shuffled = data.shuffled(seed=9)
        labels_shuffled = AdaWave(scale=64).fit_predict(shuffled.points)
        # Align both label vectors by sorting the points lexicographically,
        # then the partitions must be identical up to label renaming.
        reference_order = np.lexsort((data.points[:, 1], data.points[:, 0]))
        shuffled_order = np.lexsort((shuffled.points[:, 1], shuffled.points[:, 0]))
        assert adjusted_mutual_info(
            reference[reference_order], labels_shuffled[shuffled_order]
        ) == pytest.approx(1.0)

    def test_roadmap_cities_recovered(self):
        data = roadmap_simulant(n_samples=8000, seed=0)
        model = AdaWave(scale=128).fit(data.points)
        scores = evaluate_clustering(data.labels, model.labels_)
        assert scores.ami > 0.5
        assert model.n_clusters_ >= 4

    def test_realworld_protocol_with_noise_reassignment(self):
        data = load_uci_like("iris", seed=0)
        model = AdaWave(scale="auto", min_cluster_cells=1).fit(data.points)
        completed = assign_noise_to_nearest_cluster(data.points, model.labels_)
        assert not (completed == -1).any()
        assert adjusted_mutual_info(data.labels, completed) >= 0.0

    def test_multiresolution_coarsens_with_level(self):
        data = running_example(noise_fraction=0.6, n_per_cluster=800, seed=4)
        model = MultiResolutionAdaWave(scale=128, levels=(1, 2, 3)).fit(data.points)
        counts = model.cluster_counts()
        assert counts[1] >= counts[3]

    def test_kmeans_lacks_noise_concept(self):
        """k-means assigns every noise point to some cluster; AdaWave does not."""
        data = noise_sweep_dataset(noise_fraction=0.7, n_per_cluster=800, seed=5)
        kmeans_labels = KMeans(n_clusters=5, random_state=0).fit_predict(data.points)
        adawave_labels = AdaWave(scale=128).fit_predict(data.points)
        assert (kmeans_labels == -1).sum() == 0
        noise_mask = data.labels == -1
        assert (adawave_labels[noise_mask] == -1).mean() > 0.5
