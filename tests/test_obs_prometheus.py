"""Prometheus exposition-format conformance and /metrics content negotiation.

The renderer is a pure function of a Telemetry snapshot, so the conformance
walk runs every line of a fully-populated exposition through the strict
parser: names legal, labels balanced and escaped, histogram buckets
cumulative with the ``+Inf`` bucket equal to ``_count``, summaries carrying
``quantile`` labels, HELP/TYPE exactly once per metric.  The edge half pins
the negotiation contract: JSON for JSON clients (the default), text
exposition 0.0.4 under ``Accept: text/plain`` or an OpenMetrics accept.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    parse_exposition_line,
    render_prometheus,
)
from repro.obs.prometheus import escape_label_value, format_value
from repro.serve import ClusteringService, EdgeThread
from repro.serve.metrics import Telemetry

BOUNDS = ([0.0, 0.0], [1.0, 1.0])


@pytest.fixture()
def populated_telemetry():
    """A Telemetry carrying every section the renderer knows about."""
    telemetry = Telemetry()
    telemetry.record_predict("live", 0.004, 128)
    telemetry.record_predict("canary\n\"v2\"", 0.009, 64)  # escaping fodder
    telemetry.record_queue_depth(1)
    telemetry.record_queue_depth(0)
    telemetry.record_reject("live")
    telemetry.record_swap("live", "v2")
    telemetry.record_worker_respawn(0)
    telemetry.record_stage("queue-wait", 0.0004)
    telemetry.record_stage("queue-wait", 0.3)
    telemetry.record_stage("worker-predict", 0.002)
    telemetry.record_edge_request("predict", 200, 0.005)
    telemetry.record_edge_request("predict", 404, 0.001)
    telemetry.record_edge_request("healthz", 200, 0.0002)
    from repro.obs import Trace

    trace = Trace(deadline=0.0)
    trace.add_span("queue-wait", trace.started, trace.started + 0.01)
    trace.close(error="worker died")
    telemetry.record_trace(trace)
    return telemetry


class TestConformance:
    def test_every_line_parses(self, populated_telemetry):
        text = populated_telemetry.to_prometheus()
        assert text.endswith("\n")
        parsed = 0
        for line in text.splitlines():
            result = parse_exposition_line(line)
            if result is not None:
                parsed += 1
        assert parsed >= 20, "a populated snapshot must expose many samples"

    def test_help_and_type_exactly_once_per_metric(self, populated_telemetry):
        text = populated_telemetry.to_prometheus()
        helps = [l.split()[2] for l in text.splitlines() if l.startswith("# HELP")]
        types = [l.split()[2] for l in text.splitlines() if l.startswith("# TYPE")]
        assert len(helps) == len(set(helps))
        assert len(types) == len(set(types))
        assert set(helps) == set(types)

    def test_counters_end_in_total(self, populated_telemetry):
        text = populated_telemetry.to_prometheus()
        for line in text.splitlines():
            if line.startswith("# TYPE") and line.endswith(" counter"):
                assert line.split()[2].endswith("_total"), line

    def test_histogram_buckets_cumulative_and_inf_equals_count(
        self, populated_telemetry
    ):
        text = populated_telemetry.to_prometheus()
        buckets = {}
        counts = {}
        for line in text.splitlines():
            parsed = parse_exposition_line(line)
            if parsed is None:
                continue
            name, labels, value = parsed
            if name == "repro_stage_seconds_bucket":
                key = labels["stage"]
                buckets.setdefault(key, []).append((labels["le"], value))
            elif name == "repro_stage_seconds_count":
                counts[labels["stage"]] = value
        assert set(buckets) == {"queue-wait", "worker-predict", "error"}
        for stage, series in buckets.items():
            values = [v for _, v in series]
            assert values == sorted(values), f"{stage} buckets not cumulative"
            assert series[-1][0] == "+Inf"
            assert series[-1][1] == counts[stage]

    def test_summaries_carry_quantile_labels(self, populated_telemetry):
        text = populated_telemetry.to_prometheus()
        quantiles = [
            parse_exposition_line(line)
            for line in text.splitlines()
            if line.startswith("repro_edge_latency_seconds{")
        ]
        assert quantiles, "edge latency summary missing"
        for name, labels, _ in quantiles:
            assert 0.0 <= float(labels["quantile"]) <= 1.0
            assert labels["route"] in {"predict", "healthz"}

    def test_label_escaping_round_trips(self, populated_telemetry):
        text = populated_telemetry.to_prometheus()
        samples = [
            parse_exposition_line(line)
            for line in text.splitlines()
            if line.startswith("repro_predict_requests_total")
        ]
        models = {labels["model"] for _, labels, _ in samples}
        assert escape_label_value('canary\n"v2"') in models

    def test_parser_rejects_malformed_lines(self):
        for bad in (
            "1leading_digit 3",
            'name{le="0.1" 3',
            "name{le=0.1} 3",
            'name{a="1"b="2"} 3',
            "name three",
            "na me 3",
        ):
            with pytest.raises(ValueError):
                parse_exposition_line(bad)

    def test_parser_passes_comments_and_values(self):
        assert parse_exposition_line("# HELP x y") is None
        assert parse_exposition_line("") is None
        name, labels, value = parse_exposition_line(
            'repro_stage_seconds_bucket{stage="a",le="+Inf"} 4'
        )
        assert (name, labels["le"], value) == (
            "repro_stage_seconds_bucket", "+Inf", 4.0
        )

    def test_format_value_renders_ints_and_inf(self):
        assert format_value(3.0) == "3"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(0.25) == "0.25"

    def test_empty_snapshot_renders(self):
        text = render_prometheus({})
        assert text == "\n" or all(
            parse_exposition_line(line) is not None or line.startswith("#")
            for line in text.splitlines()
        )


class TestEdgeNegotiation:
    @pytest.fixture()
    def edge(self):
        rng = np.random.default_rng(9)
        blob = np.clip(rng.normal(0.3, 0.05, size=(1500, 2)), 0.0, 1.0)
        X = np.vstack([blob, rng.uniform(size=(1500, 2))])
        frozen = AdaWave(scale=64, bounds=BOUNDS).fit(X).export_model()
        service = ClusteringService()
        service.register("live", frozen)
        with EdgeThread(service) as handle:
            yield handle
        service.close()

    def _get(self, edge, path, accept=None):
        request = urllib.request.Request(f"{edge.url}{path}")
        if accept is not None:
            request.add_header("Accept", accept)
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.headers, response.read()

    def _predict_once(self, edge):
        body = json.dumps({"points": [[0.3, 0.3], [0.9, 0.9]]}).encode()
        request = urllib.request.Request(
            f"{edge.url}/predict/live",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status

    def test_default_accept_stays_json(self, edge):
        self._predict_once(edge)
        status, headers, body = self._get(edge, "/metrics")
        assert status == 200
        assert "application/json" in headers["Content-Type"]
        snapshot = json.loads(body)
        assert snapshot["edge"]["requests_by_status"]["200"] >= 1

    def test_text_plain_accept_gets_exposition(self, edge):
        self._predict_once(edge)
        status, headers, body = self._get(edge, "/metrics", accept="text/plain")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        names = set()
        for line in text.splitlines():
            parsed = parse_exposition_line(line)
            if parsed is not None:
                names.add(parsed[0])
        assert "repro_predict_requests_total" in names
        assert "repro_stage_seconds_bucket" in names
        assert "repro_edge_active_requests" in names

    def test_openmetrics_accept_gets_exposition(self, edge):
        status, headers, _ = self._get(
            edge, "/metrics",
            accept="application/openmetrics-text; version=1.0.0",
        )
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE

    def test_scraped_exposition_matches_snapshot_counts(self, edge):
        for _ in range(3):
            self._predict_once(edge)
        _, _, body = self._get(edge, "/metrics", accept="text/plain")
        samples = {}
        for line in body.decode().splitlines():
            parsed = parse_exposition_line(line)
            if parsed is not None:
                name, labels, value = parsed
                samples[(name, tuple(sorted(labels.items())))] = value
        key = ("repro_predict_requests_total", (("model", "live"),))
        assert samples[key] >= 3
        traces = samples.get(("repro_traces_total", ()))
        assert traces is not None and traces >= 3
