"""Tests for the experiment harness (small configurations)."""

import numpy as np
import pytest

from repro.experiments import (
    format_table,
    run_glass_correlation,
    run_memory_ablation,
    run_noise_sweep,
    run_roadmap_case_study,
    run_running_example,
    run_runtime_comparison,
    run_threshold_ablation,
    run_wavelet_ablation,
)
from repro.experiments.reporting import pivot
from repro.experiments.runner import (
    AlgorithmSpec,
    ExperimentResult,
    dbscan_grid,
    default_algorithms,
    evaluate_algorithm,
)
from repro.core.adawave import AdaWave
from repro.datasets.synthetic import noise_sweep_dataset


class TestRunnerPrimitives:
    def test_evaluate_algorithm_returns_row(self):
        dataset = noise_sweep_dataset(noise_fraction=0.3, n_per_cluster=200, seed=0)
        spec = AlgorithmSpec("AdaWave", lambda data: AdaWave(scale=64))
        row = evaluate_algorithm(spec, dataset)
        assert row["algorithm"] == "AdaWave"
        assert 0.0 <= row["ami"] <= 1.0
        assert row["seconds"] >= 0.0

    def test_parameter_grid_reports_best(self):
        dataset = noise_sweep_dataset(noise_fraction=0.3, n_per_cluster=150, seed=0)
        spec = AlgorithmSpec(
            "DBSCAN",
            factory=lambda data: None,
            parameter_grid=dbscan_grid(eps_values=(0.01, 0.05)),
            max_points=1500,
        )
        row = evaluate_algorithm(spec, dataset)
        assert row["grid_index"] in (0, 1)

    def test_subsampling_respected(self):
        dataset = noise_sweep_dataset(noise_fraction=0.5, n_per_cluster=400, seed=0)
        spec = AlgorithmSpec("AdaWave", lambda data: AdaWave(scale=32), max_points=500)
        row = evaluate_algorithm(spec, dataset)
        assert 0.0 <= row["ami"] <= 1.0

    def test_default_algorithm_roster(self):
        fast = default_algorithms(include_slow=False)
        full = default_algorithms(include_slow=True)
        names = [spec.name for spec in fast]
        assert names == ["AdaWave", "SkinnyDip", "DBSCAN", "EM", "k-means", "WaveCluster"]
        assert len(full) == len(fast) + 2

    def test_experiment_result_helpers(self):
        result = ExperimentResult(experiment="toy", columns=["algorithm", "ami"])
        result.add_row(algorithm="a", ami=0.5)
        result.add_row(algorithm="b", ami=0.8)
        assert result.column("ami") == [0.5, 0.8]
        assert result.best_by("ami")[None] == "b"


class TestReporting:
    def test_format_table_renders_all_rows(self):
        result = ExperimentResult(experiment="toy", columns=["name", "value"])
        result.add_row(name="x", value=1.234567)
        result.add_row(name="y", value=None)
        text = format_table(result)
        assert "toy" in text and "x" in text and "1.235" in text
        # Title + header + separator + two data rows.
        assert len(text.splitlines()) == 5

    def test_pivot_wide_layout(self):
        result = ExperimentResult(experiment="sweep", columns=["noise", "algorithm", "ami"])
        result.add_row(noise=0.2, algorithm="A", ami=0.9)
        result.add_row(noise=0.2, algorithm="B", ami=0.5)
        result.add_row(noise=0.4, algorithm="A", ami=0.8)
        wide = pivot(result, index="noise", column="algorithm", value="ami")
        assert wide.columns == ["noise", "A", "B"]
        assert wide.rows[0]["A"] == 0.9
        assert wide.rows[1]["B"] is None


class TestExperimentE1:
    @pytest.mark.slow
    def test_running_example_shape(self):
        result = run_running_example(n_per_cluster=300, dbscan_max_points=800)
        algorithms = result.column("algorithm")
        assert algorithms == ["AdaWave", "k-means", "DBSCAN", "SkinnyDip"]
        assert all(0.0 <= value <= 1.0 for value in result.column("ami"))

    @pytest.mark.slow
    def test_adawave_beats_skinnydip_on_running_example(self):
        result = run_running_example(n_per_cluster=500, dbscan_max_points=800, seed=1)
        scores = {row["algorithm"]: row["ami"] for row in result.rows}
        assert scores["AdaWave"] > scores["SkinnyDip"]


class TestExperimentE2:
    @pytest.mark.slow
    def test_noise_sweep_small(self):
        result = run_noise_sweep(
            noise_levels=(0.3, 0.8), n_per_cluster=400, subsample_quadratic=1200
        )
        assert len(result.rows) == 2 * 6
        adawave = [row["ami"] for row in result.rows if row["algorithm"] == "AdaWave"]
        # AdaWave stays strong at both noise levels.
        assert min(adawave) > 0.5


class TestExperimentE4:
    def test_glass_correlations_close_to_paper(self):
        result = run_glass_correlation()
        errors = result.column("absolute_error")
        assert max(errors) < 0.2
        assert len(result.rows) == 9


class TestExperimentE5:
    def test_roadmap_case_study(self):
        result = run_roadmap_case_study(n_samples=6000, dbscan_max_points=1500)
        adawave_row = next(row for row in result.rows if row["algorithm"] == "AdaWave")
        assert adawave_row["ami"] > 0.4
        assert adawave_row["cities_recovered"] >= 3


class TestExperimentE6:
    def test_runtime_rows_and_growth(self):
        result = run_runtime_comparison(sizes=(1000, 2000), max_points_quadratic=2500)
        algorithms = {row["algorithm"] for row in result.rows}
        assert "AdaWave" in algorithms
        growth_rows = [row for row in result.rows if "growth" in row["algorithm"]]
        assert growth_rows, "expected fitted growth exponents"


class TestExperimentE7:
    def test_threshold_ablation(self):
        result = run_threshold_ablation(noise_levels=(0.5,), n_per_cluster=600)
        methods = {row["threshold_method"] for row in result.rows}
        assert {"auto", "none"}.issubset(methods)
        auto_row = next(row for row in result.rows if row["threshold_method"] == "auto")
        none_row = next(row for row in result.rows if row["threshold_method"] == "none")
        assert auto_row["ami"] >= none_row["ami"]

    def test_memory_ablation_savings_grow_with_dimension(self):
        result = run_memory_ablation(dimensions=(2, 5, 7), n_samples=1500, scale=8)
        savings = result.column("savings_factor")
        assert savings[-1] > savings[0]

    def test_wavelet_ablation(self):
        result = run_wavelet_ablation(
            wavelets=("bior2.2", "haar"), n_per_cluster=600, noise_fraction=0.6
        )
        assert len(result.rows) == 2
        assert all(row["ami"] > 0.3 for row in result.rows)
