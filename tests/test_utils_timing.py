"""Tests for repro.utils.timing."""

import time

from repro.utils.timing import Stopwatch, timed


class TestStopwatch:
    def test_measures_elapsed_time(self):
        watch = Stopwatch()
        with watch.measure("task"):
            time.sleep(0.01)
        assert watch.total("task") >= 0.005
        assert watch.count("task") == 1

    def test_accumulates_multiple_measurements(self):
        watch = Stopwatch()
        for _ in range(3):
            with watch.measure("task"):
                pass
        assert watch.count("task") == 3
        assert watch.mean("task") >= 0.0

    def test_unknown_name_is_zero(self):
        watch = Stopwatch()
        assert watch.total("missing") == 0.0
        assert watch.mean("missing") == 0.0
        assert watch.count("missing") == 0

    def test_records_even_when_block_raises(self):
        watch = Stopwatch()
        try:
            with watch.measure("task"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert watch.count("task") == 1


class TestTimed:
    def test_elapsed_is_populated(self):
        with timed() as elapsed:
            time.sleep(0.01)
        assert elapsed[0] >= 0.005

    def test_elapsed_is_zero_before_exit(self):
        with timed() as elapsed:
            assert elapsed[0] == 0.0
