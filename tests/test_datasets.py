"""Tests for repro.datasets: shapes, synthetic workloads, UCI simulants, roadmap."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.datasets.roadmap import roadmap_simulant
from repro.datasets.shapes import gaussian_blob, gaussian_ellipse, line_segment, ring, uniform_noise
from repro.datasets.synthetic import noise_sweep_dataset, running_example, scaled_runtime_dataset
from repro.datasets.uci_like import (
    GLASS_ATTRIBUTE_CORRELATIONS,
    UCI_DATASET_NAMES,
    dataset_summary,
    glass_simulant,
    load_uci_like,
)


class TestDatasetContainer:
    def test_properties(self):
        data = Dataset("toy", np.zeros((4, 2)), np.array([0, 0, 1, -1]))
        assert data.n_samples == 4
        assert data.n_features == 2
        assert data.n_clusters == 2
        assert data.noise_fraction == pytest.approx(0.25)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros(4), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros((4, 2)), np.zeros(3, dtype=int))

    def test_shuffled_preserves_point_label_pairs(self):
        data = Dataset("toy", np.arange(10.0).reshape(5, 2), np.arange(5))
        shuffled = data.shuffled(seed=1)
        original_pairs = {(tuple(p), int(l)) for p, l in zip(data.points, data.labels)}
        shuffled_pairs = {(tuple(p), int(l)) for p, l in zip(shuffled.points, shuffled.labels)}
        assert original_pairs == shuffled_pairs


class TestShapes:
    def test_gaussian_blob_center_and_spread(self):
        points = gaussian_blob(2000, center=[1.0, 2.0], std=0.05, random_state=0)
        np.testing.assert_allclose(points.mean(axis=0), [1.0, 2.0], atol=0.01)
        assert points.std(axis=0).max() < 0.1

    def test_gaussian_ellipse_anisotropy(self):
        points = gaussian_ellipse(3000, center=(0, 0), axes=(0.2, 0.02), angle=0.0, random_state=0)
        assert points[:, 0].std() > 5 * points[:, 1].std()

    def test_ring_radius(self):
        points = ring(2000, center=(0, 0), radius=0.5, width=0.01, random_state=0)
        radii = np.linalg.norm(points, axis=1)
        assert radii.mean() == pytest.approx(0.5, abs=0.01)
        assert radii.std() < 0.05

    def test_line_segment_stays_near_line(self):
        points = line_segment(1000, start=(0, 0), end=(1, 1), width=0.01, random_state=0)
        # Perpendicular distance to the line y = x must be tiny.
        perpendicular = np.abs(points[:, 0] - points[:, 1]) / np.sqrt(2)
        assert perpendicular.max() < 0.08

    def test_uniform_noise_bounds(self):
        points = uniform_noise(500, [0, 0], [2, 3], random_state=0)
        assert points[:, 0].min() >= 0 and points[:, 0].max() <= 2
        assert points[:, 1].min() >= 0 and points[:, 1].max() <= 3

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ring(100, center=(0, 0), radius=-1.0)
        with pytest.raises(ValueError):
            line_segment(100, start=(0, 0), end=(0, 0))
        with pytest.raises(ValueError):
            uniform_noise(100, [0, 0], [0, 0])
        with pytest.raises(ValueError):
            gaussian_ellipse(10, center=(0, 0, 0))


class TestSyntheticWorkloads:
    def test_noise_fraction_is_respected(self):
        for fraction in (0.2, 0.5, 0.9):
            data = noise_sweep_dataset(noise_fraction=fraction, n_per_cluster=300, seed=0)
            assert data.noise_fraction == pytest.approx(fraction, abs=0.02)

    def test_five_clusters_generated(self):
        data = noise_sweep_dataset(noise_fraction=0.3, n_per_cluster=200, seed=0)
        assert data.n_clusters == 5
        assert data.n_features == 2

    def test_determinism(self):
        first = noise_sweep_dataset(0.5, n_per_cluster=100, seed=3)
        second = noise_sweep_dataset(0.5, n_per_cluster=100, seed=3)
        np.testing.assert_array_equal(first.points, second.points)
        np.testing.assert_array_equal(first.labels, second.labels)

    def test_different_seeds_differ(self):
        first = noise_sweep_dataset(0.5, n_per_cluster=100, seed=1)
        second = noise_sweep_dataset(0.5, n_per_cluster=100, seed=2)
        assert not np.array_equal(first.points, second.points)

    def test_points_inside_unit_square_mostly(self):
        data = noise_sweep_dataset(0.5, n_per_cluster=500, seed=0)
        inside = np.mean(
            (data.points >= -0.1).all(axis=1) & (data.points <= 1.1).all(axis=1)
        )
        assert inside > 0.99

    def test_clusters_do_not_touch(self):
        """No two ground-truth clusters may overlap: minimum inter-cluster
        distance must exceed the quantization cell size at scale 128."""
        data = noise_sweep_dataset(0.0, n_per_cluster=400, seed=0)
        min_gap = np.inf
        for a in range(5):
            for b in range(a + 1, 5):
                points_a = data.points[data.labels == a]
                points_b = data.points[data.labels == b]
                distances = np.sqrt(
                    ((points_a[:, None, :] - points_b[None, :, :]) ** 2).sum(axis=2)
                )
                min_gap = min(min_gap, distances.min())
        assert min_gap > 1.5 / 128

    def test_running_example_defaults(self):
        data = running_example(n_per_cluster=200, seed=0)
        assert data.noise_fraction == pytest.approx(0.8, abs=0.02)
        assert data.n_clusters == 5

    def test_runtime_dataset_size(self):
        data = scaled_runtime_dataset(4000, noise_fraction=0.75, seed=0)
        assert abs(data.n_samples - 4000) < 400
        assert data.metadata["figure"] == "Fig. 10"

    def test_invalid_noise_fraction(self):
        with pytest.raises(ValueError):
            noise_sweep_dataset(noise_fraction=1.5)


class TestUciSimulants:
    def test_all_names_load(self):
        for name in UCI_DATASET_NAMES:
            size = 2000 if name in ("roadmap", "htru2") else None
            data = load_uci_like(name, seed=0, n_samples=size)
            assert data.n_samples > 50
            assert data.n_features >= 2

    def test_table_one_shapes(self):
        summary = dataset_summary()
        assert summary["seeds"] == (210, 7, 3)
        assert summary["iris"] == (150, 4, 3)
        assert summary["glass"] == (214, 9, 6)
        assert summary["dermatology"] == (366, 33, 6)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_uci_like("mnist")

    def test_determinism(self):
        first = load_uci_like("seeds", seed=4)
        second = load_uci_like("seeds", seed=4)
        np.testing.assert_array_equal(first.points, second.points)

    def test_glass_correlations_match_table_two(self):
        data = glass_simulant(seed=0)
        labels = data.labels.astype(float)
        for index, (name, target) in enumerate(GLASS_ATTRIBUTE_CORRELATIONS.items()):
            column = data.points[:, index]
            correlation = np.corrcoef(column, labels)[0, 1]
            assert correlation == pytest.approx(target, abs=0.15), name

    def test_glass_has_six_classes(self):
        assert glass_simulant(seed=1).n_clusters == 6

    def test_motor_simulant_is_well_separated(self):
        from repro.baselines import KMeans
        from repro.metrics import adjusted_mutual_info

        data = load_uci_like("motor", seed=0)
        labels = KMeans(n_clusters=3, random_state=0).fit_predict(data.points)
        assert adjusted_mutual_info(data.labels, labels) > 0.9


class TestRoadmap:
    def test_majority_is_noise(self):
        data = roadmap_simulant(n_samples=5000, seed=0)
        assert data.noise_fraction > 0.5

    def test_city_count(self):
        data = roadmap_simulant(n_samples=5000, seed=0)
        assert data.n_clusters == 6
        assert len(data.metadata["cities"]) == 6

    def test_requested_size(self):
        data = roadmap_simulant(n_samples=3000, seed=0)
        assert data.n_samples == 3000

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            roadmap_simulant(n_samples=1000, city_fraction=0.8, arterial_fraction=0.5)

    def test_cities_are_dense_relative_to_countryside(self):
        data = roadmap_simulant(n_samples=8000, seed=0)
        city_points = data.points[data.labels != -1]
        # City points concentrate in small regions: their std is far below the
        # unit-square noise spread.
        assert city_points.std() < 0.3
