"""Blue/green versioned swaps, TTL/eviction, and swap-under-load safety.

The acceptance bar: a reader loop calling ``service.predict`` while a writer
loop ``swap``s versions must never raise ``KeyError`` or observe a torn
model -- every answer must exactly match one of the registered artifacts.
"""

import threading

import numpy as np
import pytest

from repro.core.adawave import AdaWave
from repro.serve import ClusteringService, ModelRegistry


@pytest.fixture(scope="module")
def corpus():
    """Two distinguishable datasets/models plus a shared query set."""
    rng = np.random.default_rng(23)
    models = []
    for offset in (0.25, 0.65):
        blob = np.clip(rng.normal(offset, 0.04, size=(1500, 2)), 0.0, 1.0)
        noise = rng.uniform(size=(2500, 2))
        X = np.vstack([blob, noise])
        models.append(AdaWave(scale=64, bounds=([0, 0], [1, 1])).fit(X).export_model())
    queries = rng.uniform(size=(400, 2))
    return models, queries


class TestSwapSemantics:
    def test_swap_assigns_versions_and_rebinds_alias(self, corpus):
        models, _ = corpus
        registry = ModelRegistry()
        assert registry.swap("live", models[0]) == "live@v1"
        assert registry.swap("live", models[1]) == "live@v2"
        assert registry.get("live") is models[1]
        assert registry.get("live@v1") is models[0]  # pinned readers keep it
        assert registry.get("live@v2") is models[1]
        assert registry.versions("live") == ["live@v1", "live@v2"]
        assert registry.active_version("live") == "live@v2"

    def test_swap_onto_version_name_rejected(self, corpus):
        models, _ = corpus
        registry = ModelRegistry()
        registry.swap("live", models[0])
        with pytest.raises(ValueError, match="version"):
            registry.swap("live@v1", models[1])

    def test_version_counter_never_reuses_names(self, corpus):
        """A pinned 'live@v2' must never silently resolve to a different
        artifact after eviction + new swaps."""
        models, _ = corpus
        registry = ModelRegistry(max_versions=1)
        registry.swap("live", models[0])
        registry.swap("live", models[1])
        assert "live@v1" not in registry
        assert registry.swap("live", models[0]) == "live@v3"

    def test_max_versions_evicts_oldest_not_active(self, corpus):
        models, _ = corpus
        registry = ModelRegistry(max_versions=2)
        for index in range(5):
            registry.swap("live", models[index % 2])
        assert registry.versions("live") == ["live@v4", "live@v5"]
        assert "live@v1" not in registry
        assert registry.get("live") is registry.get("live@v5")

    def test_ttl_evicts_stale_versions_but_never_the_live_one(self, corpus):
        models, _ = corpus
        now = [0.0]
        registry = ModelRegistry(ttl_seconds=10.0, clock=lambda: now[0])
        registry.swap("live", models[0])
        now[0] = 5.0
        registry.swap("live", models[1])
        assert registry.versions("live") == ["live@v1", "live@v2"]
        now[0] = 100.0  # both versions are past the TTL now
        evicted = registry.evict_stale()
        assert evicted == ["live@v1"]
        # The live version survives any TTL.
        assert registry.versions("live") == ["live@v2"]
        assert registry.get("live") is models[1]

    def test_unregister_base_name_drops_versions(self, corpus):
        models, _ = corpus
        registry = ModelRegistry()
        registry.swap("live", models[0])
        registry.swap("live", models[1])
        registry.unregister("live")
        assert "live" not in registry
        assert "live@v1" not in registry
        assert "live@v2" not in registry
        assert registry.versions("live") == []

    def test_invalid_retention_params_rejected(self):
        with pytest.raises(ValueError, match="max_versions"):
            ModelRegistry(max_versions=0)
        with pytest.raises(ValueError, match="ttl_seconds"):
            ModelRegistry(ttl_seconds=-1.0)

    def test_register_refuses_version_namespace(self, corpus):
        """A pinned 'name@vK' must never be silently rebound by register()."""
        models, _ = corpus
        registry = ModelRegistry()
        registry.swap("live", models[0])
        with pytest.raises(ValueError, match="version namespace"):
            registry.register("live@v1", models[1])
        assert registry.get("live@v1") is models[0]
        # Even never-swapped names in the namespace are refused.
        with pytest.raises(ValueError, match="version namespace"):
            registry.register("other@v7", models[1])

    def test_register_on_swapped_name_clears_active_version(self, corpus):
        """A plain rebind takes the alias out of swap management instead of
        leaving active_version() pointing at a version it no longer serves."""
        models, _ = corpus
        registry = ModelRegistry()
        registry.swap("live", models[0])
        registry.register("live", models[1])
        assert registry.get("live") is models[1]
        assert registry.active_version("live") is None
        assert registry.get("live@v1") is models[0]  # pinned readers keep it

    def test_unregister_version_name_updates_version_list(self, corpus):
        models, _ = corpus
        registry = ModelRegistry()
        registry.swap("live", models[0])
        registry.swap("live", models[1])
        registry.unregister("live@v1")
        assert registry.versions("live") == ["live@v2"]
        with pytest.raises(KeyError):
            registry.get("live@v1")
        assert registry.get("live") is models[1]

    def test_save_all_writes_each_live_model_once(self, corpus, tmp_path):
        """The active version's bytes are exactly the alias file; save_all
        must not serialize them twice (superseded versions are distinct)."""
        models, queries = corpus
        registry = ModelRegistry()
        registry.swap("live", models[0])
        registry.swap("live", models[1])
        saved = registry.save_all(tmp_path)
        assert sorted(saved) == ["live", "live@v1"]  # no live@v2 duplicate

        restored = ModelRegistry()
        assert restored.load_dir(tmp_path) == ["live", "live@v1"]
        np.testing.assert_array_equal(
            restored.get("live").predict(queries), models[1].predict(queries)
        )
        np.testing.assert_array_equal(
            restored.get("live@v1").predict(queries), models[0].predict(queries)
        )

    def test_service_swap_passthrough(self, corpus):
        models, queries = corpus
        service = ClusteringService()
        version = service.swap("live", models[0])
        assert version == "live@v1"
        np.testing.assert_array_equal(
            service.predict("live", queries), models[0].predict(queries)
        )


class TestSwapUnderLoad:
    def test_readers_never_fail_or_see_torn_models(self, corpus):
        """Concurrent swap/predict: no KeyError, and every answer equals one
        of the two registered artifacts' answers bit-for-bit."""
        models, queries = corpus
        expected = [model.predict(queries) for model in models]
        # The two models must disagree on the query set, otherwise "torn"
        # would be unobservable.
        assert not np.array_equal(expected[0], expected[1])

        registry = ModelRegistry(max_versions=3)
        service = ClusteringService(registry)
        service.swap("hot", models[0])
        stop = threading.Event()
        errors = []
        torn = []
        n_reads = [0] * 4

        def swapper():
            flip = 0
            while not stop.is_set():
                flip ^= 1
                service.swap("hot", models[flip])

        def reader(slot):
            try:
                for _ in range(150):
                    labels = service.predict("hot", queries)
                    if not any(np.array_equal(labels, e) for e in expected):
                        torn.append(labels)
                    n_reads[slot] += 1
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        writer = threading.Thread(target=swapper)
        readers = [threading.Thread(target=reader, args=(slot,)) for slot in range(4)]
        writer.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        writer.join()

        assert errors == []
        assert torn == []
        assert sum(n_reads) == 4 * 150
        # The retention policy ran under load without disturbing the alias.
        assert registry.get("hot") in models
        assert len(registry.versions("hot")) <= 3
