"""AdaWave: adaptive wavelet clustering for highly noisy data.

This package is a from-scratch reproduction of the ICDE 2019 paper
"Adaptive Wavelet Clustering for Highly Noisy Data" (Chen et al.).  It
contains:

* :mod:`repro.core` -- the AdaWave algorithm itself (sparse-grid
  quantization, per-dimension wavelet smoothing, adaptive elbow threshold,
  connected-component cluster extraction, multi-resolution clustering).
* :mod:`repro.wavelets` -- a discrete wavelet transform substrate
  (Mallat filter banks, orthogonal and biorthogonal families, 1-D and
  separable n-D transforms, coefficient thresholding).
* :mod:`repro.grid` -- the sparse "grid labeling" data structure (vectorized
  COO storage) and grid connectivity / lookup machinery.
* :mod:`repro.engine` -- the interchangeable vectorized / reference execution
  engines and the :class:`~repro.engine.BatchRunner` shared pipeline.
* :mod:`repro.serve` -- the model-serving layer: frozen
  :class:`~repro.serve.ClusterModel` artifacts with versioned save/load
  (optionally memory-mapped) and lookup-only predict, a thread-safe
  :class:`~repro.serve.ModelRegistry` with blue/green versioned swaps and
  TTL eviction, the micro-batching :class:`~repro.serve.ClusteringService`
  (sync + asyncio front ends) and sharded
  :func:`~repro.serve.parallel_ingest`.
* :mod:`repro.stream` -- the online control plane: the mergeable
  :class:`~repro.stream.StreamSketch`, label-free
  :class:`~repro.stream.DriftMonitor` and the drift-aware
  :class:`~repro.stream.StreamController` (ingest -> detect -> re-tune ->
  hot-swap).
* :mod:`repro.tune` -- grid-pyramid auto-tuning: ``AdaWave(scale="tune")``
  picks the quantization scale (and optionally the decomposition level)
  from one quantization pass, scoring every dyadic resolution without
  ground-truth labels.
* :mod:`repro.baselines` -- the comparison algorithms evaluated in the
  paper: k-means, DBSCAN, EM, WaveCluster, SkinnyDip, DipMeans, self-tuning
  spectral clustering and RIC.
* :mod:`repro.metrics` -- contingency based clustering metrics including
  adjusted mutual information (AMI) and the paper's noise-aware protocol.
* :mod:`repro.datasets` -- synthetic workloads (running example, noise
  sweep), UCI-like simulants and the Roadmap case-study generator.
* :mod:`repro.experiments` -- one module per table / figure of the paper's
  evaluation plus a shared experiment runner.

Quickstart::

    import numpy as np
    from repro import AdaWave
    from repro.datasets import running_example

    data = running_example(seed=0)
    model = AdaWave(scale=64).fit(data.points)
    labels = model.labels_          # -1 marks points classified as noise
"""

from repro.core.adawave import AdaWave, AdaWaveResult
from repro.core.multiresolution import MultiResolutionAdaWave
from repro.engine import BatchRunner
from repro.metrics import adjusted_mutual_info, adjusted_rand_index, normalized_mutual_info
from repro.serve import (
    ArtifactStore,
    ClusterModel,
    ClusteringService,
    ModelRegistry,
    ProcessPoolService,
    Telemetry,
    parallel_ingest,
)
from repro.stream import DriftMonitor, StreamController, StreamSketch
from repro.tune import GridPyramid, TuneResult, tune_pyramid
from repro.utils.validation import NotFittedError

__all__ = [
    "AdaWave",
    "AdaWaveResult",
    "ArtifactStore",
    "BatchRunner",
    "ClusterModel",
    "ClusteringService",
    "DriftMonitor",
    "GridPyramid",
    "ModelRegistry",
    "MultiResolutionAdaWave",
    "NotFittedError",
    "ProcessPoolService",
    "StreamController",
    "StreamSketch",
    "Telemetry",
    "TuneResult",
    "parallel_ingest",
    "tune_pyramid",
    "adjusted_mutual_info",
    "adjusted_rand_index",
    "normalized_mutual_info",
    "__version__",
]

__version__ = "1.0.0"
