"""Observability layer: request traces, stage timers, Prometheus, JSON logs.

See :mod:`repro.obs.trace` for the per-request trace context the serving
plane threads from the HTTP edge down to worker processes and back,
:mod:`repro.obs.prometheus` for text-exposition rendering of
``Telemetry.snapshot()``, and :mod:`repro.obs.logging` for the opt-in
structured log stream correlated by trace id.
"""

from repro.obs.logging import (
    JsonFormatter,
    disable_json_logging,
    enable_json_logging,
)
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    parse_exposition_line,
    render_prometheus,
)
from repro.obs.trace import (
    STAGE_ADMISSION_WAIT,
    STAGE_COLLECT,
    STAGE_EDGE_PARSE,
    STAGE_ERROR,
    STAGE_IPC_BACK,
    STAGE_IPC_OUT,
    STAGE_QUEUE_WAIT,
    STAGE_WORKER_LOAD,
    STAGE_WORKER_PREDICT,
    STAGES,
    Span,
    StageTimer,
    Trace,
    WorkerStamps,
    apply_worker_stamps,
    new_trace_id,
)

__all__ = [
    "JsonFormatter",
    "disable_json_logging",
    "enable_json_logging",
    "PROMETHEUS_CONTENT_TYPE",
    "parse_exposition_line",
    "render_prometheus",
    "STAGE_ADMISSION_WAIT",
    "STAGE_COLLECT",
    "STAGE_EDGE_PARSE",
    "STAGE_ERROR",
    "STAGE_IPC_BACK",
    "STAGE_IPC_OUT",
    "STAGE_QUEUE_WAIT",
    "STAGE_WORKER_LOAD",
    "STAGE_WORKER_PREDICT",
    "STAGES",
    "Span",
    "StageTimer",
    "Trace",
    "WorkerStamps",
    "apply_worker_stamps",
    "new_trace_id",
]
