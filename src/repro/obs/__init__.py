"""Observability layer: traces, metrics history, profiling, SLOs, logs.

The explainability half (PR 7): :mod:`repro.obs.trace` threads a
per-request trace context from the HTTP edge down to worker processes and
back, :mod:`repro.obs.prometheus` renders ``Telemetry.snapshot()`` as text
exposition, and :mod:`repro.obs.logging` emits the opt-in structured log
stream correlated by trace id.

The monitoring half (continuous): :mod:`repro.obs.timeseries` keeps
fixed-memory windowed history of every serving signal,
:mod:`repro.obs.sysmon` samples CPU/RSS/loop-lag on a cadence,
:mod:`repro.obs.slo` evaluates declarative objectives as multi-window burn
rates (and owns :func:`~repro.obs.slo.fire_contained`, the one containment
idiom for user callbacks), and :mod:`repro.obs.profiler` answers "where
does the time go" with collapsed-stack flame graphs on demand.
"""

from repro.obs.logging import (
    JsonFormatter,
    disable_json_logging,
    enable_json_logging,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    parse_exposition_line,
    render_prometheus,
)
from repro.obs.slo import Objective, SloMonitor, fire_contained
from repro.obs.sysmon import SystemMonitor, attach_monitor
from repro.obs.timeseries import RingSeries, TimeSeriesStore
from repro.obs.trace import (
    STAGE_ADMISSION_WAIT,
    STAGE_COLLECT,
    STAGE_EDGE_PARSE,
    STAGE_ERROR,
    STAGE_IPC_BACK,
    STAGE_IPC_OUT,
    STAGE_QUEUE_WAIT,
    STAGE_WORKER_LOAD,
    STAGE_WORKER_PREDICT,
    STAGES,
    Span,
    StageTimer,
    Trace,
    WorkerStamps,
    apply_worker_stamps,
    new_trace_id,
)

__all__ = [
    "JsonFormatter",
    "disable_json_logging",
    "enable_json_logging",
    "SamplingProfiler",
    "PROMETHEUS_CONTENT_TYPE",
    "parse_exposition_line",
    "render_prometheus",
    "Objective",
    "SloMonitor",
    "fire_contained",
    "SystemMonitor",
    "attach_monitor",
    "RingSeries",
    "TimeSeriesStore",
    "STAGE_ADMISSION_WAIT",
    "STAGE_COLLECT",
    "STAGE_EDGE_PARSE",
    "STAGE_ERROR",
    "STAGE_IPC_BACK",
    "STAGE_IPC_OUT",
    "STAGE_QUEUE_WAIT",
    "STAGE_WORKER_LOAD",
    "STAGE_WORKER_PREDICT",
    "STAGES",
    "Span",
    "StageTimer",
    "Trace",
    "WorkerStamps",
    "apply_worker_stamps",
    "new_trace_id",
]
