"""Resource-accounting daemon: CPU, RSS, loop lag and queue depth on a cadence.

The serving plane self-heals (dead workers respawn, admission sheds load),
but nothing watches the resources those mechanisms exist to protect: a
worker leaking RSS, a parent pegging a core, an edge event loop stalling
under a slow handler.  :class:`SystemMonitor` closes that gap with one
daemon thread that, every ``interval`` seconds:

* rolls the serving aggregates into the windowed time-series store
  (:meth:`repro.serve.metrics.Telemetry.sample_series` -- request/error
  rates, stage quantiles, queue depth);
* samples the parent's and every worker process's CPU seconds and RSS
  (``/proc/<pid>/stat`` / ``statm`` where available,
  ``resource.getrusage`` fallback for the parent);
* probes the edge event loop's scheduling lag when a probe is attached;
* evaluates any attached :class:`repro.obs.slo.SloMonitor` objectives.

Everything lands in ``telemetry.series`` under stable names
(``proc.parent.cpu_seconds``, ``proc.worker.<i>.rss_bytes``,
``edge.loop_lag_seconds``, ``workers.alive`` ...), so the same windowed
``rate()``/``quantile()`` queries answer "is RSS creeping" exactly like
"is p99 climbing".  :meth:`SystemMonitor.health` turns the latest samples
into the graded ``ok | degraded`` verdict (with machine-readable reasons)
the edge's ``/healthz`` and ``/readyz`` serve.

A sampling pass never raises: per-tick failures are contained and counted
(``telemetry.snapshot()["callbacks"]``), because monitoring must never be
the thing that takes the service down.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None  # type: ignore[assignment]

#: Default seconds between sampling passes.
DEFAULT_INTERVAL = 0.25

#: Edge event-loop lag (seconds) above which health degrades.
DEFAULT_LAG_THRESHOLD = 0.25

_CLK_TCK: Optional[float]
try:
    _CLK_TCK = float(os.sysconf("SC_CLK_TCK"))
except (AttributeError, ValueError, OSError):  # pragma: no cover - non-POSIX
    _CLK_TCK = None

_PAGE_SIZE: Optional[float]
try:
    _PAGE_SIZE = float(os.sysconf("SC_PAGE_SIZE"))
except (AttributeError, ValueError, OSError):  # pragma: no cover - non-POSIX
    _PAGE_SIZE = None


def read_proc_cpu_seconds(pid: int) -> Optional[float]:
    """CPU seconds (user + system) consumed by ``pid``, from ``/proc``.

    Returns ``None`` where ``/proc`` is unavailable or the process is gone
    -- callers treat that as "no sample this tick", never an error.
    """
    if _CLK_TCK is None or _CLK_TCK <= 0:  # pragma: no cover - non-POSIX
        return None
    try:
        with open(f"/proc/{int(pid)}/stat", "rb") as handle:
            data = handle.read()
    except OSError:
        return None
    # The comm field (2) may contain spaces and parentheses; everything
    # after the *last* ')' is the well-formed space-separated tail, where
    # utime/stime are fields 14/15 of the full line (tail indices 11/12).
    tail = data[data.rfind(b")") + 1:].split()
    try:
        utime = int(tail[11])
        stime = int(tail[12])
    except (IndexError, ValueError):  # pragma: no cover - malformed stat
        return None
    return (utime + stime) / _CLK_TCK


def read_proc_rss_bytes(pid: int) -> Optional[float]:
    """Resident set size of ``pid`` in bytes, from ``/proc/<pid>/statm``."""
    if _PAGE_SIZE is None or _PAGE_SIZE <= 0:  # pragma: no cover - non-POSIX
        return None
    try:
        with open(f"/proc/{int(pid)}/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


def self_usage() -> Optional[Dict[str, float]]:
    """Own-process CPU seconds and peak RSS via ``getrusage`` (the fallback).

    ``ru_maxrss`` is the lifetime *peak*, not the current level, and is
    reported in kilobytes on Linux -- good enough as a floor when ``/proc``
    is unreadable.
    """
    if resource is None:  # pragma: no cover - non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "cpu_seconds": float(usage.ru_utime + usage.ru_stime),
        "rss_bytes": float(usage.ru_maxrss) * 1024.0,
    }


class SystemMonitor:
    """Daemon sampler feeding the serving time-series store.

    Parameters
    ----------
    telemetry:
        The :class:`~repro.serve.metrics.Telemetry` to sample; its
        ``series`` store receives every sample and its
        :meth:`~repro.serve.metrics.Telemetry.sample_series` is invoked
        each tick, so request-rate history accrues alongside the resource
        history.
    interval:
        Seconds between sampling passes (daemon thread; start with
        :meth:`start`, or call :meth:`sample` manually from tests).
    pool:
        Optional worker pool (duck-typed: ``pids()`` and ``alive()``, as
        :class:`~repro.serve.procpool.ProcessWorkerPool` provides) whose
        member processes are sampled per worker index.
    loop_lag:
        Optional zero-argument callable returning the edge event loop's
        current scheduling lag in seconds (``None`` to skip a tick) --
        :meth:`repro.serve.edge.EdgeThread.loop_lag` is the intended probe.
    slos:
        Optional :class:`repro.obs.slo.SloMonitor` evaluated after every
        sampling pass, so burn-rate alerts fire on the monitor's cadence
        and :meth:`health` can report burning objectives.
    lag_threshold:
        Loop lag (seconds) above which :meth:`health` degrades.
    """

    def __init__(
        self,
        telemetry: Any,
        *,
        interval: float = DEFAULT_INTERVAL,
        pool: Optional[Any] = None,
        loop_lag: Optional[Callable[[], Optional[float]]] = None,
        slos: Optional[Any] = None,
        lag_threshold: float = DEFAULT_LAG_THRESHOLD,
    ) -> None:
        if float(interval) <= 0.0:
            raise ValueError(f"interval must be > 0 seconds; got {interval}.")
        self.telemetry = telemetry
        self.interval = float(interval)
        self.pool = pool
        self.loop_lag = loop_lag
        self.slos = slos
        self.lag_threshold = float(lag_threshold)
        self.samples = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- sampling ----------------------------------------------------------------

    def sample(self, at: Optional[float] = None) -> Dict[str, Any]:
        """One full sampling pass; returns what was recorded (for tests).

        Never raises: a failing probe is contained, counted in
        ``errors`` and reported through the telemetry's callback-error
        channel.
        """
        at = time.monotonic() if at is None else float(at)
        recorded: Dict[str, Any] = {"at": at}
        try:
            self.telemetry.sample_series(at)
            store = self.telemetry.series
            pid = os.getpid()
            cpu = read_proc_cpu_seconds(pid)
            rss = read_proc_rss_bytes(pid)
            if cpu is None or rss is None:  # pragma: no cover - non-/proc host
                usage = self_usage()
                if usage is not None:
                    cpu = usage["cpu_seconds"] if cpu is None else cpu
                    rss = usage["rss_bytes"] if rss is None else rss
            if cpu is not None:
                store.observe("proc.parent.cpu_seconds", cpu, kind="counter", at=at)
                recorded["parent_cpu_seconds"] = cpu
            if rss is not None:
                store.observe("proc.parent.rss_bytes", rss, kind="gauge", at=at)
                recorded["parent_rss_bytes"] = rss
            if self.pool is not None:
                alive = self.pool.alive()
                store.observe("workers.alive", sum(alive), kind="gauge", at=at)
                store.observe("workers.total", len(alive), kind="gauge", at=at)
                recorded["workers_alive"] = sum(alive)
                recorded["workers_total"] = len(alive)
                workers: Dict[int, Dict[str, float]] = {}
                for index, worker_pid in enumerate(self.pool.pids()):
                    if worker_pid is None or not alive[index]:
                        continue
                    worker_cpu = read_proc_cpu_seconds(worker_pid)
                    worker_rss = read_proc_rss_bytes(worker_pid)
                    entry: Dict[str, float] = {}
                    if worker_cpu is not None:
                        store.observe(
                            f"proc.worker.{index}.cpu_seconds", worker_cpu,
                            kind="counter", at=at,
                        )
                        entry["cpu_seconds"] = worker_cpu
                    if worker_rss is not None:
                        store.observe(
                            f"proc.worker.{index}.rss_bytes", worker_rss,
                            kind="gauge", at=at,
                        )
                        entry["rss_bytes"] = worker_rss
                    if entry:
                        workers[index] = entry
                recorded["workers"] = workers
            if self.loop_lag is not None:
                lag = self.loop_lag()
                if lag is not None:
                    store.observe(
                        "edge.loop_lag_seconds", float(lag), kind="gauge", at=at
                    )
                    recorded["loop_lag_seconds"] = float(lag)
            if self.slos is not None:
                recorded["slo"] = self.slos.evaluate(store, at)
            with self._lock:
                self.samples += 1
        except Exception as error:
            with self._lock:
                self.errors += 1
            self.telemetry.record_callback_error("sysmon", error)
        return recorded

    # -- health ------------------------------------------------------------------

    def health(self, at: Optional[float] = None) -> Dict[str, Any]:
        """Graded verdict over the latest samples: ``ok`` or ``degraded``.

        Reasons are machine-readable tokens -- ``workers_dead`` (any pool
        slot without a live process), ``loop_lag`` (edge event loop slower
        than ``lag_threshold``), ``slo_burning:<name>`` (an objective's
        burn rate over threshold on every window) -- so callers can branch
        on them without parsing prose.
        """
        at = time.monotonic() if at is None else float(at)
        reasons: List[str] = []
        detail: Dict[str, Any] = {}
        if self.pool is not None:
            alive = self.pool.alive()
            dead = len(alive) - sum(alive)
            detail["workers_alive"] = sum(alive)
            detail["workers_total"] = len(alive)
            if dead:
                reasons.append("workers_dead")
        lag = self.telemetry.series.latest("edge.loop_lag_seconds")
        if lag is not None:
            detail["loop_lag_seconds"] = lag
            if lag > self.lag_threshold:
                reasons.append("loop_lag")
        if self.slos is not None:
            burning = self.slos.burning()
            if burning:
                detail["slo_burning"] = list(burning)
                reasons.extend(f"slo_burning:{name}" for name in burning)
        return {
            "status": "degraded" if reasons else "ok",
            "reasons": reasons,
            "detail": detail,
            "sampled": self.samples,
            "at": at,
        }

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "SystemMonitor":
        """Begin sampling on the daemon thread (idempotent); returns self."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-obs-sysmon", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        # Sample immediately so health() has data within one interval of
        # start(), then settle onto the cadence.
        self.sample()
        while not self._stop.wait(self.interval):
            self.sample()

    def stop(self) -> None:
        """Stop the sampler thread (idempotent; safe if never started)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    @property
    def running(self) -> bool:
        """True while the daemon sampler thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def __enter__(self) -> "SystemMonitor":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SystemMonitor(interval={self.interval}, running={self.running}, "
            f"samples={self.samples}, errors={self.errors})"
        )


def attach_monitor(
    service: Any,
    *,
    interval: float = DEFAULT_INTERVAL,
    edge: Optional[Any] = None,
    slos: Optional[Any] = None,
    lag_threshold: float = DEFAULT_LAG_THRESHOLD,
    start: bool = True,
) -> SystemMonitor:
    """Build, attach and (by default) start a monitor for ``service``.

    The monitor lands on ``service.monitor`` -- the edge reads it there
    for graded health -- and the service's ``close()`` stops it, so the
    sampler can never outlive the thing it watches.  ``edge`` (an
    :class:`~repro.serve.edge.EdgeThread` or anything with a ``loop_lag``
    method) wires the event-loop probe in.
    """
    monitor = SystemMonitor(
        service.telemetry,
        interval=interval,
        pool=getattr(service, "pool", None),
        loop_lag=None if edge is None else edge.loop_lag,
        slos=slos,
        lag_threshold=lag_threshold,
    )
    service.monitor = monitor
    if start:
        monitor.start()
    return monitor
