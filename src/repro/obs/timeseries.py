"""Fixed-memory windowed time series over serving telemetry.

:class:`~repro.serve.metrics.Telemetry` answers "how is the service doing
*right now*" -- every counter and reservoir is cumulative or point-in-time.
Operating a serving plane needs the other axis too: was the request rate
climbing before the p99 spike, is RSS creeping, did the error rate start
burning five minutes ago or five seconds ago.  This module supplies that
memory at constant cost: a :class:`TimeSeriesStore` of per-series ring
buffers, each holding the last ``capacity`` buckets of ``step`` seconds.

Three series kinds cover everything the monitoring plane records:

* ``counter`` -- a monotonically increasing cumulative value sampled on a
  cadence (request totals, CPU seconds).  :meth:`TimeSeriesStore.rate`
  answers "events per second over the last window" from the first/last
  samples inside the window, tolerating counter resets (a restart clamps
  the delta at zero instead of going negative).
* ``gauge`` -- an instantaneous level (queue depth, RSS bytes, event-loop
  lag).  Buckets aggregate ``count/sum/min/max/last`` so a 1-second bucket
  still shows the spike a single sample would miss;
  :meth:`TimeSeriesStore.quantile` computes windowed quantiles over the
  bucket ``last`` values.
* ``histogram`` -- a cumulative bucket-count vector (the shape
  :class:`~repro.serve.metrics.Telemetry`'s per-stage histograms already
  have).  Sampling the vector on a cadence makes *windowed* latency
  quantiles possible: the difference between the newest and the
  pre-window vectors is the histogram of exactly the observations that
  landed inside the window, and :meth:`TimeSeriesStore.quantile` reads
  p50/p99 off it.

Everything is bounded: ``capacity`` buckets per series, ``max_series``
series per store (late registrations are dropped and counted, never
unbounded), and all timestamps ride the monotonic clock so scrapers are
immune to wall-clock steps.  The store itself never samples anything --
:meth:`Telemetry.sample_series` and :class:`repro.obs.sysmon.SystemMonitor`
push into it on their own cadence, so an unmonitored service pays nothing.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default bucket width in seconds.
DEFAULT_STEP = 1.0

#: Default buckets retained per series (300 x 1s = five minutes).
DEFAULT_CAPACITY = 300

#: Default cap on distinct series names per store.
DEFAULT_MAX_SERIES = 512

_KINDS = ("counter", "gauge", "histogram")


class RingSeries:
    """One named series: a ring of ``capacity`` aggregating time buckets.

    Observations land in the bucket ``floor(at / step)``; the ring index is
    that bucket id modulo ``capacity``, and a slot whose stored id differs
    from the incoming one is simply reset -- old data ages out by being
    overwritten, with no compaction pass and no allocation after
    construction (histogram vectors are the one exception: each slot holds
    the latest sampled vector for its bucket).
    """

    __slots__ = (
        "kind", "step", "capacity", "bounds",
        "_ids", "_last", "_min", "_max", "_sum", "_count", "_vectors",
    )

    def __init__(
        self,
        kind: str,
        *,
        step: float = DEFAULT_STEP,
        capacity: int = DEFAULT_CAPACITY,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}; got {kind!r}.")
        if float(step) <= 0.0:
            raise ValueError(f"step must be > 0 seconds; got {step}.")
        if int(capacity) < 2:
            raise ValueError(f"capacity must be >= 2 buckets; got {capacity}.")
        if kind == "histogram" and not bounds:
            raise ValueError("histogram series need their bucket bounds.")
        self.kind = kind
        self.step = float(step)
        self.capacity = int(capacity)
        self.bounds = None if bounds is None else tuple(float(b) for b in bounds)
        self._ids = [-1] * self.capacity
        self._last = [0.0] * self.capacity
        if kind == "gauge":
            self._min = [0.0] * self.capacity
            self._max = [0.0] * self.capacity
            self._sum = [0.0] * self.capacity
            self._count = [0] * self.capacity
        else:
            self._min = self._max = self._sum = self._count = None
        self._vectors: Optional[List[Optional[List[int]]]] = (
            [None] * self.capacity if kind == "histogram" else None
        )

    # -- recording ---------------------------------------------------------------

    def observe(self, value: Any, at: float) -> None:
        """Fold one sample taken at monotonic instant ``at`` into its bucket."""
        bucket = int(at // self.step)
        slot = bucket % self.capacity
        fresh = self._ids[slot] != bucket
        self._ids[slot] = bucket
        if self.kind == "histogram":
            # The sampled cumulative vector replaces the slot's view: within
            # one bucket the newest sample subsumes the older ones.
            self._vectors[slot] = [int(v) for v in value]
            self._last[slot] = float(sum(value))
            return
        value = float(value)
        self._last[slot] = value
        if self.kind == "gauge":
            if fresh:
                self._min[slot] = self._max[slot] = self._sum[slot] = value
                self._count[slot] = 1
            else:
                self._min[slot] = min(self._min[slot], value)
                self._max[slot] = max(self._max[slot], value)
                self._sum[slot] += value
                self._count[slot] += 1

    # -- windowed reads ----------------------------------------------------------

    def _window_slots(self, window: float, at: float) -> List[int]:
        """Slot indices with data inside ``[at - window, at]``, oldest first."""
        newest = int(at // self.step)
        oldest = newest - min(
            int(math.ceil(window / self.step)), self.capacity - 1
        )
        # Never-written slots hold id -1; a window reaching past t=0 must
        # not sweep them in as phantom zero samples.
        slots = [
            slot
            for slot in range(self.capacity)
            if 0 <= self._ids[slot] and oldest <= self._ids[slot] <= newest
        ]
        slots.sort(key=lambda slot: self._ids[slot])
        return slots

    def latest(self) -> Optional[float]:
        """Most recent sample value (cumulative for counters), or ``None``."""
        newest = max(self._ids)
        if newest < 0:
            return None
        return self._last[newest % self.capacity]

    def rate(self, window: float, at: float) -> float:
        """Counter increase per second across the window (0.0 when unknown)."""
        slots = self._window_slots(window, at)
        if len(slots) < 2:
            return 0.0
        first, last = slots[0], slots[-1]
        span = (self._ids[last] - self._ids[first]) * self.step
        if span <= 0.0:
            return 0.0
        # A restarted counter samples lower than before; clamping the delta
        # reports a quiet window instead of a negative rate.
        return max(self._last[last] - self._last[first], 0.0) / span

    def quantile(self, q: float, window: float, at: float) -> Optional[float]:
        """Windowed quantile; ``None`` when the window holds no data.

        Gauges take the quantile over their per-bucket ``last`` values.
        Histograms subtract the newest cumulative vector from the last one
        *before* the window (or zero), leaving the distribution of exactly
        the in-window observations, and return the upper bound of the
        bucket the ``q``-th observation falls in.
        """
        if not 0.0 <= float(q) <= 1.0:
            raise ValueError(f"q must be in [0, 1]; got {q}.")
        slots = self._window_slots(window, at)
        if not slots:
            return None
        if self.kind == "histogram":
            return self._histogram_quantile(float(q), slots, at, window)
        values = sorted(self._last[slot] for slot in slots)
        # Nearest-rank on the bucket aggregates: cheap and monotone in q.
        index = min(int(q * len(values)), len(values) - 1)
        return values[index]

    def _window_deltas(self, slots: List[int]) -> Optional[List[int]]:
        """In-window observation counts per bucket: newest minus pre-window."""
        newest = self._vectors[slots[-1]]
        if newest is None:
            return None
        oldest_in_window = self._ids[slots[0]]
        baseline: Optional[List[int]] = None
        baseline_id = -1
        for slot in range(self.capacity):
            bucket = self._ids[slot]
            if 0 <= bucket < oldest_in_window and bucket > baseline_id:
                if self._vectors[slot] is not None:
                    baseline_id = bucket
                    baseline = self._vectors[slot]
        if baseline is None:
            baseline = [0] * len(newest)
        return [max(n - b, 0) for n, b in zip(newest, baseline)]

    def fraction_above(
        self, threshold: float, window: float, at: float
    ) -> Optional[float]:
        """Share of in-window observations above ``threshold`` (histograms).

        An observation counts as "above" when its bucket's upper bound
        exceeds ``threshold`` -- the same upper-bound convention
        :meth:`quantile` reports, so the two are mutually consistent.
        ``None`` when the window holds no observations.
        """
        if self.kind != "histogram":
            raise ValueError(
                f"fraction_above() needs a histogram series; this is a "
                f"{self.kind}."
            )
        slots = self._window_slots(window, at)
        if not slots:
            return None
        deltas = self._window_deltas(slots)
        if deltas is None:
            return None
        total = sum(deltas)
        if total == 0:
            return None
        threshold = float(threshold)
        bad = sum(
            count
            for index, count in enumerate(deltas)
            if index >= len(self.bounds) or self.bounds[index] > threshold
        )
        return bad / total

    def _histogram_quantile(
        self, q: float, slots: List[int], at: float, window: float
    ) -> Optional[float]:
        deltas = self._window_deltas(slots)
        if deltas is None:
            return None
        total = sum(deltas)
        if total == 0:
            return None
        target = q * total
        running = 0
        for index, count in enumerate(deltas):
            running += count
            if running >= target and count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]  # +Inf overflow: report the top bound
        return self.bounds[-1]

    def points(self, window: float, at: float) -> List[List[float]]:
        """Chronological ``[t, value, ...]`` rows for the in-window buckets.

        Gauges emit ``[t, last, min, max]``; counters ``[t, cumulative]``;
        histograms ``[t, observation_count]`` (their quantiles are read via
        :meth:`quantile`, not re-shipped per bucket).
        """
        rows: List[List[float]] = []
        for slot in self._window_slots(window, at):
            t = self._ids[slot] * self.step
            if self.kind == "gauge":
                rows.append([t, self._last[slot], self._min[slot], self._max[slot]])
            else:
                rows.append([t, self._last[slot]])
        return rows


class TimeSeriesStore:
    """Thread-safe collection of named :class:`RingSeries`.

    Parameters
    ----------
    step:
        Bucket width in seconds shared by every series (1s default; pass
        10/60 for coarser rollups and a proportionally longer horizon).
    capacity:
        Buckets retained per series; the horizon is ``step * capacity``.
    max_series:
        Hard cap on distinct series.  Registrations beyond it are dropped
        (and counted in ``dropped_series``) rather than growing without
        bound -- series names must be bounded-cardinality by construction.
    """

    def __init__(
        self,
        *,
        step: float = DEFAULT_STEP,
        capacity: int = DEFAULT_CAPACITY,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        if float(step) <= 0.0:
            raise ValueError(f"step must be > 0 seconds; got {step}.")
        if int(capacity) < 2:
            raise ValueError(f"capacity must be >= 2 buckets; got {capacity}.")
        if int(max_series) < 1:
            raise ValueError(f"max_series must be >= 1; got {max_series}.")
        self.step = float(step)
        self.capacity = int(capacity)
        self.max_series = int(max_series)
        self.dropped_series = 0
        self._series: Dict[str, RingSeries] = {}
        self._lock = threading.Lock()

    @property
    def horizon(self) -> float:
        """Seconds of history each series can hold."""
        return self.step * self.capacity

    # -- recording ---------------------------------------------------------------

    def observe(
        self,
        name: str,
        value: Any,
        *,
        kind: str = "gauge",
        at: float,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        """Record one sample for ``name`` (the series is created on first use).

        A re-registration under a different kind raises ``ValueError`` --
        silently re-interpreting a counter as a gauge would corrupt every
        window query over it.
        """
        with self._lock:
            series = self._series.get(name)
            if series is None:
                if len(self._series) >= self.max_series:
                    self.dropped_series += 1
                    return
                series = self._series[name] = RingSeries(
                    kind, step=self.step, capacity=self.capacity, bounds=bounds
                )
            elif series.kind != kind:
                raise ValueError(
                    f"series {name!r} is a {series.kind}; cannot record a "
                    f"{kind} sample into it."
                )
            series.observe(value, float(at))

    # -- queries -----------------------------------------------------------------

    def names(self) -> List[str]:
        """Sorted names of every registered series."""
        with self._lock:
            return sorted(self._series)

    def latest(self, name: str) -> Optional[float]:
        """Most recent sample of ``name`` (``None`` for unknown/empty)."""
        with self._lock:
            series = self._series.get(name)
            return None if series is None else series.latest()

    def rate(
        self, name: str, *, window: float = 60.0, at: float
    ) -> float:
        """Per-second increase of counter ``name`` over the last ``window``."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return 0.0
            if series.kind != "counter":
                raise ValueError(
                    f"rate() needs a counter series; {name!r} is a {series.kind}."
                )
            return series.rate(float(window), float(at))

    def quantile(
        self, name: str, q: float, *, window: float = 60.0, at: float
    ) -> Optional[float]:
        """Windowed ``q``-quantile of gauge/histogram ``name`` (None if empty)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return None
            if series.kind == "counter":
                raise ValueError(
                    f"quantile() needs a gauge or histogram series; {name!r} "
                    "is a counter (use rate())."
                )
            return series.quantile(float(q), float(window), float(at))

    def fraction_above(
        self, name: str, threshold: float, *, window: float = 60.0, at: float
    ) -> Optional[float]:
        """Windowed share of histogram ``name``'s observations above ``threshold``."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return None
            return series.fraction_above(
                float(threshold), float(window), float(at)
            )

    def window(
        self, name: str, *, window: Optional[float] = None, at: float
    ) -> List[List[float]]:
        """Chronological bucket rows of ``name`` (full horizon by default)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return []
            span = self.horizon if window is None else float(window)
            return series.points(span, float(at))

    # -- export ------------------------------------------------------------------

    def to_dict(
        self, *, at: float, window: Optional[float] = None
    ) -> Dict[str, Any]:
        """JSON-able view of every series over the last ``window`` seconds.

        Counters carry their windowed per-second ``rate``, gauges their
        ``latest``, histograms windowed ``p50``/``p99`` -- the pre-digested
        numbers a dashboard wants, next to the raw bucket rows.
        """
        span = self.horizon if window is None else float(window)
        at = float(at)
        with self._lock:
            out: Dict[str, Any] = {
                "step": self.step,
                "capacity": self.capacity,
                "window_seconds": span,
                "dropped_series": self.dropped_series,
                "series": {},
            }
            for name, series in sorted(self._series.items()):
                entry: Dict[str, Any] = {
                    "kind": series.kind,
                    "latest": series.latest(),
                }
                if series.kind == "counter":
                    entry["rate"] = series.rate(span, at)
                    entry["points"] = series.points(span, at)
                elif series.kind == "gauge":
                    entry["points"] = series.points(span, at)
                else:
                    entry["count"] = series.latest()
                    entry["p50"] = series.quantile(0.5, span, at)
                    entry["p99"] = series.quantile(0.99, span, at)
                out["series"][name] = entry
            return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"TimeSeriesStore(step={self.step}, capacity={self.capacity}, "
                f"series={len(self._series)})"
            )
