"""Opt-in sampling profiler: collapsed-stack flame graphs from the stdlib.

When the time-series say *that* p99 regressed, the next question is
*where the time goes* -- and answering it must not require restarting the
service under a tracing harness.  :class:`SamplingProfiler` is a daemon
thread that wakes ``hz`` times a second, snapshots every Python thread's
current frame stack via ``sys._current_frames()``, and counts identical
stacks.  The output is collapsed-stack text (``frame;frame;frame count``
per line), the exact input ``flamegraph.pl`` / speedscope / inferno eat.

Honest about its physics:

* it samples only the *current process's* threads -- in a
  :class:`~repro.serve.procpool.ProcessPoolService` the parent's dispatch
  /collect/edge threads are visible, the workers' predict bodies are not
  (profile a single-process service to see those);
* it is statistical -- a frame's count estimates its share of wall time
  across all threads, with ``hz``-resolution granularity;
* the profiled process pays for the walk only while a profile is running
  -- an idle profiler costs literally nothing (no thread, no hooks), which
  is what makes shipping it always-available safe.

The HTTP edge drives it via ``POST /debug/profile`` (``start`` / ``stop``
actions) and ``GET /debug/profile`` (collapsed stacks of the last -- or
still-running -- capture).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

#: Default sampling frequency (samples per second).
DEFAULT_HZ = 97.0

#: Hard cap on distinct stacks retained (overflow lands in one bucket).
MAX_STACKS = 10_000


def _collect_stacks(
    skip_thread: Optional[int],
) -> List[Tuple[str, ...]]:
    """One sample: every thread's stack as a root-first frame-name tuple."""
    stacks: List[Tuple[str, ...]] = []
    for thread_id, frame in sys._current_frames().items():
        if thread_id == skip_thread:
            continue
        frames: List[str] = []
        while frame is not None:
            code = frame.f_code
            frames.append(f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]})")
            frame = frame.f_back
        frames.reverse()
        stacks.append(tuple(frames))
    return stacks


class SamplingProfiler:
    """Statistical wall-clock profiler over ``sys._current_frames()``.

    Parameters
    ----------
    hz:
        Sampling frequency.  The default (97) is deliberately co-prime
        with common periodic work (10ms ticks, 100ms watchdogs) so the
        sampler does not alias onto it.
    max_seconds:
        Safety bound: a profile left running stops itself after this long,
        so a forgotten ``POST start`` cannot tax the service forever.

    Thread-safe; :meth:`start`/:meth:`stop`/:meth:`collapsed` may be
    called from any thread (the edge calls them from its event loop).
    """

    def __init__(self, *, hz: float = DEFAULT_HZ, max_seconds: float = 60.0) -> None:
        if float(hz) <= 0.0:
            raise ValueError(f"hz must be > 0; got {hz}.")
        if float(max_seconds) <= 0.0:
            raise ValueError(f"max_seconds must be > 0; got {max_seconds}.")
        self.hz = float(hz)
        self.max_seconds = float(max_seconds)
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._truncated = 0
        self._samples = 0
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

    # -- capture -----------------------------------------------------------------

    def start(self, *, hz: Optional[float] = None) -> bool:
        """Begin a fresh capture; returns False if one is already running."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return False
            if hz is not None:
                if float(hz) <= 0.0:
                    raise ValueError(f"hz must be > 0; got {hz}.")
                self.hz = float(hz)
            self._counts = {}
            self._truncated = 0
            self._samples = 0
            self._started_at = time.monotonic()
            self._stopped_at = None
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-obs-profiler", daemon=True
            )
            self._thread.start()
            return True

    def _run(self) -> None:
        interval = 1.0 / self.hz
        deadline = time.monotonic() + self.max_seconds
        my_id = threading.get_ident()
        while not self._stop_event.wait(interval):
            if time.monotonic() >= deadline:
                break
            stacks = _collect_stacks(my_id)
            with self._lock:
                self._samples += 1
                for stack in stacks:
                    if stack in self._counts:
                        self._counts[stack] += 1
                    elif len(self._counts) < MAX_STACKS:
                        self._counts[stack] = 1
                    else:
                        self._truncated += 1
        with self._lock:
            self._stopped_at = time.monotonic()

    def stop(self) -> bool:
        """End the running capture; returns False if none was running."""
        with self._lock:
            thread = self._thread
            if thread is None or not thread.is_alive():
                return False
            self._stop_event.set()
        thread.join(timeout=5.0)
        return True

    @property
    def running(self) -> bool:
        """True while a capture is in progress."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    # -- output ------------------------------------------------------------------

    def collapsed(self) -> str:
        """The capture as collapsed-stack text (``f;g;h count`` per line).

        Callable mid-capture (a snapshot of the counts so far) or after
        :meth:`stop`.  Empty string when nothing was sampled.
        """
        with self._lock:
            lines = [
                f"{';'.join(stack)} {count}"
                for stack, count in sorted(
                    self._counts.items(), key=lambda item: (-item[1], item[0])
                )
            ]
            if self._truncated:
                lines.append(f"[stacks beyond cap] {self._truncated}")
        return "\n".join(lines) + ("\n" if lines else "")

    def report(self) -> Dict[str, Any]:
        """JSON-able status: running flag, sample count, capture duration."""
        with self._lock:
            started = self._started_at
            stopped = self._stopped_at
            if started is None:
                seconds = 0.0
            elif stopped is not None:
                seconds = stopped - started
            else:
                seconds = time.monotonic() - started
            return {
                "running": self._thread is not None and self._thread.is_alive(),
                "hz": self.hz,
                "samples": self._samples,
                "distinct_stacks": len(self._counts),
                "truncated": self._truncated,
                "seconds": seconds,
            }

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SamplingProfiler(hz={self.hz}, running={self.running}, "
            f"samples={self._samples})"
        )
