"""Prometheus text exposition (version 0.0.4) over a Telemetry snapshot.

Everything :class:`~repro.serve.metrics.Telemetry` aggregates -- predict
series, stage histograms, edge routes, counters -- renders to the plain-text
format a stock Prometheus server scrapes, with no third-party client
library:

* counters end in ``_total``;
* the per-stage latency histograms emit proper cumulative
  ``_bucket{le=...}`` series plus ``_sum`` and ``_count`` (the last bucket
  is always ``le="+Inf"`` and equals ``_count``);
* the reservoir-backed latency distributions (per-model predict, per-route
  edge) emit as summaries: ``{quantile="0.5"}`` series plus ``_sum`` and
  ``_count``;
* label values are escaped per the exposition spec (backslash, quote,
  newline).

:func:`render_prometheus` is a pure function of the snapshot dict, so it
can run against a live service, a stored snapshot, or a test fixture
identically; the edge serves it from ``GET /metrics`` when the client's
``Accept`` header asks for ``text/plain``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: The content type an 0.0.4 text exposition must be served under.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Metric-name prefix for everything this module renders.
PREFIX = "repro"


def escape_label_value(value: Any) -> str:
    """Escape a label value per the text-exposition spec."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def format_labels(labels: Mapping[str, Any]) -> str:
    """Render a label mapping as ``{k="v",...}`` (empty string for none)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


def format_value(value: float) -> str:
    """Render a sample value (Prometheus accepts Go-style floats)."""
    value = float(value)
    if value != value:  # pragma: no cover - NaN never emitted by Telemetry
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):  # pragma: no cover - never emitted
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Writer:
    """Accumulates exposition lines, emitting HELP/TYPE once per metric."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._typed: set = set()

    def header(self, name: str, kind: str, help_text: str) -> None:
        if name not in self._typed:
            self._typed.add(name)
            self.lines.append(f"# HELP {name} {help_text}")
            self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: Mapping[str, Any], value: float) -> None:
        self.lines.append(f"{name}{format_labels(labels)} {format_value(value)}")


def _summary(
    writer: _Writer,
    name: str,
    help_text: str,
    labels: Dict[str, Any],
    distribution: Mapping[str, Any],
    count: int,
    total: float,
) -> None:
    """One reservoir-backed distribution as a Prometheus summary."""
    writer.header(name, "summary", help_text)
    for key, value in distribution.items():
        if not key.startswith("p"):
            continue
        quantile = float(key[1:]) / 100.0
        writer.sample(name, {**labels, "quantile": format_value(quantile)}, value)
    writer.sample(f"{name}_sum", labels, total)
    writer.sample(f"{name}_count", labels, count)


def _histogram(
    writer: _Writer,
    name: str,
    help_text: str,
    labels: Dict[str, Any],
    buckets: Iterable[Tuple[Any, int]],
    count: int,
    total: float,
) -> None:
    """One bounded histogram; ``buckets`` are cumulative ``(le, n)`` pairs."""
    writer.header(name, "histogram", help_text)
    for le, cumulative in buckets:
        le_text = "+Inf" if le in ("+Inf", float("inf")) else format_value(float(le))
        writer.sample(f"{name}_bucket", {**labels, "le": le_text}, cumulative)
    writer.sample(f"{name}_sum", labels, total)
    writer.sample(f"{name}_count", labels, count)


def render_prometheus(
    snapshot: Dict[str, Any], *, prefix: str = PREFIX
) -> str:
    """Render a :meth:`Telemetry.snapshot` dict as text exposition 0.0.4.

    Unknown snapshot sections are ignored, missing ones skipped, so the
    function works against any snapshot age.  Returns the full payload
    including the trailing newline the spec requires.
    """
    w = _Writer()

    for model, series in sorted(snapshot.get("predict", {}).items()):
        labels = {"model": model}
        name = f"{prefix}_predict_requests_total"
        w.header(name, "counter", "Executed predict passes per model.")
        w.sample(name, labels, series["count"])
        name = f"{prefix}_predict_rows_total"
        w.header(name, "counter", "Points labeled per model.")
        w.sample(name, labels, series["rows"])
        _summary(
            w,
            f"{prefix}_predict_latency_seconds",
            "Per-pass predict latency (bounded reservoir quantiles).",
            labels,
            series["latency"],
            series["count"],
            series["latency"].get("total", 0.0),
        )

    queue = snapshot.get("queue")
    if queue is not None:
        name = f"{prefix}_queue_depth"
        w.header(name, "gauge", "Admitted-but-unresolved requests right now.")
        w.sample(name, {}, queue["depth"])
        name = f"{prefix}_queue_depth_max"
        w.header(name, "gauge", "High-water mark of the pending-request gauge.")
        w.sample(name, {}, queue["max_depth"])

    rejections = snapshot.get("rejections")
    if rejections is not None:
        name = f"{prefix}_rejections_total"
        w.header(name, "counter", "Requests shed by admission control.")
        for model, count in sorted(rejections.get("by_model", {}).items()):
            w.sample(name, {"model": model}, count)
        if not rejections.get("by_model"):
            w.sample(name, {}, rejections.get("total", 0))

    swaps = snapshot.get("swaps")
    if swaps is not None:
        name = f"{prefix}_swaps_total"
        w.header(name, "counter", "Blue/green publications per serving alias.")
        for alias, count in sorted(swaps.get("by_name", {}).items()):
            w.sample(name, {"name": alias}, count)
        if not swaps.get("by_name"):
            w.sample(name, {}, swaps.get("count", 0))

    workers = snapshot.get("workers")
    if workers is not None:
        name = f"{prefix}_worker_respawns_total"
        w.header(name, "counter", "Dead worker processes replaced, per slot.")
        for worker, count in sorted(workers.get("by_worker", {}).items()):
            w.sample(name, {"worker": worker}, count)
        if not workers.get("by_worker"):
            w.sample(name, {}, workers.get("respawns", 0))

    drift = snapshot.get("drift")
    if drift is not None:
        name = f"{prefix}_drift_checks_total"
        w.header(name, "counter", "Drift checks run against the live sketch.")
        w.sample(name, {}, drift.get("checks", 0))
        name = f"{prefix}_drift_flagged_total"
        w.header(name, "counter", "Drift checks that flagged drift.")
        w.sample(name, {}, drift.get("drifted", 0))

    callbacks = snapshot.get("callbacks")
    if callbacks is not None:
        name = f"{prefix}_callback_errors_total"
        w.header(name, "counter", "Contained user-callback failures.")
        w.sample(name, {}, callbacks.get("errors", 0))

    if "sink_errors" in snapshot:
        name = f"{prefix}_sink_errors_total"
        w.header(name, "counter", "Contained telemetry-sink failures.")
        w.sample(name, {}, snapshot["sink_errors"])

    for stage, series in sorted(snapshot.get("stages", {}).items()):
        _histogram(
            w,
            f"{prefix}_stage_seconds",
            "Per-stage request latency across the serving path.",
            {"stage": stage},
            series.get("buckets", ()),
            series["count"],
            series.get("seconds_total", 0.0),
        )

    edge = snapshot.get("edge", {})
    for route, series in sorted(edge.get("routes", {}).items()):
        name = f"{prefix}_edge_requests_total"
        w.header(name, "counter", "HTTP requests answered, by route and status.")
        for status, count in sorted(series.get("by_status", {}).items()):
            w.sample(name, {"route": route, "status": status}, count)
        _summary(
            w,
            f"{prefix}_edge_latency_seconds",
            "Edge round-trip latency per route (reservoir quantiles).",
            {"route": route},
            series.get("latency", {}),
            series["count"],
            series.get("latency", {}).get("total", 0.0),
        )
    if "active_requests" in edge:
        name = f"{prefix}_edge_active_requests"
        w.header(name, "gauge", "HTTP requests currently being processed.")
        w.sample(name, {}, edge["active_requests"])

    traces = snapshot.get("traces")
    if traces is not None:
        name = f"{prefix}_traces_total"
        w.header(name, "counter", "Request traces closed.")
        w.sample(name, {}, traces.get("count", 0))
        name = f"{prefix}_trace_errors_total"
        w.header(name, "counter", "Traces closed with an error span.")
        w.sample(name, {}, traces.get("errors", 0))
        name = f"{prefix}_trace_deadline_violations_total"
        w.header(name, "counter", "Closed traces that exceeded their deadline.")
        w.sample(name, {}, traces.get("deadline_violations", 0))

    if "uptime_seconds" in snapshot:
        name = f"{prefix}_uptime_seconds"
        w.header(name, "gauge", "Age of this telemetry (monotonic seconds).")
        w.sample(name, {}, snapshot["uptime_seconds"])

    series_view = snapshot.get("series")
    if series_view is not None:
        for series_name, entry in sorted(series_view.get("series", {}).items()):
            labels = {"series": series_name}
            latest = entry.get("latest")
            if latest is not None:
                name = f"{prefix}_series_latest"
                w.header(name, "gauge",
                         "Most recent sample of each windowed time-series.")
                w.sample(name, labels, latest)
            if entry.get("kind") == "counter":
                name = f"{prefix}_series_rate"
                w.header(name, "gauge",
                         "Windowed per-second rate of each counter series.")
                w.sample(name, labels, entry.get("rate", 0.0))
            elif entry.get("kind") == "histogram":
                name = f"{prefix}_series_quantile"
                w.header(name, "gauge",
                         "Windowed latency quantiles of histogram series.")
                for q_key, q in (("p50", "0.5"), ("p99", "0.99")):
                    value = entry.get(q_key)
                    if value is not None:
                        w.sample(name, {**labels, "quantile": q}, value)
        if series_view.get("dropped_series"):
            name = f"{prefix}_series_dropped_total"
            w.header(name, "counter",
                     "Series registrations dropped at the store's cap.")
            w.sample(name, {}, series_view["dropped_series"])

    return "\n".join(w.lines) + "\n"


def parse_exposition_line(line: str) -> Optional[Tuple[str, Dict[str, str], float]]:
    """Parse one non-comment exposition line into ``(name, labels, value)``.

    Returns ``None`` for comment/blank lines and raises ``ValueError`` for
    anything malformed -- the conformance test walks every rendered line
    through this, so the renderer can never silently drift off-spec.
    """
    if not line or line.startswith("#"):
        return None
    brace = line.find("{")
    labels: Dict[str, str] = {}
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            raise ValueError(f"unbalanced braces in exposition line: {line!r}")
        name = line[:brace]
        label_body = line[brace + 1:close]
        value_text = line[close + 1:].strip()
        cursor = 0
        while cursor < len(label_body):
            eq = label_body.index("=", cursor)
            key = label_body[cursor:eq]
            if not label_body[eq + 1] == '"':
                raise ValueError(f"unquoted label value in: {line!r}")
            end = eq + 2
            while True:
                end = label_body.index('"', end)
                if label_body[end - 1] != "\\":
                    break
                end += 1
            labels[key] = label_body[eq + 2:end]
            cursor = end + 1
            if cursor < len(label_body):
                if label_body[cursor] != ",":
                    raise ValueError(f"malformed label separator in: {line!r}")
                cursor += 1
    else:
        name, _, value_text = line.partition(" ")
        value_text = value_text.strip()
    if not name or not all(
        c.isalnum() or c in "_:" for c in name
    ) or name[0].isdigit():
        raise ValueError(f"invalid metric name in exposition line: {line!r}")
    if value_text == "+Inf":
        value = float("inf")
    elif value_text == "-Inf":
        value = float("-inf")
    else:
        value = float(value_text)
    return name, labels, value
