"""Structured JSON logging with trace-id correlation, off by default.

The serving components log through plain stdlib loggers
(``repro.serve.edge``, ``repro.stream.controller``, ...), passing
``extra={"trace_id": ...}`` where a trace context exists.  By default those
records go nowhere beyond whatever handlers the embedding application
configured -- importing :mod:`repro` never touches global logging state.

:func:`enable_json_logging` opts a process in: it attaches a
:class:`JsonFormatter` handler to the ``repro`` logger so every record
emits as one JSON object per line (timestamp, level, logger, message,
trace_id when present, exception text when present), which downstream log
pipelines can join against the trace ids in ``snapshot()["traces"]`` and
the ``X-Trace-Id`` response header.

Formatting failures are contained exactly like the telemetry sink: a
record that cannot be serialised degrades to a minimal JSON envelope
instead of raising into the serving path.
"""

from __future__ import annotations

import json
import logging
import sys
from datetime import datetime, timezone
from typing import Any, Dict, Optional, TextIO

#: Root logger every repro component logs under.
ROOT_LOGGER = "repro"

#: LogRecord attributes that are plumbing, not payload; anything *else* on a
#: record (i.e. passed via ``extra=``) is forwarded into the JSON object.
_STANDARD_ATTRS = frozenset(
    vars(
        logging.LogRecord("x", logging.INFO, "x", 0, "x", None, None)
    ).keys()
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """Format each record as a single-line JSON object.

    Keys: ``ts`` (UTC ISO-8601), ``level``, ``logger``, ``message``, plus
    any ``extra=`` attributes (notably ``trace_id``) and ``exc`` when the
    record carries exception info.  A record whose extras defeat
    ``json.dumps`` falls back to stringifying them; the formatter never
    raises.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": datetime.fromtimestamp(
                record.created, tz=timezone.utc
            ).isoformat(),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in vars(record).items():
            if key not in _STANDARD_ATTRS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        try:
            return json.dumps(payload, default=str)
        except Exception:
            # Contained: never let a weird extra break the serving path.
            return json.dumps(
                {
                    "ts": payload["ts"],
                    "level": record.levelname,
                    "logger": record.name,
                    "message": str(record.getMessage()),
                }
            )


_handler: Optional[logging.Handler] = None


def enable_json_logging(
    level: int = logging.INFO, stream: Optional[TextIO] = None
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``repro`` logger tree.

    Idempotent: calling twice replaces the previous handler rather than
    stacking duplicates.  Returns the installed handler (useful for tests
    that want to point ``stream`` at a buffer).
    """
    global _handler
    logger = logging.getLogger(ROOT_LOGGER)
    if _handler is not None:
        logger.removeHandler(_handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    # The embedding app's root handlers would double-print every record.
    logger.propagate = False
    _handler = handler
    return handler


def disable_json_logging() -> None:
    """Detach the handler installed by :func:`enable_json_logging`."""
    global _handler
    if _handler is None:
        return
    logger = logging.getLogger(ROOT_LOGGER)
    logger.removeHandler(_handler)
    logger.propagate = True
    _handler = None
