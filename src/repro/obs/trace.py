"""Request traces: one id, monotonic stage spans, end-to-end accounting.

A request entering the serving plane crosses many hands -- the HTTP edge
parses it, admission control may park it, the dispatcher queues it, a worker
process answers it, the collector resolves it.  One wall-clock number per
predict pass cannot say *where* a p99 went; a :class:`Trace` can: it is a
tiny bag of ``(stage, start, end)`` spans stamped with :func:`time.monotonic`
at every hop, created at the edge (or at ``submit`` for direct callers) and
closed by whoever resolves the request.

The monotonic clock is comparable across processes on one host (it is
``CLOCK_MONOTONIC`` on Linux), so worker processes stamp their dequeue /
load / predict instants directly and the parent turns the stamps into
``ipc-out`` / ``worker-load`` / ``worker-predict`` / ``ipc-back`` spans
without any clock negotiation.  Spans are laid end to end by construction,
so ``sum(span durations) <= total`` always holds (:meth:`Trace.close`
clamps the total against residual cross-process skew) and
:meth:`Trace.coverage` directly answers "how much of the measured round
trip do the stages explain?".

One shipped micro-batch serves many coalesced requests; the shared worker
spans fan back out by being added to every member trace.  A request whose
worker dies is *closed with an error span* covering the unaccounted tail --
doomed traces never leak, they surface in the slow-trace ring with the
failure attached.

:class:`StageTimer` is the offline sibling: a plain accumulating named-stage
timer threaded through :func:`repro.core.pipeline.run_grid_pipeline` so a
single fit (or a drift re-tune) records the same kind of stage breakdown
into tuning/artifact provenance.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Canonical stage names, in serving-path order.  Components are free to
#: stamp additional stages (the histograms key on whatever arrives), but the
#: serving plane itself only emits these.
STAGE_EDGE_PARSE = "edge-parse"
STAGE_ADMISSION_WAIT = "admission-wait"
STAGE_QUEUE_WAIT = "queue-wait"
STAGE_IPC_OUT = "ipc-out"
STAGE_WORKER_LOAD = "worker-load"
STAGE_WORKER_PREDICT = "worker-predict"
STAGE_IPC_BACK = "ipc-back"
STAGE_COLLECT = "collect"
STAGE_ERROR = "error"

STAGES = (
    STAGE_EDGE_PARSE,
    STAGE_ADMISSION_WAIT,
    STAGE_QUEUE_WAIT,
    STAGE_IPC_OUT,
    STAGE_WORKER_LOAD,
    STAGE_WORKER_PREDICT,
    STAGE_IPC_BACK,
    STAGE_COLLECT,
    STAGE_ERROR,
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    return os.urandom(8).hex()


class Span:
    """One timed stage of a trace: ``[start, end]`` on the monotonic clock."""

    __slots__ = ("stage", "start", "end")

    def __init__(self, stage: str, start: float, end: float) -> None:
        self.stage = str(stage)
        self.start = float(start)
        # A span can never run backwards; negative durations would only come
        # from cross-process clock skew and must not poison the histograms.
        self.end = max(float(end), self.start)

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, float]:
        return {"stage": self.stage, "seconds": self.seconds}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.stage!r}, {self.seconds * 1e3:.3f}ms)"


class Trace:
    """The per-request trace context threaded through the serving path.

    Parameters
    ----------
    trace_id:
        Externally supplied id (e.g. from an upstream header); a fresh one
        is generated when omitted.
    route, model:
        Optional labels carried into the trace dict (the edge sets the
        route, ``submit`` the model name).
    deadline:
        The caller's total time budget in seconds, when one was declared
        (``X-Deadline-Ms``).  A closed trace whose total exceeds it is
        flagged ``deadline_violated`` and always captured by the slow ring.

    The trace is *not* thread-safe by itself; the serving path hands it from
    stage to stage such that exactly one component touches it at a time
    (submitter -> dispatcher -> collector), which is also what makes the
    stamps race-free.
    """

    __slots__ = (
        "_trace_id",
        "route",
        "model",
        "deadline",
        "started",
        "spans",
        "error",
        "total_seconds",
        "enqueued_at",
    )

    def __init__(
        self,
        trace_id: Optional[str] = None,
        *,
        route: Optional[str] = None,
        model: Optional[str] = None,
        deadline: Optional[float] = None,
        started: Optional[float] = None,
    ) -> None:
        # Generated lazily: most traces are born, served and folded into the
        # histograms without anyone reading the id, and the urandom syscall
        # is the single most expensive part of creating one.
        self._trace_id = trace_id
        self.route = route
        self.model = model
        self.deadline = None if deadline is None else float(deadline)
        self.started = time.monotonic() if started is None else float(started)
        self.spans: List[Span] = []
        self.error: Optional[str] = None
        self.total_seconds: Optional[float] = None
        # Scratch stamp the queueing components use to carry "when did this
        # request enter my queue" across the hand-off without widening every
        # tuple in the pipeline.
        self.enqueued_at: float = self.started

    @property
    def trace_id(self) -> str:
        """The request's id, generated on first read."""
        if self._trace_id is None:
            self._trace_id = new_trace_id()
        return self._trace_id

    # -- stamping ----------------------------------------------------------------

    def add_span(self, stage: str, start: float, end: float) -> None:
        """Record one ``[start, end]`` monotonic interval for ``stage``."""
        self.spans.append(Span(stage, start, end))

    def last_stamp(self) -> float:
        """End of the last recorded span, or the trace start.

        Starting each new span here keeps the span chain contiguous --
        hand-off costs between stages are attributed to the *waiting* side
        instead of falling into unaccounted gaps, which is what lets the
        spans explain >=95% of the measured round trip.
        """
        return self.spans[-1].end if self.spans else self.started

    @contextmanager
    def span(self, stage: str) -> Iterator[None]:
        """Context manager stamping ``stage`` around the enclosed block."""
        start = time.monotonic()
        try:
            yield
        finally:
            self.add_span(stage, start, time.monotonic())

    # -- closing -----------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.total_seconds is not None

    def close(
        self,
        *,
        error: Optional[BaseException | str] = None,
        at: Optional[float] = None,
    ) -> bool:
        """Finish the trace; returns True the first time, False on repeats.

        With ``error`` set, an ``"error"`` span is appended covering the
        unaccounted tail (from the end of the last recorded span to now), so
        a doomed request -- worker SIGKILL'd mid-batch, service closed with
        the request in flight -- still accounts for all of its wall time and
        surfaces with the failure attached instead of leaking half-open.

        ``at`` pins the closing instant to a stamp the caller already took
        (normally the end of its final span): a thread preempted between
        recording that span and closing would otherwise stretch the total
        past what the spans explain.
        """
        if self.closed:
            return False
        now = time.monotonic() if at is None else at
        if error is not None:
            self.error = (
                error if isinstance(error, str)
                else f"{type(error).__name__}: {error}"
            )
            last = max((span.end for span in self.spans), default=self.started)
            self.add_span(STAGE_ERROR, last, now)
        # Clamp against residual cross-process clock skew so the invariant
        # "stage span sums <= total" holds for every consumer.
        self.total_seconds = max(now - self.started, self.span_seconds())
        return True

    # -- accounting --------------------------------------------------------------

    def span_seconds(self) -> float:
        """Sum of all recorded span durations."""
        return sum(span.seconds for span in self.spans)

    def coverage(self) -> float:
        """Fraction of the measured total the stage spans explain (0..1)."""
        total = self.total_seconds
        if total is None:
            total = time.monotonic() - self.started
        if total <= 0.0:
            return 1.0
        return min(1.0, self.span_seconds() / total)

    @property
    def deadline_violated(self) -> bool:
        return (
            self.deadline is not None
            and self.total_seconds is not None
            and self.total_seconds > self.deadline
        )

    def stage_seconds(self) -> Dict[str, float]:
        """Per-stage totals (stages recorded more than once accumulate)."""
        out: Dict[str, float] = {}
        for span in self.spans:
            out[span.stage] = out.get(span.stage, 0.0) + span.seconds
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view: id, labels, totals and the ordered span list."""
        return {
            "trace_id": self.trace_id,
            "route": self.route,
            "model": self.model,
            "deadline": self.deadline,
            "total_seconds": self.total_seconds,
            "coverage": self.coverage(),
            "error": self.error,
            "deadline_violated": self.deadline_violated,
            "spans": [span.to_dict() for span in self.spans],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"{self.total_seconds * 1e3:.2f}ms" if self.closed else "open"
        return f"Trace({self.trace_id}, model={self.model!r}, {state})"


class StageTimer:
    """Accumulating named-stage timer for offline pipelines.

    The batch-side analogue of :class:`Trace`: fit/tune code wraps each
    pipeline stage in :meth:`stage` and ships :meth:`as_dict` into artifact
    metadata or tuning provenance.  Re-entered stage names accumulate, so
    one timer can ride through a whole pyramid sweep and report per-stage
    totals across every candidate.
    """

    __slots__ = ("seconds", "counts")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration under ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + float(seconds)
        self.counts[name] = self.counts.get(name, 0) + 1

    def as_dict(self) -> Dict[str, float]:
        """Plain ``{stage: seconds}`` snapshot (JSON-able)."""
        return dict(self.seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in self.seconds.items())
        return f"StageTimer({parts})"


#: The worker-side stamp tuple shipped back in every predict answer:
#: ``(dequeued, loaded, predicted)`` on the shared monotonic clock.  The
#: parent expands it against its own send/receive stamps into the
#: ``ipc-out`` / ``worker-load`` / ``worker-predict`` / ``ipc-back`` spans.
WorkerStamps = Tuple[float, float, float]


def apply_worker_stamps(
    trace: Trace,
    sent_at: float,
    stamps: Optional[WorkerStamps],
    received_at: float,
) -> None:
    """Expand a worker's stamp tuple into the four cross-process spans."""
    if stamps is None:
        return
    dequeued, loaded, predicted = stamps
    trace.add_span(STAGE_IPC_OUT, sent_at, dequeued)
    trace.add_span(STAGE_WORKER_LOAD, dequeued, loaded)
    trace.add_span(STAGE_WORKER_PREDICT, loaded, predicted)
    trace.add_span(STAGE_IPC_BACK, predicted, received_at)
