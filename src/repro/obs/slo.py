"""Declarative SLOs evaluated as multi-window burn rates over the time-series.

An SLO turns "is the service healthy" from a judgement call into
arithmetic: an objective (``99.9%`` of requests succeed; ``99%`` of
predicts under 250ms) defines an error budget (``1 - objective``), and the
**burn rate** is how fast the last window consumed it --
``bad_fraction / budget``.  Burn ``1.0`` spends the budget exactly at the
sustainable pace; burn ``14.4`` over an hour spends a month's budget in
two days.  Alerting on burn over *multiple* windows at once (the
Google-SRE-workbook shape) is what keeps pages meaningful: the long window
proves it's real, the short window proves it's *still* happening.

:class:`Objective` declares one target over series the store already holds
-- ``availability`` reads a bad/total counter pair, ``latency`` reads a
histogram series against a threshold.  :class:`SloMonitor` evaluates a set
of them (on :class:`repro.obs.sysmon.SystemMonitor`'s cadence, or manually)
and fires a contained alert callback at most once per re-arm period, so a
sustained burn pages once instead of once per sampling tick.

:func:`fire_contained` is the one containment idiom for every user-supplied
callback on the serving plane -- alerts here, drift/retune hooks in
:class:`repro.stream.StreamController` -- exceptions are counted in
telemetry, never propagated into the caller.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Default ``(window_seconds, burn_threshold)`` pairs.  Scaled-down analogue
#: of the SRE-workbook page policy (1h@14.4 + 5m@14.4), sized for the
#: store's default five-minute horizon.
DEFAULT_WINDOWS: Tuple[Tuple[float, float], ...] = ((60.0, 14.4), (5.0, 14.4))


def fire_contained(
    callback: Optional[Callable[..., Any]],
    where: str,
    telemetry: Any,
    *args: Any,
) -> Optional[bool]:
    """Invoke a user callback, containing (and counting) any exception.

    Returns ``None`` when there is no callback, ``True`` when it ran
    cleanly, ``False`` when it raised (the error lands in
    ``telemetry.snapshot()["callbacks"]`` via ``record_callback_error``).
    The serving plane's rule in one place: user code may observe the
    service, it may never take it down.
    """
    if callback is None:
        return None
    try:
        callback(*args)
        return True
    except Exception as error:
        telemetry.record_callback_error(where, error)
        return False


@dataclasses.dataclass(frozen=True)
class Objective:
    """One declarative service-level objective.

    Parameters
    ----------
    name:
        Stable identifier (appears in alert payloads and health reasons).
    objective:
        Target good fraction in ``(0, 1)``, e.g. ``0.999``; the error
        budget is ``1 - objective``.
    kind:
        ``"availability"`` -- bad fraction is the windowed rate of
        ``bad_series`` over ``total_series`` (both counters, e.g.
        ``edge.errors`` / ``edge.requests``).
        ``"latency"`` -- bad fraction is the share of in-window
        observations of histogram ``series`` above ``threshold_seconds``.
    windows:
        ``(window_seconds, burn_threshold)`` pairs; the objective is
        *burning* only when every window's burn rate exceeds its
        threshold.
    """

    name: str
    objective: float
    kind: str = "availability"
    total_series: str = "edge.requests"
    bad_series: str = "edge.errors"
    series: str = ""
    threshold_seconds: float = 0.25
    windows: Tuple[Tuple[float, float], ...] = DEFAULT_WINDOWS

    def __post_init__(self) -> None:
        if not 0.0 < float(self.objective) < 1.0:
            raise ValueError(
                f"objective must be in (0, 1); got {self.objective}."
            )
        if self.kind not in ("availability", "latency"):
            raise ValueError(
                f"kind must be 'availability' or 'latency'; got {self.kind!r}."
            )
        if self.kind == "latency" and not self.series:
            raise ValueError(
                f"latency objective {self.name!r} needs the histogram series "
                "name it judges (e.g. 'stage.worker_predict')."
            )
        if not self.windows:
            raise ValueError(f"objective {self.name!r} needs >= 1 window.")

    @property
    def budget(self) -> float:
        """Error budget: the tolerated bad fraction."""
        return 1.0 - float(self.objective)

    def bad_fraction(self, store: Any, window: float, at: float) -> float:
        """Share of bad events in ``[at - window, at]`` (0.0 when quiet)."""
        if self.kind == "availability":
            total = store.rate(self.total_series, window=window, at=at)
            if total <= 0.0:
                return 0.0
            bad = store.rate(self.bad_series, window=window, at=at)
            return min(bad / total, 1.0)
        fraction = store.fraction_above(
            self.series, self.threshold_seconds, window=window, at=at
        )
        return 0.0 if fraction is None else fraction

    def burn_rates(
        self, store: Any, at: float
    ) -> List[Dict[str, float]]:
        """Burn rate of every window: ``bad_fraction / budget``."""
        out = []
        for window, threshold in self.windows:
            burn = self.bad_fraction(store, float(window), at) / self.budget
            out.append(
                {"window": float(window), "threshold": float(threshold),
                 "burn": burn}
            )
        return out


class SloMonitor:
    """Evaluate a set of objectives; fire one contained alert per burn.

    Parameters
    ----------
    objectives:
        The :class:`Objective` set to evaluate.
    telemetry:
        The :class:`~repro.serve.metrics.Telemetry` owning the series the
        objectives read; also the containment channel for a failing alert
        callback.
    on_alert:
        Optional callable receiving one payload dict per firing:
        ``{"objective", "at", "burn_rates": [...]}``.  Contained via
        :func:`fire_contained`.
    rearm:
        Seconds an objective stays suppressed after firing.  ``None``
        (default) re-arms after the objective's *shortest* window -- the
        "exactly once per window" contract: a sustained burn re-fires once
        the window that detected it has fully rolled over, not on every
        evaluation tick.
    """

    def __init__(
        self,
        objectives: Sequence[Objective],
        *,
        telemetry: Any,
        on_alert: Optional[Callable[[Dict[str, Any]], None]] = None,
        rearm: Optional[float] = None,
    ) -> None:
        self.objectives = tuple(objectives)
        names = [objective.name for objective in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"objective names must be unique; got {names}.")
        self.telemetry = telemetry
        self.on_alert = on_alert
        self.rearm = None if rearm is None else float(rearm)
        self.alerts_fired = 0
        self._lock = threading.Lock()
        self._burning: Dict[str, bool] = {}
        self._fired_at: Dict[str, float] = {}
        self._last: List[Dict[str, Any]] = []

    def _rearm_for(self, objective: Objective) -> float:
        if self.rearm is not None:
            return self.rearm
        return min(window for window, _ in objective.windows)

    def evaluate(
        self, store: Any, at: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """One evaluation pass; returns per-objective status dicts.

        An objective is ``burning`` when every window's burn exceeds its
        threshold.  ``fired`` marks the evaluations where the alert
        callback actually ran -- at most once per re-arm period.
        """
        at = time.monotonic() if at is None else float(at)
        results: List[Dict[str, Any]] = []
        to_fire: List[Dict[str, Any]] = []
        with self._lock:
            for objective in self.objectives:
                burn_rates = objective.burn_rates(store, at)
                burning = all(
                    entry["burn"] > entry["threshold"] for entry in burn_rates
                )
                fired = False
                if burning:
                    last_fired = self._fired_at.get(objective.name)
                    if (
                        last_fired is None
                        or at - last_fired >= self._rearm_for(objective)
                    ):
                        fired = True
                        self._fired_at[objective.name] = at
                        self.alerts_fired += 1
                self._burning[objective.name] = burning
                entry = {
                    "objective": objective.name,
                    "kind": objective.kind,
                    "target": objective.objective,
                    "burn_rates": burn_rates,
                    "burning": burning,
                    "fired": fired,
                    "at": at,
                }
                results.append(entry)
                if fired:
                    to_fire.append(entry)
            self._last = results
        # Callbacks run outside the monitor lock: a slow alert hook must not
        # block concurrent health reads.
        for entry in to_fire:
            fire_contained(
                self.on_alert, f"slo:{entry['objective']}", self.telemetry,
                dict(entry),
            )
        return results

    def burning(self) -> List[str]:
        """Names of the objectives burning as of the last evaluation."""
        with self._lock:
            return sorted(
                name for name, burning in self._burning.items() if burning
            )

    def status(self) -> Dict[str, Any]:
        """JSON-able summary of the last evaluation pass."""
        with self._lock:
            return {
                "objectives": [dict(entry) for entry in self._last],
                "burning": sorted(
                    name for name, burning in self._burning.items() if burning
                ),
                "alerts_fired": self.alerts_fired,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SloMonitor(objectives={[o.name for o in self.objectives]!r}, "
            f"alerts_fired={self.alerts_fired})"
        )
