"""Shared utilities: input validation, RNG handling and timing helpers."""

from repro.utils.validation import (
    check_array,
    check_labels,
    check_positive_int,
    check_probability,
    check_random_state,
)
from repro.utils.timing import Stopwatch, timed

__all__ = [
    "check_array",
    "check_labels",
    "check_positive_int",
    "check_probability",
    "check_random_state",
    "Stopwatch",
    "timed",
]
