"""Input validation helpers used across the package.

The helpers centralise the defensive checks every public entry point needs:
converting inputs to well-formed ``numpy`` arrays, validating label vectors
and normalising random-state arguments.  Keeping them in one place makes the
error messages uniform and the estimators short.
"""

from __future__ import annotations

import numbers
from typing import Optional, Sequence, Union

import numpy as np

RandomStateLike = Union[None, int, np.random.Generator, np.random.RandomState]


class NotFittedError(ValueError):
    """Raised when an estimator or artifact is used before fitting.

    Subclasses :class:`ValueError` so existing ``except ValueError`` callers
    (and tests written against the generic message) keep working, mirroring
    the scikit-learn convention.
    """


def check_array(
    X,
    *,
    name: str = "X",
    ensure_2d: bool = True,
    allow_empty: bool = False,
    dtype=np.float64,
) -> np.ndarray:
    """Convert ``X`` to a numeric :class:`numpy.ndarray` and validate it.

    Parameters
    ----------
    X:
        Array-like input (sequence of rows or ndarray).
    name:
        Name used in error messages.
    ensure_2d:
        If true, a 1-D input is rejected rather than silently reshaped.
    allow_empty:
        If false, arrays with zero rows raise ``ValueError``.
    dtype:
        Target dtype for the returned array.

    Returns
    -------
    numpy.ndarray
        A C-contiguous array of the requested dtype.

    Raises
    ------
    ValueError
        If the input contains NaN/Inf, has the wrong dimensionality or is
        empty while ``allow_empty`` is false.
    """
    arr = np.asarray(X, dtype=dtype)
    if arr.ndim == 1 and ensure_2d:
        raise ValueError(
            f"{name} must be a 2-D array of shape (n_samples, n_features); "
            f"got a 1-D array of length {arr.shape[0]}. "
            "Reshape with X.reshape(-1, 1) for single-feature data."
        )
    if arr.ndim > 2:
        raise ValueError(f"{name} must be at most 2-D; got {arr.ndim} dimensions.")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} is empty; at least one sample is required.")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values.")
    return np.ascontiguousarray(arr)


def check_labels(labels, *, n_samples: Optional[int] = None, name: str = "labels") -> np.ndarray:
    """Validate a label vector and return it as an ``int64`` array.

    Parameters
    ----------
    labels:
        1-D array-like of integer cluster labels.  Negative labels are
        allowed and conventionally denote noise.
    n_samples:
        If given, the label vector must have exactly this length.
    name:
        Name used in error messages.
    """
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D; got shape {arr.shape}.")
    if arr.size == 0:
        raise ValueError(f"{name} is empty.")
    if not np.issubdtype(arr.dtype, np.integer):
        if not np.all(np.equal(np.mod(arr, 1), 0)):
            raise ValueError(f"{name} must contain integer values.")
    if n_samples is not None and arr.shape[0] != n_samples:
        raise ValueError(
            f"{name} has length {arr.shape[0]} but {n_samples} samples were expected."
        )
    return arr.astype(np.int64, copy=False)


def check_positive_int(value, *, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer; got {type(value).__name__}.")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}; got {value}.")
    return value


def check_probability(value, *, name: str, inclusive: bool = True) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]`` (or ``(0, 1)``)."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number; got {type(value).__name__}.")
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1]; got {value}.")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1); got {value}.")
    return value


def check_random_state(seed: RandomStateLike) -> np.random.Generator:
    """Normalise a seed-like argument into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh non-deterministic generator), integers, existing
    :class:`numpy.random.Generator` objects and legacy
    :class:`numpy.random.RandomState` objects (wrapped through their seed
    sequence).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.RandomState):
        return np.random.default_rng(seed.randint(0, 2**31 - 1))
    if isinstance(seed, numbers.Integral):
        return np.random.default_rng(int(seed))
    raise TypeError(
        "random_state must be None, an int, numpy.random.Generator or "
        f"numpy.random.RandomState; got {type(seed).__name__}."
    )


def as_feature_matrix(X, *, name: str = "X") -> np.ndarray:
    """Return ``X`` as a 2-D float matrix, promoting 1-D inputs to a column."""
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    return check_array(arr, name=name, ensure_2d=True)


def column_or_row(values: Sequence[float], length: int, *, name: str) -> np.ndarray:
    """Broadcast a scalar or per-dimension sequence to a length-``length`` vector."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 0:
        return np.full(length, float(arr))
    if arr.ndim != 1 or arr.shape[0] != length:
        raise ValueError(f"{name} must be a scalar or a sequence of length {length}.")
    return arr
