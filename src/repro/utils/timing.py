"""Small timing helpers used by the runtime experiments (Fig. 10)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Stopwatch:
    """Accumulates named wall-clock measurements.

    The runtime experiment measures several algorithms over several dataset
    sizes; the stopwatch keeps every observation so the harness can report
    means and repeat counts.
    """

    records: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager that records the elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.records.setdefault(name, []).append(elapsed)

    def total(self, name: str) -> float:
        """Total seconds recorded for ``name`` (0.0 if never measured)."""
        return float(sum(self.records.get(name, [])))

    def mean(self, name: str) -> float:
        """Mean seconds per observation for ``name``."""
        values = self.records.get(name, [])
        if not values:
            return 0.0
        return float(sum(values) / len(values))

    def count(self, name: str) -> int:
        """Number of observations recorded for ``name``."""
        return len(self.records.get(name, []))


@contextmanager
def timed() -> Iterator[List[float]]:
    """Yield a single-element list that receives the elapsed seconds.

    Example
    -------
    >>> with timed() as elapsed:
    ...     _ = sum(range(1000))
    >>> elapsed[0] >= 0.0
    True
    """
    box: List[float] = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
