"""Label-free scoring of sweep candidates (internal model selection).

No ground-truth labels exist at tuning time, so the criteria are internal,
in the spirit of multiscale model selection (Efimov et al.'s adaptive
nonparametric clustering propagates consistency tests across scales; the
paper's own elbow rule reads structure off the density curve):

* **stability** -- a resolution that captures real structure yields nearly
  the same partition as its dyadic neighbours; one that fragments (too fine)
  or merges (too coarse) does not.  Measured as the mass-weighted NMI
  between the base-cell partitions of adjacent pyramid levels, computable in
  ``O(cells)`` because every candidate's clustering is expressed over the
  shared base cells.
* **noise-fraction sanity** -- a clustering that discards essentially all
  mass as noise (the far-too-fine regime where every cell holds one point)
  or keeps essentially all of it (the far-too-coarse regime where noise and
  signal fuse) is down-weighted by a soft band on the filtered mass
  fraction.
* **threshold sharpness** -- at an informative resolution the sorted
  transformed-density curve has the paper's three regimes and the elbow
  threshold separates two well-contrasted populations; when the resolution
  is wrong the curve flattens and the split is arbitrary.  Measured as the
  normalized contrast between the mean surviving and mean filtered density.
* **concentration** -- at an over-fine resolution the survivors shatter
  into many components of negligible mass (surviving noise specks) around a
  few real clusters.  Measured as the effective number of clusters (the
  exponential of the cluster-mass entropy) over the actual count: near 1
  when every cluster carries real mass, near 0 when most are specks.
* **cluster-count prior** -- candidates with fewer than two clusters score
  zero (nothing to serve), and implausibly fragmented candidates decay
  harmonically.
* **mass retention** -- contrast-style criteria monotonically reward a more
  aggressive cut (erode everything but the densest cores and the survivor /
  filtered contrast can only grow), so they cannot arbitrate the *threshold
  policy* axis on their own.  Candidates that share a resolution, level and
  wavelet see identical data, so a policy that discards markedly more mass
  than the most conservative policy in that group is cutting into signal its
  other criteria cannot vouch for; its total is scaled by the fraction of
  that policy's retained mass.  Sweeps with a single threshold policy (the
  plain ``scale="tune"`` path) have singleton groups, where the factor is
  identically 1.0.

The total is ``prior * sanity * retention * mean(stability, sharpness,
concentration)``; all factors live in ``[0, 1]`` so the score table is
directly comparable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.metrics import normalized_mutual_info_from_table
from repro.tune.sweep import Candidate

#: Soft band on the filtered-mass fraction: outside it the sanity factor
#: decays linearly to 0 at the hard limits (0 and 1).
NOISE_FRACTION_BAND = (0.02, 0.98)

#: Cluster counts above this decay harmonically in the prior.
MAX_PLAUSIBLE_CLUSTERS = 32


@dataclass
class CandidateScore:
    """One candidate with its per-criterion and total scores."""

    candidate: Candidate
    stability: float
    noise_sanity: float
    sharpness: float
    concentration: float
    cluster_prior: float
    retention: float
    total: float


def weighted_partition_nmi(
    labels_a: np.ndarray, labels_b: np.ndarray, weights: np.ndarray
) -> float:
    """Mass-weighted NMI between two cell partitions over the same cells."""
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    weights = np.asarray(weights, dtype=np.float64)
    if not (labels_a.shape == labels_b.shape == weights.shape):
        raise ValueError(
            "labels_a, labels_b and weights must be 1-D arrays of equal "
            f"length; got {labels_a.shape}, {labels_b.shape}, {weights.shape}."
        )
    if len(labels_a) == 0:
        return 0.0
    # Candidate labels are dense (-1 for noise, then 0..k-1), so shifting by
    # the minimum gives a direct encoding and the weighted contingency table
    # is a single bincount over combined codes -- no sort, no scatter-add.
    encoded_a = labels_a - labels_a.min()
    encoded_b = labels_b - labels_b.min()
    n_a = int(encoded_a.max()) + 1
    n_b = int(encoded_b.max()) + 1
    table = np.bincount(
        encoded_a * n_b + encoded_b, weights=weights, minlength=n_a * n_b
    ).reshape(n_a, n_b)
    return normalized_mutual_info_from_table(table)


def noise_sanity(noise_fraction: float, band: Tuple[float, float] = NOISE_FRACTION_BAND) -> float:
    """1.0 inside the band, decaying linearly to 0 at all-noise / no-noise."""
    low, high = band
    if noise_fraction < low:
        return max(0.0, noise_fraction / low) if low > 0 else 1.0
    if noise_fraction > high:
        return max(0.0, (1.0 - noise_fraction) / (1.0 - high)) if high < 1 else 1.0
    return 1.0


def threshold_sharpness(candidate: Candidate) -> float:
    """Contrast of the threshold split, normalized into ``[0, 1)``.

    ``c / (c + 1)`` of the ratio between the mean surviving and the mean
    filtered transformed density: 0.5 means no contrast at all (the split is
    arbitrary), values near 1 mean the elbow separated two clearly distinct
    density populations.
    """
    diagnostics = candidate.pipeline.threshold
    curve = np.asarray(diagnostics.sorted_densities, dtype=np.float64)
    if len(curve) == 0:
        return 0.0
    surviving = curve[curve > diagnostics.threshold]
    filtered = curve[curve <= diagnostics.threshold]
    if len(surviving) == 0 or len(filtered) == 0:
        return 0.0
    # Side-lobe cells can carry small negative densities; contrast compares
    # magnitudes of the population means.
    high = float(np.mean(surviving))
    low = float(abs(np.mean(filtered)))
    if high <= 0:
        return 0.0
    contrast = high / max(low, 1e-12)
    return float(contrast / (contrast + 1.0))


def cluster_concentration(candidate: Candidate, base_values: np.ndarray) -> float:
    """Effective cluster count over actual count, mass-weighted.

    The effective count is ``exp(H)`` of the distribution of clustered mass
    over the clusters: 22 components of which 5 carry all the mass have an
    effective count near 5 and a concentration near ``5/22`` -- the signature
    of an over-fine resolution whose "extra clusters" are surviving noise
    specks.  A candidate whose every cluster carries comparable mass scores
    near 1.
    """
    n_clusters = candidate.n_clusters
    if n_clusters < 1:
        return 0.0
    if n_clusters == 1:
        return 1.0
    labels = candidate.base_cell_labels
    clustered = labels >= 0
    masses = np.bincount(
        labels[clustered],
        weights=np.asarray(base_values, dtype=np.float64)[clustered],
        minlength=n_clusters,
    )
    total = masses.sum()
    if total <= 0:
        return 0.0
    probabilities = masses[masses > 0] / total
    effective = float(np.exp(-np.sum(probabilities * np.log(probabilities))))
    return min(1.0, effective / n_clusters)


def mass_retention(candidates: Sequence[Candidate]) -> List[float]:
    """Retained-mass factor per candidate, relative to its policy group.

    Candidates sharing ``(factor, level, wavelet)`` differ only in threshold
    policy, so their clustered-mass fractions are directly comparable: the
    group's most conservative policy defines the reference retained mass, and
    each member's factor is ``(1 - nf) / (1 - nf_min)`` -- the share of that
    reference mass the member kept.  This is the counterweight the threshold
    axis needs: sharpness and concentration both *rise* under an erosive cut
    (only the densest cores survive), so without a retention term the sweep
    would always flatter the most aggressive denoiser.  Singleton groups
    (every sweep without a threshold axis) get 1.0, leaving resolution-only
    tuning untouched.
    """
    by_group: Dict[Tuple[int, int, str], List[int]] = {}
    for position, candidate in enumerate(candidates):
        group = (candidate.factor, candidate.level, candidate.wavelet)
        by_group.setdefault(group, []).append(position)
    factors = [1.0] * len(candidates)
    for positions in by_group.values():
        if len(positions) < 2:
            continue
        reference = max(
            1.0 - candidates[position].noise_fraction for position in positions
        )
        if reference <= 0.0:
            continue
        for position in positions:
            kept = max(0.0, 1.0 - candidates[position].noise_fraction)
            factors[position] = min(1.0, kept / reference)
    return factors


def cluster_prior(n_clusters: int, max_plausible: int = MAX_PLAUSIBLE_CLUSTERS) -> float:
    """0 for degenerate candidates, harmonic decay for fragmented ones."""
    if n_clusters < 2:
        return 0.0
    if n_clusters <= max_plausible:
        return 1.0
    return float(max_plausible) / float(n_clusters)


def score_candidates(
    candidates: Sequence[Candidate], base_values: np.ndarray
) -> List[CandidateScore]:
    """Score every candidate; input order (the sweep's) is preserved.

    Stability compares each candidate against its dyadic resolution
    neighbours *within the same (decomposition level, wavelet, threshold
    policy) group* -- cross-axis comparisons would measure how much the axes
    disagree, not whether a resolution is stable.  The first/last resolution
    of a group only has one neighbour; a single-candidate group gets
    stability 1.0 (nothing to contradict it).
    """
    base_values = np.asarray(base_values, dtype=np.float64)
    by_group: Dict[Tuple[int, str, str], List[int]] = {}
    for position, candidate in enumerate(candidates):
        group = (candidate.level, candidate.wavelet, candidate.threshold_method)
        by_group.setdefault(group, []).append(position)

    stabilities = [1.0] * len(candidates)
    pair_nmi: Dict[Tuple[int, int], float] = {}

    def _agreement(a: int, b: int) -> float:
        key = (a, b) if a < b else (b, a)
        if key not in pair_nmi:
            pair_nmi[key] = weighted_partition_nmi(
                candidates[key[0]].base_cell_labels,
                candidates[key[1]].base_cell_labels,
                base_values,
            )
        return pair_nmi[key]

    for positions in by_group.values():
        ordered = sorted(positions, key=lambda p: candidates[p].factor)
        for rank, position in enumerate(ordered):
            neighbors = []
            if rank > 0:
                neighbors.append(ordered[rank - 1])
            if rank + 1 < len(ordered):
                neighbors.append(ordered[rank + 1])
            if not neighbors:
                continue
            stabilities[position] = float(
                np.mean([_agreement(position, neighbor) for neighbor in neighbors])
            )

    retentions = mass_retention(candidates)

    scores: List[CandidateScore] = []
    for position, candidate in enumerate(candidates):
        sanity = noise_sanity(candidate.noise_fraction)
        sharpness = threshold_sharpness(candidate)
        concentration = cluster_concentration(candidate, base_values)
        prior = cluster_prior(candidate.n_clusters)
        quality = (stabilities[position] + sharpness + concentration) / 3.0
        total = prior * sanity * retentions[position] * quality
        scores.append(
            CandidateScore(
                candidate=candidate,
                stability=stabilities[position],
                noise_sanity=sanity,
                sharpness=sharpness,
                concentration=concentration,
                cluster_prior=prior,
                retention=retentions[position],
                total=float(total),
            )
        )
    return scores
