"""Candidate selection and the :class:`TuneResult` provenance record."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.transform import Workspace
from repro.grid.sparse_grid import SparseGrid
from repro.tune.pyramid import DEFAULT_MIN_SCALE, GridPyramid
from repro.tune.scoring import CandidateScore, score_candidates
from repro.tune.sweep import sweep_pyramid


@dataclass
class TuneResult:
    """Outcome of one grid-pyramid tuning sweep.

    Attributes
    ----------
    best:
        The winning :class:`~repro.tune.scoring.CandidateScore`.
    scores:
        Every scored candidate, in sweep order (per decomposition level,
        finest resolution first).
    base_scale:
        Interval counts of the base quantization the pyramid was built from.
    """

    best: CandidateScore
    scores: List[CandidateScore]
    base_scale: Tuple[int, ...]

    def __post_init__(self) -> None:
        # Snapshot everything the provenance surface needs, so compact()
        # can release the per-candidate sweep intermediates afterwards.
        self._threshold = float(self.best.candidate.pipeline.threshold.threshold)
        self._rows: List[Dict[str, Any]] = []
        for score in self.scores:
            candidate = score.candidate
            self._rows.append(
                {
                    "scale": "x".join(str(s) for s in candidate.scale)
                    if len(set(candidate.scale)) > 1
                    else int(candidate.scale[0]),
                    "level": candidate.level,
                    "wavelet": candidate.wavelet,
                    "threshold_method": candidate.threshold_method,
                    "n_clusters": candidate.n_clusters,
                    "noise_fraction": float(candidate.noise_fraction),
                    "threshold": float(candidate.pipeline.threshold.threshold),
                    "stability": score.stability,
                    "noise_sanity": score.noise_sanity,
                    "sharpness": score.sharpness,
                    "concentration": score.concentration,
                    "cluster_prior": score.cluster_prior,
                    "retention": score.retention,
                    "score": score.total,
                    "selected": score is self.best,
                }
            )

    @property
    def scale(self) -> Union[int, Tuple[int, ...]]:
        """The selected resolution (an int when isotropic)."""
        scale = self.best.candidate.scale
        if len(set(scale)) == 1:
            return int(scale[0])
        return scale

    @property
    def level(self) -> int:
        """The selected wavelet decomposition level."""
        return self.best.candidate.level

    @property
    def wavelet(self) -> str:
        """The selected wavelet basis (trivial unless the basis was swept)."""
        return self.best.candidate.wavelet

    @property
    def threshold_method(self) -> str:
        """The selected level policy's canonical name (e.g. ``"global-hard"``)."""
        return self.best.candidate.threshold_method

    @property
    def threshold(self) -> float:
        """The adaptive threshold the winning candidate selected."""
        return self._threshold

    def table(self) -> List[Dict[str, Any]]:
        """Per-candidate score table (one plain dict per candidate).

        Render with :func:`repro.experiments.format_table` via an
        ``ExperimentResult``, or consume directly; every row is
        JSON-serializable.  Available before and after :meth:`compact`.
        """
        return [dict(row) for row in self._rows]

    def compact(self) -> "TuneResult":
        """Release the sweep intermediates, keeping the provenance surface.

        Each candidate's coarsened grid, transformed grid and per-base-cell
        label array are only needed during selection; an estimator that
        retains the :class:`TuneResult` for provenance would otherwise pin
        several megabytes of sweep scratch for its lifetime.  The score
        table, chosen scale/level/threshold and every scalar diagnostic
        survive compaction.
        """
        for score in self.scores:
            score.candidate.grid = None
            score.candidate.pipeline = None
            score.candidate.base_cell_labels = None
        return self

    def provenance(self) -> Dict[str, Any]:
        """JSON-able record of how the scale was chosen (for model artifacts).

        Persisted into :class:`~repro.serve.ClusterModel` metadata so a
        served model carries the evidence for its own resolution.
        """
        return {
            "method": "grid-pyramid sweep",
            "base_scale": list(self.base_scale),
            "chosen_scale": list(self.best.candidate.scale),
            "chosen_level": self.level,
            "chosen_wavelet": self.wavelet,
            "chosen_threshold_method": self.threshold_method,
            "n_candidates": len(self.scores),
            "candidates": self.table(),
        }


def select_best(scores: Sequence[CandidateScore]) -> CandidateScore:
    """The highest-scoring candidate; ties go to the finer resolution.

    Raises ``ValueError`` when every candidate is degenerate (score 0 with
    fewer than two clusters everywhere) -- there is nothing defensible to
    pick, and silently serving a no-cluster model would be worse.
    """
    if not scores:
        raise ValueError("no candidates to select from.")
    best = max(scores, key=lambda s: (s.total, -s.candidate.factor, -s.candidate.level))
    if best.total <= 0 and best.candidate.n_clusters < 2:
        raise ValueError(
            "tuning failed: no candidate resolution produced at least two "
            "clusters. The data may be all noise or a single cluster at every "
            "dyadic scale; fit with an explicit scale to inspect the result."
        )
    return best


def tune_pyramid(
    base_grid: SparseGrid,
    *,
    levels: Sequence[int] = (1,),
    min_scale: int = DEFAULT_MIN_SCALE,
    factors: Optional[Sequence[int]] = None,
    n_workers: Optional[int] = None,
    workspace: Optional[Workspace] = None,
    **pipeline_params,
) -> TuneResult:
    """Build the pyramid from one base quantization, sweep, score and select.

    The complete tuning pass: ``O(cells)`` per candidate after the single
    quantization that produced ``base_grid``.  ``pipeline_params`` are the
    grid-side stage parameters; a ``wavelet`` sequence and
    ``threshold="tune"`` widen the sweep beyond resolutions (see
    :func:`repro.tune.sweep.sweep_pyramid`), all from this one shared
    quantization.  ``factors=(1,)`` pins the resolution to the base scale so
    only the non-resolution axes sweep.
    """
    pyramid = GridPyramid(base_grid, min_scale=min_scale, factors=factors)
    candidates = sweep_pyramid(
        pyramid,
        levels=levels,
        n_workers=n_workers,
        workspace=workspace,
        **pipeline_params,
    )
    scores = score_candidates(candidates, pyramid.levels[0].grid.values)
    return TuneResult(
        best=select_best(scores), scores=scores, base_scale=pyramid.base_scale
    )
