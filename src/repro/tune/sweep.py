"""Evaluate the clustering pipeline on every grid-pyramid level.

The expensive part of an AdaWave fit is the single pass over the points
(quantization plus the final label lookup); the grid-side stages cost only
``O(occupied cells * scale)``.  The sweep exploits that: given a pyramid
derived from one quantization, it runs transform + threshold + components on
every (resolution, decomposition-level) candidate and collects label-free
diagnostics for the scoring step -- so sweeping ``S`` resolutions costs
about one fit plus ``S`` cheap grid passes, not ``S`` fits.

Candidates are independent, so with ``n_workers > 1`` they fan out over a
thread pool, the same pattern as :func:`repro.serve.parallel_ingest` and
``BatchRunner.run_many``: the hot stages are numpy calls that release the
GIL, so threads scale on multi-core hosts with zero serialization cost.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pipeline import GridPipelineResult, run_grid_pipeline
from repro.core.transform import Workspace
from repro.grid.lookup import NOISE_LABEL, CellLabelIndex
from repro.grid.sparse_grid import SparseGrid
from repro.tune.pyramid import GridPyramid, PyramidLevel
from repro.wavelets.thresholding import LevelPolicy

#: Level policies ``threshold="tune"`` sweeps, default (the paper's
#: global-hard pipeline) first so score ties resolve to it.
DEFAULT_THRESHOLD_SWEEP = ("hard", "soft", "per-level-hard", "per-level-soft")


@dataclass
class Candidate:
    """One evaluated (resolution, decomposition level) configuration.

    Attributes
    ----------
    factor:
        Downsampling factor of the pyramid level the candidate ran on.
    scale:
        Interval counts of that level.
    level:
        Wavelet decomposition level the pipeline used.
    n_clusters:
        Number of clusters the candidate produced.
    noise_fraction:
        Fraction of the total point mass that falls in filtered (noise)
        cells.  Computed from cell densities, not labels.
    grid:
        The quantization sketch at this resolution (shared with the
        pyramid).  ``None`` after :meth:`~repro.tune.TuneResult.compact`.
    pipeline:
        The grid-side pipeline output (transformed grid, threshold
        diagnostics, surviving cells and their cluster ids).  ``None``
        after :meth:`~repro.tune.TuneResult.compact`.
    base_cell_labels:
        Cluster id per *base-grid* occupied cell under this candidate's
        clustering (noise = -1), aligned with the base grid's ``coords``.
        This is what lets the scoring step compare two candidates'
        partitions -- mass-weighted over cells -- without touching points.
        ``None`` after :meth:`~repro.tune.TuneResult.compact`.
    wavelet:
        Name of the wavelet basis the candidate ran with (a sweep axis when
        the estimator is given a sequence of bases).
    threshold_method:
        Canonical level-policy name the candidate ran with (a sweep axis
        under ``threshold="tune"``).
    """

    factor: int
    scale: Tuple[int, ...]
    level: int
    n_clusters: int
    noise_fraction: float
    grid: Optional[SparseGrid]
    pipeline: Optional[GridPipelineResult]
    base_cell_labels: Optional[np.ndarray]
    wavelet: str = "bior2.2"
    threshold_method: str = "global-hard"


def evaluate_candidate(
    pyramid_level: PyramidLevel,
    base_coords: np.ndarray,
    base_values: np.ndarray,
    *,
    level: int = 1,
    base_factor: int = 1,
    workspace: Optional[Workspace] = None,
    **pipeline_params,
) -> Candidate:
    """Run the grid pipeline on one pyramid level and derive its diagnostics.

    ``base_coords``/``base_values`` are the occupied cells of the grid every
    candidate is compared over -- the pyramid's *finest materialized* level,
    whose own downsampling factor is ``base_factor`` (1 unless the pyramid
    was built with explicit factors that skip 1).  Every candidate's
    per-cell cluster assignment is expressed over those shared cells so
    candidates at different resolutions are directly comparable.
    """
    pipe = run_grid_pipeline(
        pyramid_level.grid, level=level, workspace=workspace, **pipeline_params
    )
    # A comparison cell's transformed-space cell under this candidate:
    # coarsen from the comparison resolution to the candidate resolution
    # (// relative factor), then apply the wavelet downsampling
    # (// 2**level) -- one combined shift.  Factors are powers of two and
    # increasing, so the division is exact.
    combined = (pyramid_level.factor // base_factor) * (2**level)
    index = CellLabelIndex(pipe.cell_coords, pipe.cell_labels)
    base_cell_labels = index.lookup(base_coords // combined)
    total_mass = float(base_values.sum())
    if total_mass > 0:
        noise_mass = float(base_values[base_cell_labels == NOISE_LABEL].sum())
        noise_fraction = noise_mass / total_mass
    else:
        noise_fraction = 1.0
    return Candidate(
        factor=pyramid_level.factor,
        scale=pyramid_level.scale,
        level=level,
        n_clusters=pipe.n_clusters,
        noise_fraction=noise_fraction,
        grid=pyramid_level.grid,
        pipeline=pipe,
        base_cell_labels=base_cell_labels,
        wavelet=pipe.wavelet,
        threshold_method=pipe.threshold_policy,
    )


def sweep_pyramid(
    pyramid: GridPyramid,
    *,
    levels: Sequence[int] = (1,),
    n_workers: Optional[int] = None,
    workspace: Optional[Workspace] = None,
    **pipeline_params,
) -> List[Candidate]:
    """Evaluate every (pyramid x decomposition x wavelet x policy) candidate.

    Returns the candidates grouped by (decomposition level, wavelet,
    threshold policy), finest resolution first within each group -- the
    order the scoring step's adjacent-scale comparisons expect.
    ``pipeline_params`` are the grid-side stage parameters; two of them are
    sweep axes rather than scalars: a ``wavelet`` *sequence* sweeps the
    basis family, and ``threshold="tune"`` sweeps the level policies in
    :data:`DEFAULT_THRESHOLD_SWEEP` (default policy first, so score ties
    resolve to the paper's global-hard pipeline).
    """
    levels = [int(lv) for lv in levels]
    if not levels or any(lv < 1 for lv in levels):
        raise ValueError(f"levels must be a non-empty sequence of ints >= 1; got {levels}.")
    wavelet_spec = pipeline_params.pop("wavelet", "bior2.2")
    if isinstance(wavelet_spec, (list, tuple)):
        wavelets = tuple(wavelet_spec)
        if not wavelets:
            raise ValueError("a swept wavelet sequence must not be empty.")
    else:
        wavelets = (wavelet_spec,)
    threshold_spec = pipeline_params.pop("threshold", "hard")
    if isinstance(threshold_spec, str) and threshold_spec == "tune":
        thresholds = DEFAULT_THRESHOLD_SWEEP
    else:
        thresholds = (threshold_spec,)
    for spec in thresholds:
        LevelPolicy.parse(spec)  # fail fast, before any candidate runs
    base = pyramid.levels[0].grid
    base_factor = pyramid.levels[0].factor
    base_coords = base.coords
    base_values = base.values
    jobs = [
        (pyramid_level, level, wavelet, threshold)
        for level in levels
        for wavelet in wavelets
        for threshold in thresholds
        for pyramid_level in pyramid.levels
    ]

    def _run(job, scratch: Optional[Workspace]) -> Candidate:
        pyramid_level, level, wavelet, threshold = job
        return evaluate_candidate(
            pyramid_level,
            base_coords,
            base_values,
            level=level,
            base_factor=base_factor,
            workspace=scratch,
            wavelet=wavelet,
            threshold=threshold,
            **pipeline_params,
        )

    if n_workers is None or n_workers <= 1 or len(jobs) <= 1:
        return [_run(job, workspace) for job in jobs]
    # Candidates are independent; fan out like BatchRunner.run_many, each
    # worker thread with one private scratch workspace reused across all the
    # jobs it processes.
    thread_state = threading.local()

    def _run_threaded(job) -> Candidate:
        scratch = getattr(thread_state, "workspace", None)
        if scratch is None:
            scratch = thread_state.workspace = Workspace()
        return _run(job, scratch)

    with ThreadPoolExecutor(max_workers=min(n_workers, len(jobs))) as pool:
        futures = [pool.submit(_run_threaded, job) for job in jobs]
        return [future.result() for future in futures]
