"""Grid-pyramid auto-tuning: pick scale / level / threshold from one pass.

The paper's one hand-set knob is ``scale``.  This package chooses it from
the data, without ground-truth labels, for the price of a single
quantization:

* :mod:`repro.tune.pyramid` -- the dyadic :class:`GridPyramid`: every
  coarser power-of-two resolution derived exactly from one fine base
  quantization via :meth:`repro.grid.SparseGrid.coarsen` (``O(cells)`` per
  level, no second pass over the points);
* :mod:`repro.tune.sweep` -- run the wavelet + threshold + connectivity
  pipeline on every (resolution, decomposition level) candidate, optionally
  fanned out over threads;
* :mod:`repro.tune.scoring` -- label-free selection criteria: mass-weighted
  partition stability across adjacent scales, a noise-fraction sanity band
  and threshold-diagnostics sharpness;
* :mod:`repro.tune.select` -- :func:`tune_pyramid` ties it together and
  returns a :class:`TuneResult` with the chosen scale / level / threshold
  plus the full per-candidate score table.

End-to-end integration: ``AdaWave(scale="tune")`` resolves through this
package at ``fit`` time; streaming estimators ingest at the fine base
resolution and tune at ``finalize`` time from the accumulated sketch; the
chosen configuration and score table travel with exported
:class:`~repro.serve.ClusterModel` artifacts as tuning provenance.

Typical direct use::

    from repro import AdaWave

    model = AdaWave(scale="tune").fit(X)
    model.tune_result_.scale          # the chosen resolution
    model.tune_result_.table()        # the per-candidate score table
"""

from repro.tune.pyramid import (
    DEFAULT_MIN_SCALE,
    GridPyramid,
    PyramidLevel,
    default_base_scale,
    is_power_of_two,
)
from repro.tune.scoring import CandidateScore, score_candidates, weighted_partition_nmi
from repro.tune.select import TuneResult, select_best, tune_pyramid
from repro.tune.sweep import (
    DEFAULT_THRESHOLD_SWEEP,
    Candidate,
    evaluate_candidate,
    sweep_pyramid,
)

__all__ = [
    "Candidate",
    "CandidateScore",
    "DEFAULT_MIN_SCALE",
    "DEFAULT_THRESHOLD_SWEEP",
    "GridPyramid",
    "PyramidLevel",
    "TuneResult",
    "default_base_scale",
    "evaluate_candidate",
    "is_power_of_two",
    "score_candidates",
    "select_best",
    "sweep_pyramid",
    "tune_pyramid",
    "weighted_partition_nmi",
]
