"""The dyadic grid pyramid: every power-of-two resolution from one pass.

Quantizing ``n`` points is the only stage of the AdaWave pipeline that
touches the data; everything after it runs over the (much smaller) occupied
cells.  Because cell coordinates at ``s`` intervals are exactly the cell
coordinates at ``2s`` intervals floor-divided by two
(:meth:`repro.grid.SparseGrid.coarsen`), one quantization at a fine
power-of-two base scale determines the quantization at *every* coarser
dyadic scale -- exactly, bit for bit, in ``O(cells)`` per level.

:class:`GridPyramid` materializes that ladder.  The tuning sweep evaluates
the clustering pipeline on each level; the streaming path uses the same
identity to ingest at the fine base resolution and serve at whichever coarser
resolution the sweep picks ("ingest fine, serve coarse"), which settles the
dyadic case of the grid re-binning question.  Rescaling between
*non*-power-of-two resolutions remains impossible without re-quantizing the
points (cell boundaries do not nest), which is why the pyramid insists on
power-of-two base scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.grid.sparse_grid import SparseGrid

#: Fine base resolution per dimensionality used by ``scale="tune"``.  A
#: function of the dimensionality alone -- never of the sample count -- so
#: one-shot fits, streams and shards of the same data all agree on the base
#: grid and streaming tuning stays exactly order- and split-invariant.
_DEFAULT_BASE_SCALES = {1: 256, 2: 256, 3: 128, 4: 64, 5: 32, 6: 32}
_DEFAULT_BASE_SCALE_HIGH_DIM = 16

#: Coarsest useful resolution: below 8 intervals the wavelet transform
#: (which halves the grid again) leaves too few cells to cluster.
DEFAULT_MIN_SCALE = 8


def default_base_scale(n_features: int) -> int:
    """The fine power-of-two base resolution ``scale="tune"`` quantizes at."""
    if n_features < 1:
        raise ValueError(f"n_features must be >= 1; got {n_features}.")
    return _DEFAULT_BASE_SCALES.get(n_features, _DEFAULT_BASE_SCALE_HIGH_DIM)


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    value = int(value)
    return value >= 1 and (value & (value - 1)) == 0


@dataclass
class PyramidLevel:
    """One resolution of the pyramid.

    Attributes
    ----------
    factor:
        Downsampling factor from the base grid (1, 2, 4, ...).
    scale:
        Interval counts of this level (``base_scale // factor``).
    grid:
        The quantization sketch at this resolution -- identical to what
        quantizing the original points at ``scale`` would have produced.
    """

    factor: int
    scale: Tuple[int, ...]
    grid: SparseGrid


class GridPyramid:
    """Dyadic ladder of quantizations derived from one fine base grid.

    Parameters
    ----------
    base_grid:
        Quantization of the data at the (power-of-two) base resolution.
    min_scale:
        Stop coarsening once the smallest dimension would fall below this
        many intervals (default 8).
    factors:
        Explicit downsampling factors instead of the automatic ladder; each
        must be a power of two that divides every base-scale entry.

    Attributes
    ----------
    levels:
        The :class:`PyramidLevel` list, finest (factor 1) first.
    """

    def __init__(
        self,
        base_grid: SparseGrid,
        *,
        min_scale: int = DEFAULT_MIN_SCALE,
        factors: Optional[Sequence[int]] = None,
    ) -> None:
        base_scale = base_grid.shape
        # A single-level "pyramid" (explicit factors all 1) never coarsens,
        # so nesting is moot and any base scale works -- this is how the
        # non-resolution sweep axes (wavelet, threshold policy) stay
        # reachable at explicit non-power-of-two scales.
        trivial = factors is not None and all(int(f) == 1 for f in factors)
        if not trivial:
            for size in base_scale:
                if not is_power_of_two(size):
                    raise ValueError(
                        f"grid pyramids require power-of-two base scales so that "
                        f"cell boundaries nest exactly across levels; got shape "
                        f"{base_scale}. Use a power-of-two scale (e.g. "
                        f"AdaWave.auto_scale) or an explicit integer scale "
                        f"without tuning."
                    )
        if factors is None:
            factors = []
            factor = 1
            while min(base_scale) // factor >= max(int(min_scale), 1):
                factors.append(factor)
                factor *= 2
            if not factors:
                factors = [1]
        else:
            factors = [int(f) for f in factors]
            for factor in factors:
                if not is_power_of_two(factor):
                    raise ValueError(
                        f"pyramid factors must be powers of two; got {factor}."
                    )
                if factor > min(base_scale):
                    raise ValueError(
                        f"factor {factor} exceeds the smallest base-scale "
                        f"entry of {min(base_scale)}."
                    )
            if sorted(set(factors)) != factors:
                raise ValueError(
                    f"pyramid factors must be strictly increasing and unique; "
                    f"got {factors}."
                )
        self.base_scale: Tuple[int, ...] = base_scale
        self.levels: List[PyramidLevel] = []
        # Each level coarsens the previous one by the factor ratio -- floor
        # division composes, so this equals coarsening the base directly but
        # touches far fewer cells on the deep levels.
        current = base_grid
        current_factor = 1
        for factor in factors:
            step = factor // current_factor
            if step > 1:
                current = current.coarsen(step)
                current_factor = factor
            scale = tuple(size // factor for size in base_scale)
            self.levels.append(PyramidLevel(factor=factor, scale=scale, grid=current))

    @property
    def n_levels(self) -> int:
        """Number of materialized resolutions."""
        return len(self.levels)

    @property
    def factors(self) -> Tuple[int, ...]:
        """The downsampling factors, finest first."""
        return tuple(level.factor for level in self.levels)

    def __iter__(self):
        return iter(self.levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GridPyramid(base={self.base_scale}, factors={self.factors}, "
            f"occupied={self.levels[0].grid.n_occupied if self.levels else 0})"
        )
