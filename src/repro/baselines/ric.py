"""RIC: robust information-theoretic clustering (simplified reproduction).

Boehm et al. (KDD 2006) propose a wrapper that takes a preliminary (coarse)
clustering and purifies it using the minimum description length principle:
points that are cheaper to encode under a global "noise" model than under
their cluster's model are relabelled as noise, and clusters are merged when a
joint model encodes their members more compactly than two separate models.

The full RIC system (VAC coding with per-attribute histogram models and
rotation search) is substantially larger than what the paper's comparison
needs; this reproduction keeps the architecture -- preliminary k-means,
MDL-based noise purification, MDL-based cluster merging -- with Gaussian
cluster models and a uniform noise model, and documents the simplification in
DESIGN.md.  Its qualitative behaviour matches the paper's observation that
RIC collapses to very few clusters once the noise level is non-trivial.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import BaseClusterer, NOISE_LABEL
from repro.baselines.kmeans import KMeans
from repro.utils.validation import check_array, check_positive_int


def _gaussian_code_length(points: np.ndarray, members: np.ndarray) -> float:
    """Total code length (nats) of ``points`` under a diagonal Gaussian model."""
    if len(members) < 2:
        return np.inf
    mean = members.mean(axis=0)
    variance = members.var(axis=0) + 1e-9
    centered = points - mean
    per_point = 0.5 * np.sum(
        np.log(2.0 * np.pi * variance)[None, :] + centered**2 / variance[None, :], axis=1
    )
    return float(per_point.sum())


def _uniform_code_length(points: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> float:
    """Total code length of ``points`` under a uniform model over the data box."""
    volume = float(np.prod(np.maximum(upper - lower, 1e-12)))
    return float(len(points) * np.log(volume))


class RIC(BaseClusterer):
    """MDL-based purification and merging of a preliminary k-means clustering.

    Parameters
    ----------
    n_initial_clusters:
        Number of clusters of the preliminary k-means run.
    parameter_cost:
        Code-length penalty (nats) charged per cluster model, which drives the
        merge decisions.
    random_state:
        Seed of the preliminary k-means.
    """

    def __init__(self, n_initial_clusters: int = 10, parameter_cost: float = 50.0, random_state=0) -> None:
        self.n_initial_clusters = check_positive_int(n_initial_clusters, name="n_initial_clusters")
        if parameter_cost < 0:
            raise ValueError(f"parameter_cost must be non-negative; got {parameter_cost}.")
        self.parameter_cost = float(parameter_cost)
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.n_clusters_: Optional[int] = None

    def _purify(self, X: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Relabel as noise every point cheaper to encode under the noise model."""
        lower = X.min(axis=0)
        upper = X.max(axis=0)
        noise_cost_per_point = _uniform_code_length(X[:1], lower, upper)
        purified = labels.copy()
        for cluster in np.unique(labels):
            if cluster == NOISE_LABEL:
                continue
            members_mask = labels == cluster
            members = X[members_mask]
            if len(members) < 2:
                purified[members_mask] = NOISE_LABEL
                continue
            mean = members.mean(axis=0)
            variance = members.var(axis=0) + 1e-9
            centered = X[members_mask] - mean
            member_costs = 0.5 * np.sum(
                np.log(2.0 * np.pi * variance)[None, :] + centered**2 / variance[None, :],
                axis=1,
            )
            noisy = member_costs > noise_cost_per_point
            indices = np.flatnonzero(members_mask)
            purified[indices[noisy]] = NOISE_LABEL
        return purified

    def _merge(self, X: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Greedily merge cluster pairs while the joint MDL cost decreases."""
        merged = labels.copy()
        improved = True
        while improved:
            improved = False
            clusters: List[int] = sorted(
                int(label) for label in np.unique(merged) if label != NOISE_LABEL
            )
            best_gain = 0.0
            best_pair = None
            for i, first in enumerate(clusters):
                for second in clusters[i + 1 :]:
                    members_first = X[merged == first]
                    members_second = X[merged == second]
                    joint = np.vstack([members_first, members_second])
                    separate_cost = (
                        _gaussian_code_length(members_first, members_first)
                        + _gaussian_code_length(members_second, members_second)
                        + 2.0 * self.parameter_cost
                    )
                    joint_cost = _gaussian_code_length(joint, joint) + self.parameter_cost
                    gain = separate_cost - joint_cost
                    if gain > best_gain:
                        best_gain = gain
                        best_pair = (first, second)
            if best_pair is not None:
                merged[merged == best_pair[1]] = best_pair[0]
                improved = True
        return merged

    def fit(self, X) -> "RIC":
        """Preliminary k-means, then MDL purification and merging."""
        X = check_array(X, name="X")
        k = min(self.n_initial_clusters, X.shape[0])
        preliminary = KMeans(n_clusters=k, n_init=5, random_state=self.random_state).fit_predict(X)
        purified = self._purify(X, preliminary)
        merged = self._merge(X, purified)

        # Re-index the surviving clusters densely.
        final = np.full(X.shape[0], NOISE_LABEL, dtype=np.int64)
        for new_label, old_label in enumerate(
            sorted(int(label) for label in np.unique(merged) if label != NOISE_LABEL)
        ):
            final[merged == old_label] = new_label

        self.labels_ = final
        self.n_clusters_ = int(final.max() + 1) if (final != NOISE_LABEL).any() else 0
        return self
