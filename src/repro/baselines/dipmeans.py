"""DipMeans: incremental k-means with a dip-based split criterion.

Kalogeratos & Likas (NIPS 2012) wrap k-means with an automatic estimate of
the number of clusters: every cluster is examined by letting each member act
as a "viewer" that applies the dip test to its distances to the other
members.  If enough viewers find multimodality, the cluster is a split
candidate; the strongest candidate is split in two (by 2-means) and the
procedure repeats until no cluster is splittable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaseClusterer
from repro.baselines.diptest import dip_test
from repro.baselines.kmeans import KMeans
from repro.utils.validation import check_array, check_positive_int, check_probability, check_random_state


class DipMeans(BaseClusterer):
    """Estimate the number of clusters with dip-test split decisions.

    Parameters
    ----------
    alpha:
        Significance level of each viewer's dip test.
    split_viewer_fraction:
        Minimum fraction of cluster members whose dip test must reject
        unimodality for the cluster to become a split candidate.
    max_clusters:
        Upper bound on the number of clusters.
    viewer_sample:
        Number of viewers sampled per cluster (keeps the procedure
        near-linear; the original uses every member).
    n_boot:
        Monte-Carlo samples per dip p-value.
    random_state:
        Seed for k-means restarts and viewer sampling.
    """

    def __init__(
        self,
        alpha: float = 0.01,
        split_viewer_fraction: float = 0.01,
        max_clusters: int = 20,
        viewer_sample: int = 64,
        n_boot: int = 100,
        random_state=0,
    ) -> None:
        self.alpha = check_probability(alpha, name="alpha", inclusive=False)
        self.split_viewer_fraction = check_probability(
            split_viewer_fraction, name="split_viewer_fraction"
        )
        self.max_clusters = check_positive_int(max_clusters, name="max_clusters")
        self.viewer_sample = check_positive_int(viewer_sample, name="viewer_sample")
        self.n_boot = check_positive_int(n_boot, name="n_boot")
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.n_clusters_: Optional[int] = None

    def _split_score(self, members: np.ndarray, rng: np.random.Generator) -> float:
        """Fraction of sampled viewers whose distance profile rejects unimodality."""
        n_members = members.shape[0]
        if n_members < 8:
            return 0.0
        viewer_count = min(self.viewer_sample, n_members)
        viewers = rng.choice(n_members, size=viewer_count, replace=False)
        split_votes = 0
        for viewer in viewers:
            distances = np.linalg.norm(members - members[viewer], axis=1)
            distances = np.delete(distances, viewer)
            _dip, p_value = dip_test(distances, n_boot=self.n_boot)
            if p_value <= self.alpha:
                split_votes += 1
        return split_votes / viewer_count

    def fit(self, X) -> "DipMeans":
        """Grow the number of clusters until no cluster is splittable."""
        X = check_array(X, name="X")
        rng = check_random_state(self.random_state)

        n_clusters = 1
        labels = np.zeros(X.shape[0], dtype=np.int64)
        while n_clusters < self.max_clusters:
            scores = []
            for cluster in range(n_clusters):
                members = X[labels == cluster]
                scores.append(self._split_score(members, rng))
            best_cluster = int(np.argmax(scores))
            if scores[best_cluster] < self.split_viewer_fraction:
                break
            n_clusters += 1
            model = KMeans(n_clusters=n_clusters, n_init=5, random_state=int(rng.integers(2**31)))
            labels = model.fit_predict(X)

        self.labels_ = labels
        self.n_clusters_ = n_clusters
        return self
