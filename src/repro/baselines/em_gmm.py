"""EM clustering with a Gaussian mixture model.

The paper's model-based representative: "a multivariate Gaussian probability
distribution model is used to estimate the probability that a data point
belongs to a cluster, with each cluster regarded as a Gaussian model".  The
implementation is a standard expectation-maximisation fit of a mixture of
full-covariance Gaussians with k-means++ initialisation and covariance
regularisation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaseClusterer
from repro.baselines.kmeans import kmeans_plus_plus_init
from repro.utils.validation import check_array, check_positive_int, check_random_state


class EMClustering(BaseClusterer):
    """Gaussian mixture model fitted with expectation-maximisation.

    Parameters
    ----------
    n_components:
        Number of mixture components (clusters).
    max_iter:
        Maximum EM iterations.
    tol:
        Convergence tolerance on the mean log-likelihood improvement.
    reg_covar:
        Ridge added to covariance diagonals for numerical stability.
    random_state:
        Seed for the initialisation.

    Attributes
    ----------
    labels_:
        Hard assignment of every point to its most probable component.
    means_, covariances_, weights_:
        Fitted mixture parameters.
    log_likelihood_:
        Final mean log-likelihood of the data.
    """

    def __init__(
        self,
        n_components: int = 8,
        max_iter: int = 200,
        tol: float = 1e-5,
        reg_covar: float = 1e-6,
        random_state=None,
    ) -> None:
        self.n_components = check_positive_int(n_components, name="n_components")
        self.max_iter = check_positive_int(max_iter, name="max_iter")
        if tol <= 0:
            raise ValueError(f"tol must be positive; got {tol}.")
        self.tol = float(tol)
        if reg_covar < 0:
            raise ValueError(f"reg_covar must be non-negative; got {reg_covar}.")
        self.reg_covar = float(reg_covar)
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.means_: Optional[np.ndarray] = None
        self.covariances_: Optional[np.ndarray] = None
        self.weights_: Optional[np.ndarray] = None
        self.log_likelihood_: Optional[float] = None
        self.n_iter_: Optional[int] = None

    def _log_gaussian(self, X: np.ndarray, mean: np.ndarray, covariance: np.ndarray) -> np.ndarray:
        """Log density of a multivariate normal evaluated at every row of ``X``."""
        dim = X.shape[1]
        regularised = covariance + self.reg_covar * np.eye(dim)
        try:
            cholesky = np.linalg.cholesky(regularised)
        except np.linalg.LinAlgError:
            regularised = covariance + max(self.reg_covar, 1e-3) * np.eye(dim)
            cholesky = np.linalg.cholesky(regularised)
        solved = np.linalg.solve_triangular if hasattr(np.linalg, "solve_triangular") else None
        centered = X - mean
        if solved is not None:  # pragma: no cover - numpy >= 2.0 fast path
            z = solved(cholesky, centered.T, lower=True).T
        else:
            z = np.linalg.solve(cholesky, centered.T).T
        log_det = 2.0 * np.sum(np.log(np.diag(cholesky)))
        quadratic = np.sum(z**2, axis=1)
        return -0.5 * (dim * np.log(2.0 * np.pi) + log_det + quadratic)

    def fit(self, X) -> "EMClustering":
        """Fit the mixture by EM and hard-assign every point."""
        X = check_array(X, name="X")
        n_samples, dim = X.shape
        if n_samples < self.n_components:
            raise ValueError(
                f"n_components={self.n_components} exceeds the number of samples {n_samples}."
            )
        rng = check_random_state(self.random_state)

        means = kmeans_plus_plus_init(X, self.n_components, rng)
        covariances = np.stack([np.cov(X.T) + self.reg_covar * np.eye(dim)] * self.n_components)
        if dim == 1:
            covariances = covariances.reshape(self.n_components, 1, 1)
        weights = np.full(self.n_components, 1.0 / self.n_components)

        previous_likelihood = -np.inf
        responsibilities = np.zeros((n_samples, self.n_components))
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            # E step: responsibilities from current parameters.
            log_prob = np.empty((n_samples, self.n_components))
            for component in range(self.n_components):
                log_prob[:, component] = (
                    np.log(max(weights[component], 1e-300))
                    + self._log_gaussian(X, means[component], covariances[component])
                )
            log_norm = np.logaddexp.reduce(log_prob, axis=1)
            responsibilities = np.exp(log_prob - log_norm[:, None])
            likelihood = float(np.mean(log_norm))

            # M step: re-estimate weights, means and covariances.
            component_mass = responsibilities.sum(axis=0) + 1e-12
            weights = component_mass / n_samples
            means = (responsibilities.T @ X) / component_mass[:, None]
            for component in range(self.n_components):
                centered = X - means[component]
                weighted = responsibilities[:, component][:, None] * centered
                covariances[component] = (weighted.T @ centered) / component_mass[component]
                covariances[component] += self.reg_covar * np.eye(dim)

            if abs(likelihood - previous_likelihood) < self.tol:
                previous_likelihood = likelihood
                break
            previous_likelihood = likelihood

        self.labels_ = np.argmax(responsibilities, axis=1).astype(np.int64)
        self.means_ = means
        self.covariances_ = covariances
        self.weights_ = weights
        self.log_likelihood_ = previous_likelihood
        self.n_iter_ = iteration
        return self
