"""Post-processing helpers shared by the experiment protocol.

The real-world datasets of Table I have a semantic class for every point and
no noise label, so the paper "runs the k-means iteration (based on Euclidean
distance) on the final AdaWave result to assign every detected noise object
to a 'true' cluster" before scoring.  :func:`assign_noise_to_nearest_cluster`
implements that single assignment step.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NOISE_LABEL
from repro.utils.validation import check_array, check_labels


def assign_noise_to_nearest_cluster(X, labels, noise_label: int = NOISE_LABEL) -> np.ndarray:
    """Assign every noise-labelled point to the nearest cluster centroid.

    Parameters
    ----------
    X:
        Data matrix of shape ``(n_samples, n_features)``.
    labels:
        Cluster labels with ``noise_label`` marking unassigned points.
    noise_label:
        The label treated as noise.

    Returns
    -------
    numpy.ndarray
        A copy of ``labels`` where former noise points carry the label of the
        centroid closest to them (one k-means assignment step).  If there are
        no clusters at all, every point is assigned to a single cluster ``0``.
    """
    X = check_array(X, name="X")
    labels = check_labels(labels, n_samples=X.shape[0], name="labels")
    result = labels.copy()
    cluster_ids = sorted(int(label) for label in np.unique(labels) if label != noise_label)
    noise_mask = labels == noise_label
    if not noise_mask.any():
        return result
    if not cluster_ids:
        result[:] = 0
        return result

    centroids = np.vstack([X[labels == cluster].mean(axis=0) for cluster in cluster_ids])
    noise_points = X[noise_mask]
    distances = (
        np.sum(noise_points**2, axis=1)[:, None]
        + np.sum(centroids**2, axis=1)[None, :]
        - 2.0 * noise_points @ centroids.T
    )
    nearest = np.argmin(distances, axis=1)
    result[noise_mask] = np.asarray(cluster_ids, dtype=np.int64)[nearest]
    return result
