"""k-means clustering (Lloyd's algorithm with k-means++ initialisation).

The paper uses the standard k-means as the representative of centroid-based
clustering.  It is given the correct ``k`` in every experiment ("we set the
correct parameter for k") and still degrades badly in noise because it lacks
any notion of a noise point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaseClusterer
from repro.utils.validation import check_array, check_positive_int, check_random_state


def kmeans_plus_plus_init(X: np.ndarray, n_clusters: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread the initial centres proportionally to D^2."""
    n_samples = X.shape[0]
    centers = np.empty((n_clusters, X.shape[1]))
    first = int(rng.integers(n_samples))
    centers[0] = X[first]
    closest_sq = np.sum((X - centers[0]) ** 2, axis=1)
    for index in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with an existing centre.
            centers[index:] = X[rng.integers(n_samples, size=n_clusters - index)]
            break
        probabilities = closest_sq / total
        choice = int(rng.choice(n_samples, p=probabilities))
        centers[index] = X[choice]
        distance_sq = np.sum((X - centers[index]) ** 2, axis=1)
        np.minimum(closest_sq, distance_sq, out=closest_sq)
    return centers


class KMeans(BaseClusterer):
    """Lloyd's k-means with k-means++ initialisation and multiple restarts.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_init:
        Number of random restarts; the run with the lowest inertia wins.
    max_iter:
        Maximum Lloyd iterations per restart.
    tol:
        Relative centre-movement tolerance for convergence.
    random_state:
        Seed controlling the initialisation (the algorithm is otherwise
        deterministic).

    Attributes
    ----------
    labels_:
        Cluster assignment per point.
    cluster_centers_:
        Final centroids of the best run.
    inertia_:
        Sum of squared distances of points to their assigned centroid.
    n_iter_:
        Iterations used by the best run.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-6,
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")
        self.n_init = check_positive_int(n_init, name="n_init")
        self.max_iter = check_positive_int(max_iter, name="max_iter")
        if tol < 0:
            raise ValueError(f"tol must be non-negative; got {tol}.")
        self.tol = float(tol)
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.cluster_centers_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: Optional[int] = None

    def _single_run(self, X: np.ndarray, rng: np.random.Generator):
        centers = kmeans_plus_plus_init(X, self.n_clusters, rng)
        labels = np.zeros(X.shape[0], dtype=np.int64)
        for iteration in range(1, self.max_iter + 1):
            # Assignment step.
            distances = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            labels = np.argmin(distances, axis=1)
            # Update step.
            new_centers = centers.copy()
            for cluster in range(self.n_clusters):
                members = X[labels == cluster]
                if len(members) > 0:
                    new_centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed empty clusters at the point farthest from its centre.
                    farthest = int(np.argmax(distances.min(axis=1)))
                    new_centers[cluster] = X[farthest]
            shift = np.linalg.norm(new_centers - centers)
            centers = new_centers
            if shift <= self.tol * max(np.linalg.norm(centers), 1e-12):
                break
        distances = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(X.shape[0]), labels].sum())
        return labels, centers, inertia, iteration

    def fit(self, X) -> "KMeans":
        """Run ``n_init`` restarts of Lloyd's algorithm and keep the best one."""
        X = check_array(X, name="X")
        if X.shape[0] < self.n_clusters:
            raise ValueError(
                f"n_clusters={self.n_clusters} exceeds the number of samples {X.shape[0]}."
            )
        rng = check_random_state(self.random_state)
        best_inertia = np.inf
        for _ in range(self.n_init):
            labels, centers, inertia, n_iter = self._single_run(X, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                self.labels_ = labels
                self.cluster_centers_ = centers
                self.inertia_ = inertia
                self.n_iter_ = n_iter
        return self

    def predict(self, X) -> np.ndarray:
        """Assign new points to the nearest learned centroid."""
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans must be fitted before calling predict.")
        X = check_array(X, name="X")
        distances = ((X[:, None, :] - self.cluster_centers_[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(distances, axis=1)
