"""Hartigan & Hartigan's dip test of unimodality.

The dip statistic of an empirical distribution function is the smallest
sup-norm distance between it and the class of unimodal distribution
functions.  SkinnyDip, UniDip and DipMeans all build on it: a significant dip
means the sample is at least bimodal and should be split further.

The implementation follows the classic iterative scheme: compute the greatest
convex minorant (GCM) and least concave majorant (LCM) of the empirical CDF
on the current interval, locate the modal interval where they are furthest
apart, and shrink towards it until the dip inside the modal interval is no
larger than the dip outside it.  P-values are obtained by Monte-Carlo
simulation of the null (uniform samples of the same size), with a per-size
cache so repeated tests -- SkinnyDip performs many -- stay cheap.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.utils.validation import check_random_state

# Cache of simulated null dip distributions keyed by (sample size, n_boot).
_NULL_CACHE: Dict[Tuple[int, int], np.ndarray] = {}


def _greatest_convex_minorant(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Indices of the vertices of the greatest convex minorant of ``(x, y)``."""
    hull = [0]
    for index in range(1, len(x)):
        hull.append(index)
        # Enforce convexity of the slope sequence by removing middle points.
        while len(hull) >= 3:
            first, middle, last = hull[-3], hull[-2], hull[-1]
            left_slope = (y[middle] - y[first]) * (x[last] - x[middle])
            right_slope = (y[last] - y[middle]) * (x[middle] - x[first])
            if left_slope <= right_slope:
                break
            hull.pop(-2)
    return np.asarray(hull, dtype=np.int64)


def _least_concave_majorant(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Indices of the vertices of the least concave majorant of ``(x, y)``."""
    hull = [0]
    for index in range(1, len(x)):
        hull.append(index)
        while len(hull) >= 3:
            first, middle, last = hull[-3], hull[-2], hull[-1]
            left_slope = (y[middle] - y[first]) * (x[last] - x[middle])
            right_slope = (y[last] - y[middle]) * (x[middle] - x[first])
            if left_slope >= right_slope:
                break
            hull.pop(-2)
    return np.asarray(hull, dtype=np.int64)


def _interpolate_on_hull(x: np.ndarray, y: np.ndarray, hull: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Evaluate the piecewise-linear hull function at the positions ``grid``."""
    return np.interp(grid, x[hull], y[hull])


def dip_statistic(sample) -> float:
    """Hartigan's dip statistic of a one-dimensional sample.

    Returns a value in ``[1 / (2n), 0.25]``; larger values mean stronger
    evidence against unimodality.
    """
    dip, _modal = dip_and_modal_interval(sample)
    return dip


def dip_and_modal_interval(sample) -> Tuple[float, Tuple[int, int]]:
    """Dip statistic plus the modal interval as indices into the sorted sample.

    The modal interval is the index range ``(low, high)`` (inclusive, within
    the sorted sample) that the iterative algorithm converged to; UniDip uses
    it to decide where to recurse.
    """
    values = np.sort(np.asarray(sample, dtype=np.float64).ravel())
    n = len(values)
    if n < 4 or values[0] == values[-1]:
        return 1.0 / (2.0 * max(n, 1)), (0, max(n - 1, 0))

    # Empirical CDF evaluated at the sorted sample points.
    ecdf = np.arange(1, n + 1) / n
    low, high = 0, n - 1
    dip = 1.0 / (2.0 * n)

    for _ in range(n):  # The interval shrinks every iteration; n is a safe bound.
        x = values[low : high + 1]
        # Lower / upper step values of the ECDF on the working interval.
        y_upper = ecdf[low : high + 1]
        y_lower = y_upper - 1.0 / n

        gcm = _greatest_convex_minorant(x, y_lower)
        lcm = _least_concave_majorant(x, y_upper)

        # Largest gap between the two hulls, evaluated at their vertices.
        gcm_at_lcm = _interpolate_on_hull(x, y_lower, gcm, x[lcm])
        lcm_at_gcm = _interpolate_on_hull(x, y_upper, lcm, x[gcm])
        gap_at_lcm = y_upper[lcm] - gcm_at_lcm
        gap_at_gcm = lcm_at_gcm - y_lower[gcm]

        if gap_at_gcm.size and (not gap_at_lcm.size or gap_at_gcm.max() >= gap_at_lcm.max()):
            modal_gap = float(gap_at_gcm.max())
            modal_low = int(gcm[np.argmax(gap_at_gcm)])
            # Modal interval upper end: the LCM vertex to the right of it.
            right_candidates = lcm[lcm >= modal_low]
            modal_high = int(right_candidates[0]) if right_candidates.size else len(x) - 1
        else:
            modal_gap = float(gap_at_lcm.max())
            modal_high = int(lcm[np.argmax(gap_at_lcm)])
            left_candidates = gcm[gcm <= modal_high]
            modal_low = int(left_candidates[-1]) if left_candidates.size else 0

        # Hartigan's stopping rule: once the hull gap inside the candidate
        # modal interval no longer exceeds the dip collected outside it, the
        # current dip is final.
        if modal_gap <= dip:
            low, high = low + modal_low, low + modal_high
            break

        # Deviation of the ECDF from the GCM left of the modal interval and
        # from the LCM right of it -- the "outside" contribution to the dip.
        left_dev = 0.0
        if modal_low > 0:
            left_x = x[: modal_low + 1]
            left_fit = _interpolate_on_hull(x, y_lower, gcm, left_x)
            left_dev = float(np.max(np.abs(y_upper[: modal_low + 1] - left_fit)))
        right_dev = 0.0
        if modal_high < len(x) - 1:
            right_x = x[modal_high:]
            right_fit = _interpolate_on_hull(x, y_upper, lcm, right_x)
            right_dev = float(np.max(np.abs(right_fit - y_lower[modal_high:])))

        dip = max(dip, left_dev, right_dev)
        new_low = low + modal_low
        new_high = low + modal_high
        if (new_low, new_high) == (low, high):
            break
        low, high = new_low, new_high
        if high - low < 3:
            break
    return float(dip), (int(low), int(high))


def _null_distribution(n: int, n_boot: int, rng: np.random.Generator) -> np.ndarray:
    """Simulated dip statistics of uniform samples of size ``n``."""
    key = (n, n_boot)
    if key not in _NULL_CACHE:
        _NULL_CACHE[key] = np.asarray(
            [dip_statistic(rng.uniform(size=n)) for _ in range(n_boot)]
        )
    return _NULL_CACHE[key]


def dip_test(sample, n_boot: int = 200, random_state=0) -> Tuple[float, float]:
    """Dip statistic and Monte-Carlo p-value of the unimodality null.

    Parameters
    ----------
    sample:
        1-D sample to test.
    n_boot:
        Number of uniform null samples used to estimate the p-value.
    random_state:
        Seed of the null simulation (the cache keys only on the sample size,
        so use the same seed across calls for deterministic behaviour).

    Returns
    -------
    (dip, p_value):
        ``p_value`` is the fraction of null dips at least as large as the
        observed one; small values reject unimodality.
    """
    values = np.asarray(sample, dtype=np.float64).ravel()
    n = len(values)
    if n < 4:
        return 1.0 / (2.0 * max(n, 1)), 1.0
    rng = check_random_state(random_state)
    observed = dip_statistic(values)
    null = _null_distribution(n if n <= 1000 else 1000, n_boot, rng)
    if n > 1000:
        # Dip scales as 1 / sqrt(n); rescale the cached null accordingly so a
        # single simulated size covers the large-sample regime.
        null = null * np.sqrt(1000.0 / n)
    p_value = float(np.mean(null >= observed))
    return observed, p_value
