"""SkinnyDip and UniDip: dip-based clustering in a sea of noise.

Maurus & Plant (KDD 2016) cluster extremely noisy data by repeatedly applying
Hartigan's dip test:

* ``UniDip`` finds the modal (high-density) intervals of a one-dimensional
  sample: if the sample is unimodal it returns a single interval, otherwise
  it recurses into the modal interval and into the tails on either side.
* ``SkinnyDip`` applies UniDip to the projection of the data onto each
  dimension in turn: every modal interval found along dimension ``j`` is
  refined along dimension ``j + 1`` using only the points inside it; after the
  last dimension the surviving hyper-rectangles are the clusters and every
  point outside them is noise.

The method is deterministic and very fast but assumes that every cluster is
unimodal in every coordinate projection -- the assumption the paper's
ring-shaped clusters deliberately violate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import BaseClusterer, NOISE_LABEL
from repro.baselines.diptest import dip_and_modal_interval, dip_test
from repro.utils.validation import check_array, check_probability

Interval = Tuple[float, float]

_MIN_POINTS = 4


class UniDip:
    """Extract the modal intervals of a one-dimensional sample.

    Parameters
    ----------
    alpha:
        Significance level of the dip test; smaller values make the procedure
        more conservative (fewer clusters).
    n_boot:
        Monte-Carlo samples for the dip p-value.
    """

    def __init__(self, alpha: float = 0.05, n_boot: int = 100) -> None:
        self.alpha = check_probability(alpha, name="alpha", inclusive=False)
        self.n_boot = int(n_boot)

    def fit(self, values) -> List[Interval]:
        """Return the modal intervals of ``values`` as ``(low, high)`` pairs."""
        sorted_values = np.sort(np.asarray(values, dtype=np.float64).ravel())
        if len(sorted_values) < _MIN_POINTS:
            if len(sorted_values) == 0:
                return []
            return [(float(sorted_values[0]), float(sorted_values[-1]))]
        intervals = self._recurse(sorted_values, is_outer=False)
        return _merge_overlapping(intervals)

    def _recurse(self, values: np.ndarray, is_outer: bool) -> List[Interval]:
        if len(values) < _MIN_POINTS:
            return []
        _dip, p_value = dip_test(values, n_boot=self.n_boot)
        _dip2, (modal_low, modal_high) = dip_and_modal_interval(values)
        if p_value > self.alpha:
            # Unimodal: the whole sample is one cluster interval.  When
            # examining a tail ("outer") region the cluster is only the modal
            # part of it, the rest of the tail is noise.
            if is_outer:
                return [(float(values[modal_low]), float(values[modal_high]))]
            return [(float(values[0]), float(values[-1]))]

        # Multimodal: recurse inside the modal interval and into both tails.
        intervals = self._recurse(values[modal_low : modal_high + 1], is_outer=False)
        left = values[:modal_low]
        right = values[modal_high + 1 :]
        if len(left) >= _MIN_POINTS:
            intervals.extend(self._recurse(left, is_outer=True))
        if len(right) >= _MIN_POINTS:
            intervals.extend(self._recurse(right, is_outer=True))
        return intervals


def _merge_overlapping(intervals: List[Interval]) -> List[Interval]:
    """Merge overlapping or touching intervals and sort them."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for low, high in ordered[1:]:
        last_low, last_high = merged[-1]
        if low <= last_high:
            merged[-1] = (last_low, max(last_high, high))
        else:
            merged.append((low, high))
    return merged


class SkinnyDip(BaseClusterer):
    """Dip-based clustering of multi-dimensional data with heavy noise.

    Parameters
    ----------
    alpha:
        Dip-test significance level used by the per-dimension UniDip runs.
    n_boot:
        Monte-Carlo samples for each dip p-value.
    max_clusters:
        Safety cap on the number of hyper-rectangles kept (the procedure is
        exponential in pathological cases).

    Attributes
    ----------
    labels_:
        Cluster labels; ``-1`` marks points outside every modal
        hyper-rectangle (noise).
    hyperrectangles_:
        The modal hyper-rectangles, one per cluster, as a list of per-
        dimension ``(low, high)`` intervals.
    """

    def __init__(self, alpha: float = 0.05, n_boot: int = 100, max_clusters: int = 64) -> None:
        self.alpha = check_probability(alpha, name="alpha", inclusive=False)
        self.n_boot = int(n_boot)
        self.max_clusters = int(max_clusters)

        self.labels_: Optional[np.ndarray] = None
        self.hyperrectangles_: Optional[List[List[Interval]]] = None

    def fit(self, X) -> "SkinnyDip":
        """Run the per-dimension UniDip recursion and label the points."""
        X = check_array(X, name="X")
        n_samples, n_features = X.shape
        unidip = UniDip(alpha=self.alpha, n_boot=self.n_boot)

        # Each candidate is (row indices, list of per-dimension intervals).
        candidates: List[Tuple[np.ndarray, List[Interval]]] = [
            (np.arange(n_samples), [])
        ]
        for dimension in range(n_features):
            refined: List[Tuple[np.ndarray, List[Interval]]] = []
            for indices, box in candidates:
                if len(indices) < _MIN_POINTS:
                    continue
                intervals = unidip.fit(X[indices, dimension])
                for low, high in intervals:
                    mask = (X[indices, dimension] >= low) & (X[indices, dimension] <= high)
                    selected = indices[mask]
                    if len(selected) >= _MIN_POINTS:
                        refined.append((selected, box + [(low, high)]))
                if len(refined) >= self.max_clusters:
                    break
            candidates = refined
            if not candidates:
                break

        labels = np.full(n_samples, NOISE_LABEL, dtype=np.int64)
        boxes: List[List[Interval]] = []
        for cluster_id, (indices, box) in enumerate(candidates[: self.max_clusters]):
            labels[indices] = cluster_id
            boxes.append(box)

        self.labels_ = labels
        self.hyperrectangles_ = boxes
        return self
