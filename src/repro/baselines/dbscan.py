"""DBSCAN: density-based spatial clustering of applications with noise.

The paper's density-based representative.  Points with at least ``min_samples``
neighbours within ``eps`` are core points; clusters are the connected
components of core points (plus the border points they reach); everything
else is noise.  The experiment harness automates the parameter choice the way
the paper does: ``min_samples`` fixed at 8 and ``eps`` swept over a small
grid, reporting the best AMI.

Two execution paths are provided:

* a grid-accelerated exact path for low dimensional data (d <= 3): points are
  binned into cells of width ``eps / sqrt(d)`` so that any two points sharing
  a cell are necessarily within ``eps``; neighbour counts, core-core
  connectivity and border assignment are then evaluated per pair of nearby
  cells with vectorised distance computations.  This is what makes running
  DBSCAN on the full-size synthetic benchmarks feasible.
* a KD-tree region-growing path for higher dimensional data.
"""

from __future__ import annotations

from collections import deque
from itertools import product
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.base import BaseClusterer, NOISE_LABEL
from repro.spatial.neighbors import radius_neighbors
from repro.spatial.union_find import UnionFind
from repro.utils.validation import check_array, check_positive_int

_GRID_PATH_MAX_DIM = 3


class DBSCAN(BaseClusterer):
    """DBSCAN with a grid-accelerated path for low dimensional data.

    Parameters
    ----------
    eps:
        Neighbourhood radius.
    min_samples:
        Minimum neighbourhood size (including the point itself) for a core
        point; the paper fixes this to 8 when automating DBSCAN.

    Attributes
    ----------
    labels_:
        Cluster labels with ``-1`` for noise.
    core_sample_indices_:
        Indices of the points classified as core points.
    """

    def __init__(self, eps: float = 0.05, min_samples: int = 8) -> None:
        if eps <= 0:
            raise ValueError(f"eps must be positive; got {eps}.")
        self.eps = float(eps)
        self.min_samples = check_positive_int(min_samples, name="min_samples")

        self.labels_: Optional[np.ndarray] = None
        self.core_sample_indices_: Optional[np.ndarray] = None

    # -- grid-accelerated exact path -----------------------------------------

    def _build_cells(self, X: np.ndarray) -> Tuple[Dict[Tuple[int, ...], np.ndarray], np.ndarray]:
        """Bin points into cells of width ``eps / sqrt(d)``."""
        width = self.eps / np.sqrt(X.shape[1])
        cell_coords = np.floor(X / width).astype(np.int64)
        cells: Dict[Tuple[int, ...], List[int]] = {}
        for index, cell in enumerate(map(tuple, cell_coords.tolist())):
            cells.setdefault(cell, []).append(index)
        return {cell: np.asarray(indices) for cell, indices in cells.items()}, cell_coords

    def _fit_grid(self, X: np.ndarray) -> None:
        n_samples, dim = X.shape
        cells, _coords = self._build_cells(X)
        # Cells of width eps / sqrt(d): neighbours can be up to ceil(sqrt(d))
        # cells away along each axis.
        reach = int(np.ceil(np.sqrt(dim)))
        offsets = [offset for offset in product(range(-reach, reach + 1), repeat=dim)]

        # Pass 1: exact neighbour counts (including the point itself).
        counts = np.zeros(n_samples, dtype=np.int64)
        eps_sq = self.eps**2
        for cell, indices in cells.items():
            points = X[indices]
            for offset in offsets:
                neighbor_cell = tuple(c + o for c, o in zip(cell, offset))
                other = cells.get(neighbor_cell)
                if other is None:
                    continue
                distances_sq = ((points[:, None, :] - X[other][None, :, :]) ** 2).sum(axis=2)
                counts[indices] += (distances_sq <= eps_sq).sum(axis=1)
        is_core = counts >= self.min_samples

        # Pass 2: connect core points.  All core points in one cell are within
        # eps of each other by construction, so cells act as super-nodes; two
        # cells are merged when any cross pair of their core points is within
        # eps.  Border (non-core) points adopt the cluster of any core point
        # within reach.
        union = UnionFind()
        core_cells: Dict[Tuple[int, ...], np.ndarray] = {}
        for cell, indices in cells.items():
            core_members = indices[is_core[indices]]
            if core_members.size:
                core_cells[cell] = core_members
                union.add(cell)

        border_owner = np.full(n_samples, -1, dtype=np.int64)
        for cell, core_members in core_cells.items():
            core_points = X[core_members]
            for offset in offsets:
                neighbor_cell = tuple(c + o for c, o in zip(cell, offset))
                if neighbor_cell not in core_cells:
                    continue
                if neighbor_cell == cell:
                    continue
                other_members = core_cells[neighbor_cell]
                if union.connected(cell, neighbor_cell):
                    continue
                distances_sq = (
                    (core_points[:, None, :] - X[other_members][None, :, :]) ** 2
                ).sum(axis=2)
                if (distances_sq <= eps_sq).any():
                    union.union(cell, neighbor_cell)

        # Border assignment: any non-core point within eps of a core point.
        for cell, indices in cells.items():
            non_core = indices[~is_core[indices]]
            if non_core.size == 0:
                continue
            points = X[non_core]
            for offset in offsets:
                neighbor_cell = tuple(c + o for c, o in zip(cell, offset))
                core_members = core_cells.get(neighbor_cell)
                if core_members is None:
                    continue
                unassigned = border_owner[non_core] < 0
                if not unassigned.any():
                    break
                distances_sq = (
                    (points[unassigned][:, None, :] - X[core_members][None, :, :]) ** 2
                ).sum(axis=2)
                reached = (distances_sq <= eps_sq).any(axis=1)
                targets = non_core[unassigned][reached]
                border_owner[targets] = core_members[0]

        # Assemble final labels: one cluster per connected component of cells.
        labels = np.full(n_samples, NOISE_LABEL, dtype=np.int64)
        component_of_cell = union.component_labels() if len(union) else {}
        for cell, core_members in core_cells.items():
            labels[core_members] = component_of_cell[cell]
        border_mask = border_owner >= 0
        labels[border_mask] = labels[border_owner[border_mask]]

        # Re-index cluster ids densely in order of first appearance.
        unique = [label for label in np.unique(labels) if label != NOISE_LABEL]
        remap = {old: new for new, old in enumerate(sorted(unique))}
        if remap:
            remapped = labels.copy()
            for old, new in remap.items():
                remapped[labels == old] = new
            labels = remapped

        self.labels_ = labels
        self.core_sample_indices_ = np.flatnonzero(is_core)

    # -- generic region-growing path ------------------------------------------

    def _fit_generic(self, X: np.ndarray) -> None:
        n_samples = X.shape[0]
        neighborhoods = radius_neighbors(X, self.eps)
        neighbor_counts = np.array([len(neighbors) for neighbors in neighborhoods])
        is_core = neighbor_counts >= self.min_samples

        labels = np.full(n_samples, NOISE_LABEL, dtype=np.int64)
        cluster_id = 0
        for seed in range(n_samples):
            if labels[seed] != NOISE_LABEL or not is_core[seed]:
                continue
            # Breadth-first expansion from an unvisited core point.
            labels[seed] = cluster_id
            queue = deque(neighborhoods[seed])
            while queue:
                candidate = int(queue.popleft())
                if labels[candidate] == NOISE_LABEL:
                    labels[candidate] = cluster_id
                    if is_core[candidate]:
                        queue.extend(neighborhoods[candidate])
            cluster_id += 1

        self.labels_ = labels
        self.core_sample_indices_ = np.flatnonzero(is_core)

    def fit(self, X) -> "DBSCAN":
        """Run DBSCAN over ``X``, choosing the fastest exact path available."""
        X = check_array(X, name="X")
        if X.shape[1] <= _GRID_PATH_MAX_DIM and X.shape[0] > 512:
            self._fit_grid(X)
        else:
            self._fit_generic(X)
        return self
