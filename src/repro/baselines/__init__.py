"""Baseline clustering algorithms evaluated against AdaWave in the paper.

Every baseline is reimplemented here from scratch on top of the same
substrates (:mod:`repro.spatial`, :mod:`repro.wavelets`) so the comparisons
in the experiment harness are like-for-like:

* :class:`KMeans` -- centroid-based representative (k-means++ init, Lloyd
  iterations);
* :class:`DBSCAN` -- density-based representative;
* :class:`EMClustering` -- Gaussian-mixture model fitted with
  expectation-maximisation;
* :class:`WaveCluster` -- the original dense-grid wavelet clustering
  algorithm AdaWave builds on;
* :class:`SkinnyDip` (and :class:`UniDip`) -- dip-test based clustering in
  extremely noisy data;
* :class:`DipMeans` -- dip-test wrapper that estimates k for k-means;
* :class:`SpectralClustering` / :class:`SelfTuningSpectralClustering` --
  spectral methods (STSC in the paper's tables);
* :class:`RIC` -- robust information-theoretic clustering (MDL-based noise
  purification of an initial coarse clustering).
"""

from repro.baselines.base import BaseClusterer
from repro.baselines.kmeans import KMeans
from repro.baselines.dbscan import DBSCAN
from repro.baselines.em_gmm import EMClustering
from repro.baselines.wavecluster import WaveCluster
from repro.baselines.diptest import dip_statistic, dip_test
from repro.baselines.skinnydip import SkinnyDip, UniDip
from repro.baselines.dipmeans import DipMeans
from repro.baselines.spectral import SpectralClustering, SelfTuningSpectralClustering
from repro.baselines.ric import RIC
from repro.baselines.postprocess import assign_noise_to_nearest_cluster

__all__ = [
    "BaseClusterer",
    "KMeans",
    "DBSCAN",
    "EMClustering",
    "WaveCluster",
    "dip_statistic",
    "dip_test",
    "SkinnyDip",
    "UniDip",
    "DipMeans",
    "SpectralClustering",
    "SelfTuningSpectralClustering",
    "RIC",
    "assign_noise_to_nearest_cluster",
]
