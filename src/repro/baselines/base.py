"""Common estimator interface shared by every clustering algorithm here.

The experiment harness treats all algorithms uniformly: construct, call
``fit(X)`` (or ``fit_predict(X)``), read ``labels_`` where ``-1`` denotes
noise.  AdaWave itself follows the same duck-typed protocol without
inheriting from this class, so the harness can mix them freely.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

NOISE_LABEL = -1


class BaseClusterer(ABC):
    """Abstract base class for the baseline clustering algorithms."""

    labels_: Optional[np.ndarray] = None

    @abstractmethod
    def fit(self, X) -> "BaseClusterer":
        """Cluster the data matrix ``X`` and populate :attr:`labels_`."""

    def fit_predict(self, X) -> np.ndarray:
        """Convenience wrapper: :meth:`fit` then return :attr:`labels_`."""
        self.fit(X)
        assert self.labels_ is not None
        return self.labels_

    @property
    def n_clusters_found_(self) -> int:
        """Number of distinct non-noise labels after fitting."""
        if self.labels_ is None:
            raise RuntimeError(f"{type(self).__name__} has not been fitted yet.")
        return len(set(int(label) for label in self.labels_ if label != NOISE_LABEL))
