"""WaveCluster: the original dense-grid wavelet clustering algorithm.

Sheikholeslami et al. (VLDB 1998) quantize the feature space into a dense
grid, apply the wavelet transform, keep the cells of the approximation
subband whose density exceeds a *fixed* significance threshold and connect
them into clusters.  AdaWave keeps the pipeline but replaces the dense grid
with the sparse "grid labeling" structure and the fixed threshold with the
adaptive elbow rule; WaveCluster is therefore both a baseline in Fig. 8 and
the natural ablation reference.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.baselines.base import BaseClusterer, NOISE_LABEL
from repro.grid.connectivity import connected_components
from repro.grid.lookup import LookupTable
from repro.grid.quantizer import GridQuantizer
from repro.utils.validation import check_array, check_positive_int
from repro.wavelets.ndwt import dwtn
from repro.wavelets.thresholding import percentile_threshold


class WaveCluster(BaseClusterer):
    """Dense-grid wavelet clustering with a fixed percentile threshold.

    Parameters
    ----------
    scale:
        Quantization intervals per dimension.
    wavelet:
        Wavelet basis used for the grid transform.
    level:
        Decomposition levels (each halves the grid resolution).
    density_percentile:
        Cells of the transformed grid whose density falls below this
        percentile of the *non-zero* transformed densities are discarded as
        noise.  This fixed rule is exactly what AdaWave's adaptive threshold
        replaces.
    connectivity:
        Grid adjacency used to join cells into clusters.

    Notes
    -----
    The dense grid limits the method to low dimensional data: the transform
    materialises ``scale ** d`` cells.  ``fit`` refuses to run above 6
    dimensions, mirroring the memory blow-up the paper describes.
    """

    _MAX_DENSE_DIM = 6

    def __init__(
        self,
        scale: Union[int, Sequence[int]] = 128,
        wavelet: str = "bior2.2",
        level: int = 1,
        density_percentile: float = 60.0,
        connectivity: str = "full",
    ) -> None:
        self.scale = scale
        self.wavelet = wavelet
        self.level = check_positive_int(level, name="level")
        if not 0.0 <= density_percentile <= 100.0:
            raise ValueError(
                f"density_percentile must be in [0, 100]; got {density_percentile}."
            )
        self.density_percentile = float(density_percentile)
        if connectivity not in ("face", "full"):
            raise ValueError(f"connectivity must be 'face' or 'full'; got {connectivity!r}.")
        self.connectivity = connectivity

        self.labels_: Optional[np.ndarray] = None
        self.n_clusters_: Optional[int] = None
        self.threshold_: Optional[float] = None
        self.grid_shape_: Optional[tuple] = None

    def fit(self, X) -> "WaveCluster":
        """Quantize densely, wavelet-transform, threshold and connect."""
        X = check_array(X, name="X")
        if X.shape[1] > self._MAX_DENSE_DIM:
            raise ValueError(
                f"WaveCluster materialises a dense grid and supports at most "
                f"{self._MAX_DENSE_DIM} dimensions; got {X.shape[1]}. "
                "Use AdaWave for higher dimensional data."
            )
        quantizer = GridQuantizer(scale=self.scale)
        quantization = quantizer.fit_transform(X)
        dense = quantization.grid.to_dense()

        # Repeated single-level decompositions, keeping only the approximation
        # band, reproduce the multi-level transformed feature space.
        transformed = dense
        for _ in range(self.level):
            bands = dwtn(transformed, self.wavelet, mode="periodization")
            transformed = bands["a" * transformed.ndim]

        non_zero = transformed[np.abs(transformed) > 1e-12]
        if non_zero.size == 0:
            self.labels_ = np.full(X.shape[0], NOISE_LABEL, dtype=np.int64)
            self.n_clusters_ = 0
            self.threshold_ = 0.0
            self.grid_shape_ = transformed.shape
            return self
        threshold = percentile_threshold(non_zero, self.density_percentile)

        surviving = [
            tuple(int(c) for c in cell)
            for cell in zip(*np.nonzero(transformed > threshold))
        ]
        cell_labels = connected_components(
            surviving, connectivity=self.connectivity, shape=transformed.shape
        )
        lookup = LookupTable(level=self.level)
        labels = lookup.label_points(quantization.cell_ids, cell_labels)

        self.labels_ = labels
        self.n_clusters_ = len(set(cell_labels.values())) if cell_labels else 0
        self.threshold_ = threshold
        self.grid_shape_ = transformed.shape
        return self
