"""Spectral clustering and the self-tuning variant (STSC).

Standard spectral clustering builds a Gaussian affinity matrix, forms the
symmetrically normalised Laplacian, embeds every point into the space spanned
by the first ``k`` eigenvectors and clusters the embedding with k-means.
Zelnik-Manor & Perona's self-tuning variant replaces the single kernel width
by a local scale ``sigma_i`` (the distance to the ``k``-th nearest neighbour
of point ``i``) and can pick the number of clusters from the eigengap, which
is how the paper's STSC baseline is automated.

Both are O(n^2) in memory and O(n^3) in time, so the experiment harness
subsamples large datasets before calling them -- matching the way the paper
notes these methods do not scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaseClusterer
from repro.baselines.kmeans import KMeans
from repro.spatial.neighbors import k_nearest_neighbors, pairwise_distances
from repro.utils.validation import check_array, check_positive_int


class SpectralClustering(BaseClusterer):
    """Normalised-cut spectral clustering with a global Gaussian kernel.

    Parameters
    ----------
    n_clusters:
        Number of clusters.
    sigma:
        Gaussian kernel width; ``None`` uses the median pairwise distance.
    random_state:
        Seed of the k-means step on the spectral embedding.
    """

    _MAX_POINTS = 4000

    def __init__(self, n_clusters: int = 8, sigma: Optional[float] = None, random_state=0) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")
        if sigma is not None and sigma <= 0:
            raise ValueError(f"sigma must be positive; got {sigma}.")
        self.sigma = sigma
        self.random_state = random_state
        self.labels_: Optional[np.ndarray] = None
        self.embedding_: Optional[np.ndarray] = None

    def _affinity(self, X: np.ndarray) -> np.ndarray:
        distances = pairwise_distances(X)
        sigma = self.sigma
        if sigma is None:
            positive = distances[distances > 0]
            sigma = float(np.median(positive)) if positive.size else 1.0
        affinity = np.exp(-(distances**2) / (2.0 * sigma**2))
        np.fill_diagonal(affinity, 0.0)
        return affinity

    def _embed(self, affinity: np.ndarray, n_components: int) -> np.ndarray:
        degrees = affinity.sum(axis=1)
        inv_sqrt_degree = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
        normalized = affinity * inv_sqrt_degree[:, None] * inv_sqrt_degree[None, :]
        # Largest eigenvectors of the normalised affinity = smallest of the Laplacian.
        eigenvalues, eigenvectors = np.linalg.eigh(normalized)
        embedding = eigenvectors[:, -n_components:]
        norms = np.linalg.norm(embedding, axis=1, keepdims=True)
        return embedding / np.maximum(norms, 1e-12)

    def fit(self, X) -> "SpectralClustering":
        """Embed with the normalised Laplacian and cluster the embedding."""
        X = check_array(X, name="X")
        if X.shape[0] > self._MAX_POINTS:
            raise ValueError(
                f"spectral clustering materialises an {X.shape[0]}^2 affinity matrix; "
                f"subsample to at most {self._MAX_POINTS} points first."
            )
        affinity = self._affinity(X)
        self.embedding_ = self._embed(affinity, self.n_clusters)
        model = KMeans(n_clusters=self.n_clusters, n_init=10, random_state=self.random_state)
        self.labels_ = model.fit_predict(self.embedding_)
        return self


class SelfTuningSpectralClustering(SpectralClustering):
    """Self-tuning spectral clustering (Zelnik-Manor & Perona; the paper's STSC).

    Parameters
    ----------
    n_clusters:
        Number of clusters, or ``None`` to pick it from the largest eigengap
        among the first ``max_clusters`` eigenvalues.
    n_neighbors:
        Neighbour rank used for the local scale (the original paper uses 7).
    max_clusters:
        Largest cluster count considered by the eigengap heuristic.
    """

    def __init__(
        self,
        n_clusters: Optional[int] = None,
        n_neighbors: int = 7,
        max_clusters: int = 15,
        random_state=0,
    ) -> None:
        super().__init__(n_clusters=n_clusters or 2, random_state=random_state)
        self._requested_clusters = n_clusters
        self.n_neighbors = check_positive_int(n_neighbors, name="n_neighbors")
        self.max_clusters = check_positive_int(max_clusters, name="max_clusters")

    def _affinity(self, X: np.ndarray) -> np.ndarray:
        distances = pairwise_distances(X)
        rank = min(self.n_neighbors, X.shape[0] - 1)
        knn_distances, _ = k_nearest_neighbors(X, rank)
        local_scale = np.maximum(knn_distances[:, -1], 1e-12)
        affinity = np.exp(-(distances**2) / (local_scale[:, None] * local_scale[None, :]))
        np.fill_diagonal(affinity, 0.0)
        return affinity

    def _estimate_n_clusters(self, affinity: np.ndarray) -> int:
        degrees = affinity.sum(axis=1)
        inv_sqrt_degree = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
        normalized = affinity * inv_sqrt_degree[:, None] * inv_sqrt_degree[None, :]
        eigenvalues = np.linalg.eigvalsh(normalized)[::-1]
        limit = min(self.max_clusters, len(eigenvalues) - 1)
        gaps = eigenvalues[:limit] - eigenvalues[1 : limit + 1]
        # The first gap corresponds to a single cluster; prefer >= 2 clusters
        # unless the one-cluster gap dominates everything else.
        best = int(np.argmax(gaps)) + 1
        return max(best, 1)

    def fit(self, X) -> "SelfTuningSpectralClustering":
        """Build the locally scaled affinity, pick ``k`` if needed, embed, cluster."""
        X = check_array(X, name="X")
        if X.shape[0] > self._MAX_POINTS:
            raise ValueError(
                f"spectral clustering materialises an {X.shape[0]}^2 affinity matrix; "
                f"subsample to at most {self._MAX_POINTS} points first."
            )
        affinity = self._affinity(X)
        if self._requested_clusters is None:
            self.n_clusters = self._estimate_n_clusters(affinity)
        else:
            self.n_clusters = self._requested_clusters
        self.embedding_ = self._embed(affinity, self.n_clusters)
        model = KMeans(n_clusters=self.n_clusters, n_init=10, random_state=self.random_state)
        self.labels_ = model.fit_predict(self.embedding_)
        return self
