"""Primitive cluster shape samplers.

The synthetic benchmark mixes cluster shapes that are deliberately hard for
model based methods: an elliptical Gaussian, two overlapping rings (their 1-D
projections are bimodal, which breaks SkinnyDip's unimodality assumption) and
two parallel sloping line segments (which k-means splits incorrectly).  Each
sampler returns points only; labels are attached by the dataset builders.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive_int, check_random_state


def gaussian_blob(
    n: int,
    center: Sequence[float],
    std: float = 0.02,
    random_state=None,
) -> np.ndarray:
    """Isotropic Gaussian cluster around ``center``."""
    n = check_positive_int(n, name="n")
    rng = check_random_state(random_state)
    center = np.asarray(center, dtype=np.float64)
    return rng.normal(loc=center, scale=std, size=(n, center.shape[0]))


def gaussian_ellipse(
    n: int,
    center: Sequence[float],
    axes: Tuple[float, float] = (0.08, 0.03),
    angle: float = 0.0,
    random_state=None,
) -> np.ndarray:
    """Rotated anisotropic 2-D Gaussian (the paper's "typical cluster ... ellipse")."""
    n = check_positive_int(n, name="n")
    rng = check_random_state(random_state)
    center = np.asarray(center, dtype=np.float64)
    if center.shape[0] != 2:
        raise ValueError("gaussian_ellipse generates 2-D data; center must have 2 entries.")
    raw = rng.normal(size=(n, 2)) * np.asarray(axes, dtype=np.float64)
    rotation = np.array(
        [[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]]
    )
    return raw @ rotation.T + center


def ring(
    n: int,
    center: Sequence[float],
    radius: float = 0.12,
    width: float = 0.015,
    random_state=None,
) -> np.ndarray:
    """Circular (annular) cluster: radius plus Gaussian radial jitter.

    The projections of a ring onto either axis are bimodal, which is exactly
    the situation in which unimodality based methods fail.
    """
    n = check_positive_int(n, name="n")
    if radius <= 0:
        raise ValueError(f"radius must be positive; got {radius}.")
    rng = check_random_state(random_state)
    center = np.asarray(center, dtype=np.float64)
    if center.shape[0] != 2:
        raise ValueError("ring generates 2-D data; center must have 2 entries.")
    angles = rng.uniform(0.0, 2.0 * np.pi, size=n)
    radii = radius + rng.normal(scale=width, size=n)
    return np.column_stack(
        [center[0] + radii * np.cos(angles), center[1] + radii * np.sin(angles)]
    )


def line_segment(
    n: int,
    start: Sequence[float],
    end: Sequence[float],
    width: float = 0.01,
    random_state=None,
) -> np.ndarray:
    """Points along the segment from ``start`` to ``end`` with Gaussian thickness."""
    n = check_positive_int(n, name="n")
    rng = check_random_state(random_state)
    start = np.asarray(start, dtype=np.float64)
    end = np.asarray(end, dtype=np.float64)
    if start.shape != end.shape:
        raise ValueError("start and end must have the same dimensionality.")
    positions = rng.uniform(0.0, 1.0, size=(n, 1))
    points = start + positions * (end - start)
    direction = end - start
    norm = np.linalg.norm(direction)
    if norm == 0:
        raise ValueError("start and end must differ.")
    # Perpendicular jitter in 2-D; isotropic jitter otherwise.
    if start.shape[0] == 2:
        normal = np.array([-direction[1], direction[0]]) / norm
        offsets = rng.normal(scale=width, size=(n, 1)) * normal
    else:
        offsets = rng.normal(scale=width, size=points.shape)
    return points + offsets


def uniform_noise(
    n: int,
    lower: Sequence[float],
    upper: Sequence[float],
    random_state=None,
) -> np.ndarray:
    """Uniform background noise over the axis-aligned box ``[lower, upper]``."""
    n = check_positive_int(n, name="n")
    rng = check_random_state(random_state)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if lower.shape != upper.shape:
        raise ValueError("lower and upper must have the same dimensionality.")
    if np.any(upper <= lower):
        raise ValueError("upper must be strictly greater than lower in every dimension.")
    return rng.uniform(lower, upper, size=(n, lower.shape[0]))
