"""The Roadmap case study (Fig. 9) as a synthetic road-network simulant.

The original dataset is the 2-D road network of North Jutland, Denmark
(434 874 road segments over a 185 x 135 km region).  The paper treats it as a
"typical highly noisy dataset": most segments are arterials between cities or
sparse countryside roads (noise), while the dense street grids of the
populated cities (Aalborg, Hjorring, Frederikshavn, ...) form the clusters
AdaWave detects.

The simulant reproduces that structure: a handful of dense city blobs of
different sizes, connected by long low-density arterial polylines, on top of
a sparse uniform countryside background.  City points carry the city's label;
arterial and countryside points are labelled as noise.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.datasets.base import Dataset, NOISE_LABEL
from repro.datasets.shapes import gaussian_blob, line_segment, uniform_noise
from repro.utils.validation import check_positive_int, check_random_state

#: City layout: (name, centre in normalised coordinates, relative weight).
_CITIES: Tuple[Tuple[str, Tuple[float, float], float], ...] = (
    ("aalborg", (0.42, 0.30), 0.40),
    ("hjorring", (0.30, 0.72), 0.18),
    ("frederikshavn", (0.62, 0.80), 0.16),
    ("bronderslev", (0.38, 0.52), 0.10),
    ("hobro", (0.30, 0.08), 0.08),
    ("skagen", (0.72, 0.95), 0.08),
)

#: Arterial roads connecting the cities (index pairs into ``_CITIES``).
_ARTERIALS: Tuple[Tuple[int, int], ...] = (
    (0, 1), (0, 3), (1, 2), (3, 1), (0, 4), (2, 5), (0, 2),
)


def roadmap_simulant(
    n_samples: int = 20000,
    city_fraction: float = 0.35,
    arterial_fraction: float = 0.30,
    seed: int = 0,
) -> Dataset:
    """Generate the road-network simulant.

    Parameters
    ----------
    n_samples:
        Total number of road segments (points).  The original dataset has
        434 874; the default is smaller so the full algorithm comparison runs
        quickly, and the benchmark harness can request larger sizes.
    city_fraction:
        Fraction of points that belong to dense city street grids (clusters).
    arterial_fraction:
        Fraction of points lying along inter-city arterials (noise).  The
        remainder is sparse countryside background (also noise).
    seed:
        Generator seed.
    """
    n_samples = check_positive_int(n_samples, name="n_samples", minimum=100)
    if city_fraction < 0 or arterial_fraction < 0 or city_fraction + arterial_fraction > 1:
        raise ValueError("city_fraction and arterial_fraction must be non-negative and sum to <= 1.")
    rng = check_random_state(seed)

    n_city = int(round(n_samples * city_fraction))
    n_arterial = int(round(n_samples * arterial_fraction))
    n_countryside = n_samples - n_city - n_arterial

    points: List[np.ndarray] = []
    labels: List[np.ndarray] = []

    # Dense city street grids: compact blobs whose size scales with the city weight.
    weights = np.array([weight for _name, _center, weight in _CITIES])
    weights = weights / weights.sum()
    city_counts = np.floor(weights * n_city).astype(int)
    city_counts[0] += n_city - city_counts.sum()
    for city_index, ((_name, center, _weight), count) in enumerate(zip(_CITIES, city_counts)):
        if count == 0:
            continue
        spread = 0.012 + 0.014 * weights[city_index]
        points.append(gaussian_blob(count, center=center, std=spread, random_state=rng))
        labels.append(np.full(count, city_index, dtype=np.int64))

    # Arterial roads: diffuse corridors between city centres, labelled noise.
    # They are spread much wider than the city street grids so their per-cell
    # density stays well below the cities', as in the real road network.
    if n_arterial > 0:
        per_arterial = np.full(len(_ARTERIALS), n_arterial // len(_ARTERIALS), dtype=int)
        per_arterial[: n_arterial % len(_ARTERIALS)] += 1
        for (start_index, end_index), count in zip(_ARTERIALS, per_arterial):
            if count == 0:
                continue
            start = _CITIES[start_index][1]
            end = _CITIES[end_index][1]
            points.append(line_segment(count, start=start, end=end, width=0.035, random_state=rng))
            labels.append(np.full(count, NOISE_LABEL, dtype=np.int64))

    # Sparse countryside background, labelled noise.
    if n_countryside > 0:
        points.append(uniform_noise(n_countryside, (0.0, 0.0), (1.0, 1.0), random_state=rng))
        labels.append(np.full(n_countryside, NOISE_LABEL, dtype=np.int64))

    all_points = np.vstack(points)
    all_labels = np.concatenate(labels)
    order = rng.permutation(all_points.shape[0])
    return Dataset(
        name="roadmap",
        points=all_points[order],
        labels=all_labels[order],
        metadata={
            "seed": seed,
            "simulant": True,
            "figure": "Fig. 9",
            "cities": [name for name, _center, _weight in _CITIES],
            "city_fraction": city_fraction,
            "arterial_fraction": arterial_fraction,
        },
    )
