"""The synthetic workloads of the paper's evaluation.

``running_example`` reproduces the Fig. 1 dataset: five clusters of various
shapes drowned in roughly 80 % uniform noise, on which the paper reports
AMI ~0.25 for k-means, ~0.28 for DBSCAN, poor SkinnyDip performance and
~0.76 for AdaWave.

``noise_sweep_dataset`` reproduces the Fig. 7 benchmark: five clusters of
5600 objects each (an elliptical Gaussian, two overlapping rings and two
parallel sloping lines) plus a uniform noise fraction gamma swept from 20 %
to 90 % (Fig. 8).

``scaled_runtime_dataset`` builds the Fig. 10 runtime series: the same five
cluster layout with the per-cluster size scaled so the total object count
reaches a requested ``n`` while the noise percentage stays fixed at 75 %.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.base import Dataset, NOISE_LABEL
from repro.datasets.shapes import gaussian_ellipse, line_segment, ring, uniform_noise
from repro.utils.validation import check_positive_int, check_probability, check_random_state

#: Domain of the synthetic benchmarks (unit square).
_DOMAIN_LOW = (0.0, 0.0)
_DOMAIN_HIGH = (1.0, 1.0)


def _five_cluster_layout(n_per_cluster: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """The paper's five-cluster layout: ellipse, two overlapping rings, two lines."""
    clusters: List[np.ndarray] = [
        # A "typical cluster roughly within an ellipse" -- the paper draws its
        # members from a Gaussian with a very small standard deviation, so the
        # cluster is far denser than the uniform noise background.
        gaussian_ellipse(
            n_per_cluster, center=(0.20, 0.78), axes=(0.050, 0.016), angle=0.5, random_state=rng
        ),
        # Two nested circular distributions: their x and y projections overlap
        # completely (breaking per-dimension unimodality) and no Voronoi
        # partition can separate them, yet they never touch in 2-D.
        ring(n_per_cluster, center=(0.58, 0.42), radius=0.150, width=0.010, random_state=rng),
        ring(n_per_cluster, center=(0.58, 0.42), radius=0.055, width=0.010, random_state=rng),
        # Two clusters in the shape of parallel sloping lines, close enough
        # that centroid-based methods tend to merge or split them.
        line_segment(
            n_per_cluster, start=(0.08, 0.10), end=(0.35, 0.32), width=0.005, random_state=rng
        ),
        line_segment(
            n_per_cluster, start=(0.14, 0.05), end=(0.41, 0.27), width=0.005, random_state=rng
        ),
    ]
    points = np.vstack(clusters)
    labels = np.repeat(np.arange(len(clusters)), n_per_cluster)
    return points, labels


def _with_noise(
    points: np.ndarray,
    labels: np.ndarray,
    noise_fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Append uniform noise so that it makes up ``noise_fraction`` of the total."""
    n_cluster_points = points.shape[0]
    if noise_fraction <= 0.0:
        return points, labels
    n_noise = int(round(n_cluster_points * noise_fraction / (1.0 - noise_fraction)))
    if n_noise == 0:
        return points, labels
    noise = uniform_noise(n_noise, _DOMAIN_LOW, _DOMAIN_HIGH, random_state=rng)
    all_points = np.vstack([points, noise])
    all_labels = np.concatenate([labels, np.full(n_noise, NOISE_LABEL, dtype=np.int64)])
    return all_points, all_labels


def noise_sweep_dataset(
    noise_fraction: float = 0.5,
    n_per_cluster: int = 5600,
    seed: int = 0,
) -> Dataset:
    """Fig. 7 benchmark: five 5600-object clusters plus ``noise_fraction`` noise.

    Parameters
    ----------
    noise_fraction:
        Fraction of the final dataset that is uniform noise (the paper sweeps
        gamma over {0.20, 0.25, ..., 0.90}).
    n_per_cluster:
        Objects per cluster (paper default: 5600).
    seed:
        Seed for the deterministic generator.
    """
    noise_fraction = check_probability(noise_fraction, name="noise_fraction")
    n_per_cluster = check_positive_int(n_per_cluster, name="n_per_cluster")
    rng = check_random_state(seed)
    points, labels = _five_cluster_layout(n_per_cluster, rng)
    points, labels = _with_noise(points, labels, noise_fraction, rng)
    return Dataset(
        name=f"synthetic-noise-{int(round(noise_fraction * 100))}",
        points=points,
        labels=labels,
        metadata={
            "noise_fraction": noise_fraction,
            "n_per_cluster": n_per_cluster,
            "seed": seed,
            "figure": "Fig. 7 / Fig. 8",
        },
    )


def running_example(
    noise_fraction: float = 0.8,
    n_per_cluster: int = 2000,
    seed: int = 0,
) -> Dataset:
    """Fig. 1 running example: the five-cluster layout in ~80 % noise.

    The default per-cluster size is smaller than the Fig. 7 benchmark so the
    quickstart example and the documentation snippets run in a couple of
    seconds; the structure (shapes, overlap, noise level) is the same.
    """
    noise_fraction = check_probability(noise_fraction, name="noise_fraction")
    n_per_cluster = check_positive_int(n_per_cluster, name="n_per_cluster")
    rng = check_random_state(seed)
    points, labels = _five_cluster_layout(n_per_cluster, rng)
    points, labels = _with_noise(points, labels, noise_fraction, rng)
    return Dataset(
        name="running-example",
        points=points,
        labels=labels,
        metadata={
            "noise_fraction": noise_fraction,
            "n_per_cluster": n_per_cluster,
            "seed": seed,
            "figure": "Fig. 1 / Fig. 2",
        },
    )


def scaled_runtime_dataset(
    n_total: int,
    noise_fraction: float = 0.75,
    seed: int = 0,
) -> Dataset:
    """Fig. 10 runtime series: scale the object count at a fixed 75 % noise.

    ``n_total`` is the approximate total number of objects (clusters plus
    noise); the per-cluster size is derived from it.
    """
    n_total = check_positive_int(n_total, name="n_total", minimum=100)
    noise_fraction = check_probability(noise_fraction, name="noise_fraction")
    n_cluster_points = int(round(n_total * (1.0 - noise_fraction)))
    n_per_cluster = max(n_cluster_points // 5, 1)
    rng = check_random_state(seed)
    points, labels = _five_cluster_layout(n_per_cluster, rng)
    points, labels = _with_noise(points, labels, noise_fraction, rng)
    return Dataset(
        name=f"runtime-n-{n_total}",
        points=points,
        labels=labels,
        metadata={
            "noise_fraction": noise_fraction,
            "requested_n": n_total,
            "seed": seed,
            "figure": "Fig. 10",
        },
    )


def drifting_dataset(
    phase: float,
    n_per_cluster: int = 1500,
    noise_range: Tuple[float, float] = (0.3, 0.75),
    shift: Tuple[float, float] = (0.15, 0.10),
    seed: int = 0,
) -> Dataset:
    """One snapshot of a drifting stream: shifting clusters, rising noise.

    The online-serving scenario (experiment E10): the five-cluster layout of
    the paper's benchmarks translated by ``phase * shift`` while the uniform
    noise fraction interpolates across ``noise_range`` -- at ``phase=0`` the
    stream is the familiar stationary workload, at ``phase=1`` every cluster
    has moved by ``shift`` and the noise floor has risen to the top of the
    range.  Points are clipped to the unit square (the default ``shift``
    keeps every cluster inside it), so a stream of snapshots quantizes
    against fixed ``([0, 0], [1, 1])`` bounds at every phase.

    Parameters
    ----------
    phase:
        Drift progress in ``[0, 1]``.
    n_per_cluster:
        Objects per cluster in this snapshot.
    noise_range:
        ``(start, end)`` uniform-noise fractions at phase 0 and 1.
    shift:
        Per-dimension translation applied to every cluster at ``phase=1``.
    seed:
        Seed for the deterministic generator; vary it per snapshot to get
        fresh draws from the same drifting distribution.
    """
    phase = check_probability(phase, name="phase")
    n_per_cluster = check_positive_int(n_per_cluster, name="n_per_cluster")
    start_noise = check_probability(noise_range[0], name="noise_range[0]")
    end_noise = check_probability(noise_range[1], name="noise_range[1]")
    noise_fraction = start_noise + phase * (end_noise - start_noise)
    rng = check_random_state(seed)
    points, labels = _five_cluster_layout(n_per_cluster, rng)
    points = np.clip(
        points + phase * np.asarray(shift, dtype=np.float64), _DOMAIN_LOW, _DOMAIN_HIGH
    )
    points, labels = _with_noise(points, labels, noise_fraction, rng)
    return Dataset(
        name=f"drift-phase-{int(round(phase * 100))}",
        points=points,
        labels=labels,
        metadata={
            "phase": phase,
            "noise_fraction": noise_fraction,
            "shift": list(shift),
            "n_per_cluster": n_per_cluster,
            "seed": seed,
            "figure": "E10 (this repo)",
        },
    )
