"""The :class:`Dataset` container shared by every generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

NOISE_LABEL = -1


@dataclass
class Dataset:
    """A labelled point set plus the metadata the experiment harness reports.

    Attributes
    ----------
    name:
        Human-readable dataset name (used in experiment tables).
    points:
        Array of shape ``(n_samples, n_features)``.
    labels:
        Ground-truth labels; ``-1`` marks noise points.
    metadata:
        Free-form generator parameters (noise fraction, seed, ...).
    """

    name: str
    points: np.ndarray
    labels: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.points.ndim != 2:
            raise ValueError(f"points must be 2-D; got shape {self.points.shape}.")
        if self.labels.shape != (self.points.shape[0],):
            raise ValueError(
                f"labels must have shape ({self.points.shape[0]},); got {self.labels.shape}."
            )

    @property
    def n_samples(self) -> int:
        """Number of points."""
        return self.points.shape[0]

    @property
    def n_features(self) -> int:
        """Number of dimensions."""
        return self.points.shape[1]

    @property
    def n_clusters(self) -> int:
        """Number of ground-truth clusters (noise excluded)."""
        return len(set(int(label) for label in self.labels if label != NOISE_LABEL))

    @property
    def noise_fraction(self) -> float:
        """Fraction of points labelled as noise in the ground truth."""
        return float(np.mean(self.labels == NOISE_LABEL))

    def shuffled(self, seed: int = 0) -> "Dataset":
        """Return a copy with the rows in random order.

        Used by the order-insensitivity tests: AdaWave must produce the same
        partition regardless of input order.
        """
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(self.n_samples)
        return Dataset(
            name=self.name,
            points=self.points[permutation],
            labels=self.labels[permutation],
            metadata={**self.metadata, "shuffled_seed": seed},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset(name={self.name!r}, n={self.n_samples}, d={self.n_features}, "
            f"clusters={self.n_clusters}, noise={self.noise_fraction:.0%})"
        )
