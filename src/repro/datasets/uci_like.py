"""Simulants of the nine UCI datasets used in Table I.

The original UCI files cannot be fetched in this offline environment, so each
dataset is replaced by a deterministic simulant that preserves the properties
Table I depends on:

* the sample count ``n``, dimensionality ``d`` and number of classes ``k``;
* the qualitative difficulty the paper attributes to each dataset -- e.g.
  Motor is almost perfectly separable (every strong method reaches AMI 1.0),
  HTRU2 is heavily imbalanced and hard for every method, Glass has weak
  per-attribute correlation with the class (Table II), Dermatology is
  high-dimensional but well separated, Roadmap is a huge 2-D point set whose
  majority of points is effectively noise.

Every generator takes a seed, defaults to the paper's (n, d) and returns a
:class:`~repro.datasets.base.Dataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.roadmap import roadmap_simulant
from repro.utils.validation import check_random_state


@dataclass(frozen=True)
class _MixtureSpec:
    """Specification of a Gaussian-mixture simulant."""

    n_samples: int
    n_features: int
    n_classes: int
    separation: float
    within_std: float
    imbalance: float = 0.0
    correlated_noise_dims: int = 0


# (n, d) follow Table I; the remaining knobs encode each dataset's difficulty.
_SPECS: Dict[str, _MixtureSpec] = {
    "seeds": _MixtureSpec(210, 7, 3, separation=2.4, within_std=1.0),
    "iris": _MixtureSpec(150, 4, 3, separation=3.0, within_std=1.0),
    "glass": _MixtureSpec(214, 9, 6, separation=1.4, within_std=1.0),
    "dumdh": _MixtureSpec(869, 13, 4, separation=2.0, within_std=1.0, correlated_noise_dims=5),
    "htru2": _MixtureSpec(17898, 9, 2, separation=1.6, within_std=1.0, imbalance=0.9),
    "dermatology": _MixtureSpec(366, 33, 6, separation=3.2, within_std=1.0, correlated_noise_dims=15),
    "motor": _MixtureSpec(94, 3, 3, separation=8.0, within_std=0.6),
    "wholesale": _MixtureSpec(440, 8, 2, separation=2.6, within_std=1.0, imbalance=0.25),
}

UCI_DATASET_NAMES = ("seeds", "roadmap", "iris", "glass", "dumdh", "htru2", "dermatology", "motor", "wholesale")


def _mixture_dataset(name: str, spec: _MixtureSpec, seed: int) -> Dataset:
    """Gaussian mixture with per-class random centres and optional nuisance dims."""
    rng = check_random_state(seed)
    informative_dims = spec.n_features - spec.correlated_noise_dims
    centers = rng.normal(scale=spec.separation, size=(spec.n_classes, informative_dims))

    # Class proportions: either balanced or geometric imbalance.
    if spec.imbalance > 0.0:
        weights = np.array([(1.0 - spec.imbalance) ** i for i in range(spec.n_classes)])
    else:
        weights = np.ones(spec.n_classes)
    weights = weights / weights.sum()
    counts = np.floor(weights * spec.n_samples).astype(int)
    counts[0] += spec.n_samples - counts.sum()

    blocks = []
    labels = []
    for class_index, count in enumerate(counts):
        informative = rng.normal(
            loc=centers[class_index], scale=spec.within_std, size=(count, informative_dims)
        )
        if spec.correlated_noise_dims > 0:
            # Nuisance dimensions carry no class signal; they make purely
            # per-dimension methods (dip-based projections) struggle.
            nuisance = rng.normal(scale=1.0, size=(count, spec.correlated_noise_dims))
            block = np.hstack([informative, nuisance])
        else:
            block = informative
        blocks.append(block)
        labels.append(np.full(count, class_index, dtype=np.int64))

    points = np.vstack(blocks)
    label_array = np.concatenate(labels)
    order = rng.permutation(points.shape[0])
    return Dataset(
        name=name,
        points=points[order],
        labels=label_array[order],
        metadata={"seed": seed, "simulant": True, "table": "Table I"},
    )


# Target per-attribute correlations with the class for the Glass simulant
# (Table II of the paper).
GLASS_ATTRIBUTE_CORRELATIONS: Dict[str, float] = {
    "RI": -0.1642,
    "Na": 0.5030,
    "Mg": -0.7447,
    "Al": 0.5988,
    "Si": 0.1515,
    "K": -0.0100,
    "Ca": 0.0007,
    "Ba": 0.5751,
    "Fe": -0.1879,
}


def glass_simulant(seed: int = 0, n_samples: int = 214) -> Dataset:
    """Glass identification simulant matched to the Table II correlations.

    Each of the nine attributes is generated as ``rho * z_class + sqrt(1 -
    rho^2) * noise`` where ``z_class`` is the standardised class index, so the
    Pearson correlation between the attribute and the class is approximately
    the value reported in Table II.  The six classes follow the real dataset's
    imbalanced profile.
    """
    rng = check_random_state(seed)
    # Approximate class proportions of the UCI Glass data (6 types, imbalanced).
    proportions = np.array([0.327, 0.355, 0.079, 0.061, 0.042, 0.136])
    counts = np.floor(proportions * n_samples).astype(int)
    counts[0] += n_samples - counts.sum()
    labels = np.concatenate(
        [np.full(count, class_index, dtype=np.int64) for class_index, count in enumerate(counts)]
    )
    standardized_class = (labels - labels.mean()) / labels.std()

    columns = []
    for correlation in GLASS_ATTRIBUTE_CORRELATIONS.values():
        noise = rng.standard_normal(n_samples)
        column = correlation * standardized_class + np.sqrt(max(1.0 - correlation**2, 0.0)) * noise
        columns.append(column)
    points = np.column_stack(columns)

    order = rng.permutation(n_samples)
    return Dataset(
        name="glass",
        points=points[order],
        labels=labels[order],
        metadata={
            "seed": seed,
            "simulant": True,
            "table": "Table I / Table II",
            "attributes": list(GLASS_ATTRIBUTE_CORRELATIONS),
        },
    )


def load_uci_like(name: str, seed: int = 0, n_samples: Optional[int] = None) -> Dataset:
    """Load one of the nine Table I simulants by name.

    Parameters
    ----------
    name:
        One of :data:`UCI_DATASET_NAMES` (case insensitive).
    seed:
        Generator seed.
    n_samples:
        Optional override of the sample count (mainly for ``"roadmap"``,
        whose full 434 874-point size is unnecessarily slow for the baseline
        algorithms in the comparison table).
    """
    key = name.lower()
    if key == "glass":
        return glass_simulant(seed=seed, n_samples=n_samples or 214)
    if key == "roadmap":
        return roadmap_simulant(seed=seed, n_samples=n_samples or 20000)
    if key not in _SPECS:
        raise ValueError(f"unknown dataset {name!r}; available: {', '.join(UCI_DATASET_NAMES)}.")
    spec = _SPECS[key]
    if n_samples is not None:
        spec = _MixtureSpec(
            n_samples=n_samples,
            n_features=spec.n_features,
            n_classes=spec.n_classes,
            separation=spec.separation,
            within_std=spec.within_std,
            imbalance=spec.imbalance,
            correlated_noise_dims=spec.correlated_noise_dims,
        )
    return _mixture_dataset(key, spec, seed)


def dataset_summary() -> Dict[str, Tuple[int, int, int]]:
    """Mapping of dataset name to its (n, d, k) triple, as listed in Table I."""
    summary: Dict[str, Tuple[int, int, int]] = {}
    for key, spec in _SPECS.items():
        summary[key] = (spec.n_samples, spec.n_features, spec.n_classes)
    summary["glass"] = (214, 9, 6)
    summary["roadmap"] = (434874, 2, 9)
    return summary
