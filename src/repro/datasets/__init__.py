"""Dataset generators for the paper's workloads.

All experiment data in this reproduction is generated locally:

* :mod:`repro.datasets.shapes` -- primitive cluster shape samplers (Gaussian
  ellipses, rings, line segments, uniform noise);
* :mod:`repro.datasets.synthetic` -- the running example of Fig. 1/2 and the
  noise-sweep benchmark of Fig. 7/8;
* :mod:`repro.datasets.uci_like` -- simulants of the nine UCI datasets in
  Table I (the originals cannot be downloaded in this offline environment;
  each simulant preserves the sample count, dimensionality, class count and
  the structural property the paper credits for the outcome);
* :mod:`repro.datasets.roadmap` -- the Roadmap case study of Fig. 9
  (dense city clusters embedded in arterial-road noise).
"""

from repro.datasets.base import Dataset
from repro.datasets.shapes import (
    gaussian_blob,
    gaussian_ellipse,
    ring,
    line_segment,
    uniform_noise,
)
from repro.datasets.synthetic import (
    running_example,
    noise_sweep_dataset,
    scaled_runtime_dataset,
    drifting_dataset,
)
from repro.datasets.uci_like import (
    UCI_DATASET_NAMES,
    load_uci_like,
    glass_simulant,
)
from repro.datasets.roadmap import roadmap_simulant

__all__ = [
    "Dataset",
    "gaussian_blob",
    "gaussian_ellipse",
    "ring",
    "line_segment",
    "uniform_noise",
    "running_example",
    "noise_sweep_dataset",
    "scaled_runtime_dataset",
    "drifting_dataset",
    "UCI_DATASET_NAMES",
    "load_uci_like",
    "glass_simulant",
    "roadmap_simulant",
]
