"""Sharded parallel ingestion for streaming AdaWave.

The quantized grid is an associative, commutative sketch: quantizing two
shards of a dataset on two workers and merging the resulting grids produces
*exactly* the grid a single pass over the whole dataset would have produced
(the streaming tests pin this down).  That makes ingestion embarrassingly
parallel -- each worker runs :meth:`AdaWave.partial_fit` over its contiguous
slice of the batch list into a private estimator, the shard streams are
reduced with :meth:`AdaWave.merge_stream`, and one :meth:`AdaWave.finalize`
runs the cheap grid-side stages.

Two executors are supported.  ``"thread"`` (default) uses a
:class:`~concurrent.futures.ThreadPoolExecutor`: the hot ingestion ops
(array copy, floor-divide quantization, the consolidation argsort) are numpy
calls that release the GIL, so threads scale on multi-core hosts with zero
serialization cost.  ``"process"`` uses a
:class:`~concurrent.futures.ProcessPoolExecutor` and ships the shard batches
to worker processes -- worthwhile when per-batch Python overhead dominates
or true isolation is wanted.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.core.adawave import AdaWave

_EXECUTORS = ("thread", "process")


def resolve_n_workers(n_workers: Optional[int], *, n_tasks: Optional[int] = None) -> int:
    """Validated worker count, defaulting to the host CPU count.

    ``None`` resolves to ``os.cpu_count()`` capped by ``n_tasks`` when
    given; explicit counts below one are rejected.  Shared by
    :func:`parallel_ingest` and the multi-process serving pool so the two
    tiers size themselves identically.
    """
    if n_workers is None:
        n_workers = os.cpu_count() or 1
        if n_tasks is not None:
            n_workers = min(n_workers, n_tasks)
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1; got {n_workers}.")
    return n_workers


def _shard_batches(batches: List[np.ndarray], n_workers: int) -> List[List[np.ndarray]]:
    """Split the batch list into up to ``n_workers`` contiguous, non-empty shards.

    Contiguous (rather than round-robin) sharding keeps the concatenation
    order of any per-point state identical to a serial pass, so non
    lookup-only parallel ingestion still reproduces serial ``labels_``
    ordering exactly.
    """
    n_shards = min(n_workers, len(batches))
    bounds_ix = np.linspace(0, len(batches), n_shards + 1).astype(int)
    return [
        batches[lo:hi] for lo, hi in zip(bounds_ix[:-1], bounds_ix[1:]) if hi > lo
    ]


def _ingest_shard(adawave_params: dict, shard: List[np.ndarray]) -> AdaWave:
    """Worker body: stream one shard into a private estimator.

    Module-level so the process executor can pickle it.  The final
    ``n_occupied`` touch forces the sketch consolidation (the sort over the
    shard's cells) to run *inside* the worker, where it parallelises, rather
    than lazily during the single-threaded merge.
    """
    estimator = AdaWave(**adawave_params)
    for batch in shard:
        estimator.partial_fit(batch)
    if estimator._sketch is not None:
        estimator._sketch.grid.n_occupied
    return estimator


def parallel_ingest(
    batches: Sequence[np.ndarray],
    *,
    bounds,
    n_workers: Optional[int] = None,
    executor: str = "thread",
    finalize: bool = True,
    lookup_only: bool = True,
    **adawave_params,
) -> AdaWave:
    """Ingest ``batches`` through sharded workers into one AdaWave estimator.

    Parameters
    ----------
    batches:
        Sequence of ``(n_i, d)`` sample batches (any sizes, at least one
        non-empty sample overall).
    bounds:
        Explicit ``(lower, upper)`` quantization bounds, as required by
        streaming ingestion -- every shard must quantize identically.
    n_workers:
        Worker count; defaults to the host CPU count capped by the number of
        batches.  ``1`` degenerates to a serial loop (no pool overhead).
    executor:
        ``"thread"`` (default) or ``"process"``.
    finalize:
        Run :meth:`AdaWave.finalize` on the merged stream before returning.
        Pass ``False`` to keep ingesting into the returned estimator.
    lookup_only:
        Forwarded to :class:`AdaWave`; the default ``True`` keeps no
        per-point state, making ingestion memory ``O(occupied cells)``.
        With ``False``, per-point labels come out in the serial
        batch-concatenation order.
    **adawave_params:
        Remaining :class:`AdaWave` constructor arguments (``scale``,
        ``wavelet``, ``level``, ...).

    Returns
    -------
    AdaWave
        The merged (and, by default, finalized) estimator; freeze it with
        :meth:`AdaWave.export_model` to serve it.
    """
    if executor not in _EXECUTORS:
        raise ValueError(f"executor must be one of {_EXECUTORS}; got {executor!r}.")
    batches = [np.asarray(batch, dtype=np.float64) for batch in batches]
    if not batches:
        raise ValueError("parallel_ingest received no batches.")
    params = dict(adawave_params)
    params["bounds"] = bounds
    params["lookup_only"] = lookup_only
    n_workers = resolve_n_workers(n_workers, n_tasks=len(batches))

    shards = _shard_batches(batches, n_workers)
    if len(shards) <= 1 or n_workers == 1:
        merged = _ingest_shard(params, batches)
    else:
        pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=len(shards)) as pool:
            workers = [pool.submit(_ingest_shard, params, shard) for shard in shards]
            estimators = [worker.result() for worker in workers]
        # Reduce in shard order so any per-point state stays serially ordered.
        merged = estimators[0]
        for estimator in estimators[1:]:
            merged.merge_stream(estimator)
    if merged.n_seen_ == 0:
        raise ValueError("parallel_ingest received no non-empty batches.")
    if finalize:
        merged.finalize()
    return merged
