"""Thread-safe registry of named, frozen cluster models.

A serving host typically keeps many models resident at once -- one per
tenant, per data stream, per resolution level -- and swaps them atomically
as retrained artifacts arrive.  :class:`ModelRegistry` is that map: a lock-
protected ``name -> ClusterModel`` dictionary.  The models themselves are
immutable, so readers never need the lock while predicting; only the
name-to-model binding is guarded.

Blue/green deployment is first-class: :meth:`ModelRegistry.swap` publishes a
new model under a fresh version name (``"<name>@v<k>"``) and rebinds the
serving alias ``name`` in the same locked step, so a reader resolving the
alias *always* finds a model -- there is no instant between "old gone" and
"new registered".  Superseded versions stay resolvable (for pinned readers
and rollback) until evicted by the ``max_versions`` / ``ttl_seconds``
retention policy; the live version is never evicted.
"""

from __future__ import annotations

import re
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.serve.model import ClusterModel

#: Names ending in ``@v<digits>`` form the version namespace reserved for
#: :meth:`ModelRegistry.swap`; plain ``register`` refuses them so a pinned
#: version can never be silently rebound to a different artifact.
_VERSION_SUFFIX = re.compile(r"@v\d+$")


class ModelRegistry:
    """Concurrent ``name -> ClusterModel`` map with atomic swap semantics.

    Parameters
    ----------
    max_versions:
        Retain at most this many versions per swapped name (the live one
        included); older versions are evicted on each swap.  ``None`` keeps
        every version until :meth:`evict_stale` or an explicit
        ``unregister``.
    ttl_seconds:
        Superseded versions older than this are evicted on each swap and by
        :meth:`evict_stale`.  ``None`` disables time-based eviction.  The
        live version of a name is never evicted by either policy.
    store:
        Optional content-addressed artifact store (anything with a
        ``publish(model) -> digest`` method, canonically
        :class:`~repro.serve.procpool.ArtifactStore`).  When set, every
        :meth:`register` / :meth:`swap` also publishes the model's
        ``compress=False`` npz artifact to the store and records its digest
        (readable via :meth:`digest`), which is how co-located worker
        processes re-open the exact bytes the registry is serving.
    """

    def __init__(
        self,
        *,
        max_versions: Optional[int] = None,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        store=None,
    ) -> None:
        if max_versions is not None and int(max_versions) < 1:
            raise ValueError(f"max_versions must be >= 1 or None; got {max_versions}.")
        if ttl_seconds is not None and float(ttl_seconds) < 0:
            raise ValueError(f"ttl_seconds must be >= 0 or None; got {ttl_seconds}.")
        self.max_versions = None if max_versions is None else int(max_versions)
        self.ttl_seconds = None if ttl_seconds is None else float(ttl_seconds)
        self.store = store
        self._clock = clock
        self._lock = threading.RLock()
        self._models: Dict[str, ClusterModel] = {}
        self._digests: Dict[str, str] = {}
        # Blue/green bookkeeping, all guarded by the same lock: per-name
        # version lists (oldest first), the live version, a monotonically
        # increasing counter (never reused, so a pinned "name@v3" can never
        # silently resolve to a different artifact) and creation times.
        self._versions: Dict[str, List[str]] = {}
        self._active: Dict[str, str] = {}
        self._counters: Dict[str, int] = {}
        self._created_at: Dict[str, float] = {}

    @staticmethod
    def _check_model(model: ClusterModel) -> None:
        if not isinstance(model, ClusterModel):
            raise TypeError(
                f"can only register ClusterModel artifacts; got {type(model).__name__}. "
                "Freeze an estimator with AdaWave.export_model() first."
            )

    def register(
        self, name: str, model: ClusterModel, *, overwrite: bool = True
    ) -> ClusterModel:
        """Bind ``model`` under ``name`` (atomically replacing any previous one).

        With ``overwrite=False`` an existing binding raises ``ValueError``
        instead of being replaced.  Returns the registered model.  This is
        the plain, history-free binding; use :meth:`swap` for blue/green
        versioned publication.  Names in the version namespace
        (``"<base>@v<k>"``) are refused -- a pinned version must never be
        silently rebound to a different artifact.
        """
        self._check_model(model)
        name = str(name)
        if _VERSION_SUFFIX.search(name):
            raise ValueError(
                f"{name!r} is in the version namespace reserved for swap(); "
                "register the base name, or swap() to publish a new version."
            )
        with self._lock:
            if not overwrite and name in self._models:
                raise ValueError(
                    f"model {name!r} is already registered; pass overwrite=True "
                    "to replace it."
                )
        # Publish to the artifact store *before* binding, so a failed write
        # never leaves the registry serving a model the workers cannot open.
        digest = None if self.store is None else self.store.publish(model)
        with self._lock:
            if not overwrite and name in self._models:
                raise ValueError(
                    f"model {name!r} is already registered; pass overwrite=True "
                    "to replace it."
                )
            self._models[name] = model
            if digest is not None:
                self._digests[name] = digest
            # A plain rebind takes the alias out of swap management: the
            # previously active version no longer describes what the alias
            # serves (retained versions stay resolvable for pinned readers).
            self._active.pop(name, None)
        return model

    # -- blue/green versioned publication ---------------------------------------

    def swap(self, name: str, model: ClusterModel) -> str:
        """Publish ``model`` as the new live version of ``name``; returns it.

        One locked step: the model is registered under the next version name
        (``"<name>@v<k>"``), the serving alias ``name`` is rebound to it,
        and the retention policy evicts superseded versions.  Readers
        resolving the alias therefore never observe a missing model, and
        readers pinned to an explicit version keep it until eviction.
        """
        self._check_model(model)
        name = str(name)
        if "@v" in name:
            raise ValueError(
                f"cannot swap onto the version name {name!r}; swap the base "
                "name and let the registry assign the version."
            )
        digest = None if self.store is None else self.store.publish(model)
        with self._lock:
            counter = self._counters.get(name, 0) + 1
            self._counters[name] = counter
            version = f"{name}@v{counter}"
            self._models[version] = model
            self._models[name] = model
            self._versions.setdefault(name, []).append(version)
            self._active[name] = version
            self._created_at[version] = self._clock()
            if digest is not None:
                self._digests[version] = digest
                self._digests[name] = digest
            self._evict_locked(name)
        return version

    def digest(self, name: str) -> Optional[str]:
        """Artifact-store content digest of ``name`` (None without a store)."""
        with self._lock:
            return self._digests.get(str(name))

    def versions(self, name: str) -> List[str]:
        """Retained version names of ``name``, oldest first."""
        with self._lock:
            return list(self._versions.get(str(name), ()))

    def active_version(self, name: str) -> Optional[str]:
        """Version name the alias ``name`` currently serves (None if never swapped)."""
        with self._lock:
            return self._active.get(str(name))

    def evict_stale(self) -> List[str]:
        """Apply the retention policy to every swapped name; returns evictions.

        When an artifact store with a ``gc`` method is attached, the
        surviving digests are passed to it so TTL-evicted versions release
        their npz files instead of leaking them.  Note the store is garbage-
        collected against *this* registry's survivors -- a store shared by
        several registries should be gc'd explicitly with the union of their
        digests instead.
        """
        with self._lock:
            evicted: List[str] = []
            for name in list(self._versions):
                evicted.extend(self._evict_locked(name))
            survivors = sorted(set(self._digests.values()))
        if evicted and self.store is not None:
            gc = getattr(self.store, "gc", None)
            if gc is not None:
                gc(survivors)
        return evicted

    def _evict_locked(self, name: str) -> List[str]:
        versions = self._versions.get(name)
        if not versions:
            return []
        active = self._active.get(name)
        now = self._clock()
        drop: List[str] = []
        keep: List[str] = []
        over_budget = (
            0 if self.max_versions is None else len(versions) - self.max_versions
        )
        for position, version in enumerate(versions):
            stale = self.ttl_seconds is not None and (
                now - self._created_at.get(version, now) > self.ttl_seconds
            )
            # Versions are oldest-first, so the first `over_budget` entries
            # are exactly the ones the count cap evicts.
            if version != active and (stale or position < over_budget):
                drop.append(version)
            else:
                keep.append(version)
        for version in drop:
            self._models.pop(version, None)
            self._created_at.pop(version, None)
            self._digests.pop(version, None)
        self._versions[name] = keep
        return drop

    # -- lookup ------------------------------------------------------------------

    def get(self, name: str) -> ClusterModel:
        """The model bound to ``name``; raises ``KeyError`` with the known names."""
        with self._lock:
            try:
                return self._models[name]
            except KeyError:
                known = ", ".join(sorted(self._models)) or "<none>"
                raise KeyError(
                    f"no model named {name!r} is registered (known: {known})."
                ) from None

    def unregister(self, name: str) -> ClusterModel:
        """Remove and return the model bound to ``name``.

        Unregistering a base name also drops its version history; a version
        name removes just that version from the registry *and* its base's
        version list (the serving alias is not rebound -- it still holds
        the model object it pointed at).
        """
        name = str(name)
        with self._lock:
            try:
                model = self._models.pop(name)
            except KeyError:
                raise KeyError(f"no model named {name!r} is registered.") from None
            suffix = _VERSION_SUFFIX.search(name)
            if suffix:
                base = name[: suffix.start()]
                versions = self._versions.get(base)
                if versions and name in versions:
                    versions.remove(name)
                if self._active.get(base) == name:
                    self._active.pop(base, None)
            else:
                for version in self._versions.pop(name, ()):
                    self._models.pop(version, None)
                    self._created_at.pop(version, None)
                    self._digests.pop(version, None)
                self._active.pop(name, None)
            self._created_at.pop(name, None)
            self._digests.pop(name, None)
            return model

    def names(self) -> List[str]:
        """Sorted snapshot of the registered model names (versions included)."""
        with self._lock:
            return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    # -- persistence conveniences ---------------------------------------------

    def load(
        self, name: str, path: Union[str, Path], *, mmap: bool = False
    ) -> ClusterModel:
        """Load a saved artifact from ``path`` and register it under ``name``.

        With ``mmap=True`` the artifact's arrays are memory-mapped
        (:meth:`ClusterModel.load`), so several serving processes loading
        the same file share its pages instead of each holding a copy.
        """
        return self.register(name, ClusterModel.load(path, mmap=mmap))

    def save_all(self, directory: Union[str, Path]) -> Dict[str, Path]:
        """Save every registered model as ``<directory>/<name>.npz``.

        The *active* version of a swapped name is skipped: its bytes are
        exactly the alias file, so writing both would serialize every live
        model twice.  Superseded versions are distinct artifacts and are
        saved.  (Version names contain ``"@"``, which stays filesystem-safe
        on the platforms this repo targets.)
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with self._lock:
            snapshot = dict(self._models)
            active = set(self._active.values())
        return {
            name: model.save(directory / f"{name}.npz")
            for name, model in snapshot.items()
            if name not in active
        }

    def load_dir(self, directory: Union[str, Path]) -> List[str]:
        """Register every ``*.npz`` artifact in ``directory`` under its stem.

        Stems in the version namespace (``"<base>@v<k>"``, as written by
        :meth:`save_all` for superseded versions) are bound directly as
        resolvable pinned artifacts -- swap bookkeeping (version lists, the
        active pointer) is not persisted and does not round-trip.
        """
        names: List[str] = []
        for path in sorted(Path(directory).glob("*.npz")):
            stem = path.stem
            if _VERSION_SUFFIX.search(stem):
                model = ClusterModel.load(path)
                with self._lock:
                    self._models[stem] = model
            else:
                self.load(stem, path)
            names.append(stem)
        return names

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry({self.names()!r})"
