"""Thread-safe registry of named, frozen cluster models.

A serving host typically keeps many models resident at once -- one per
tenant, per data stream, per resolution level -- and swaps them atomically
as retrained artifacts arrive.  :class:`ModelRegistry` is that map: a lock-
protected ``name -> ClusterModel`` dictionary.  The models themselves are
immutable, so readers never need the lock while predicting; only the
name-to-model binding is guarded.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, List, Union

from repro.serve.model import ClusterModel


class ModelRegistry:
    """Concurrent ``name -> ClusterModel`` map with atomic swap semantics."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._models: Dict[str, ClusterModel] = {}

    def register(
        self, name: str, model: ClusterModel, *, overwrite: bool = True
    ) -> ClusterModel:
        """Bind ``model`` under ``name`` (atomically replacing any previous one).

        With ``overwrite=False`` an existing binding raises ``ValueError``
        instead of being replaced.  Returns the registered model.
        """
        if not isinstance(model, ClusterModel):
            raise TypeError(
                f"can only register ClusterModel artifacts; got {type(model).__name__}. "
                "Freeze an estimator with AdaWave.export_model() first."
            )
        name = str(name)
        with self._lock:
            if not overwrite and name in self._models:
                raise ValueError(
                    f"model {name!r} is already registered; pass overwrite=True "
                    "to replace it."
                )
            self._models[name] = model
        return model

    def get(self, name: str) -> ClusterModel:
        """The model bound to ``name``; raises ``KeyError`` with the known names."""
        with self._lock:
            try:
                return self._models[name]
            except KeyError:
                known = ", ".join(sorted(self._models)) or "<none>"
                raise KeyError(
                    f"no model named {name!r} is registered (known: {known})."
                ) from None

    def unregister(self, name: str) -> ClusterModel:
        """Remove and return the model bound to ``name``."""
        with self._lock:
            try:
                return self._models.pop(name)
            except KeyError:
                raise KeyError(f"no model named {name!r} is registered.") from None

    def names(self) -> List[str]:
        """Sorted snapshot of the registered model names."""
        with self._lock:
            return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    # -- persistence conveniences ---------------------------------------------

    def load(self, name: str, path: Union[str, Path]) -> ClusterModel:
        """Load a saved artifact from ``path`` and register it under ``name``."""
        return self.register(name, ClusterModel.load(path))

    def save_all(self, directory: Union[str, Path]) -> Dict[str, Path]:
        """Save every registered model as ``<directory>/<name>.npz``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with self._lock:
            snapshot = dict(self._models)
        return {
            name: model.save(directory / f"{name}.npz")
            for name, model in snapshot.items()
        }

    def load_dir(self, directory: Union[str, Path]) -> List[str]:
        """Register every ``*.npz`` artifact in ``directory`` under its stem."""
        names: List[str] = []
        for path in sorted(Path(directory).glob("*.npz")):
            self.load(path.stem, path)
            names.append(path.stem)
        return names

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry({self.names()!r})"
