"""Model-serving layer: frozen artifacts, registries and concurrent predict.

A fitted AdaWave run compresses into a tiny, immutable artifact -- the
quantizer geometry plus the surviving transformed-cell -> cluster map --
that labels arbitrary new points in one vectorized lookup pass without ever
touching the training data.  This package turns that observation into a
serving stack:

* :class:`ClusterModel` -- the frozen artifact, with versioned
  ``save``/``load`` (npz + JSON header; ``load(mmap=True)`` memory-maps
  uncompressed artifacts so co-located processes share pages) and
  ``O(n log cells)`` ``predict``;
* :class:`ModelRegistry` -- a thread-safe map of named models with atomic
  hot-swap semantics: blue/green versioned :meth:`~ModelRegistry.swap`
  (readers never observe a missing model) plus ``max_versions`` / TTL
  retention of superseded versions;
* :class:`ClusteringService` -- concurrent, micro-batched ``predict`` over
  many registered models, with admission control (``max_pending``,
  :class:`Overloaded` rejection or blocking backpressure), an asyncio front
  end (:meth:`~ClusteringService.predict_async` /
  :meth:`~ClusteringService.ingest_async`) and a ``close()`` /
  context-manager lifecycle (:class:`ServiceClosed` afterwards);
* :class:`ProcessPoolService` -- the multi-process serving plane: predict
  micro-batches dispatched to a pool of worker processes that hold the live
  models memory-mapped against a shared content-addressed
  :class:`ArtifactStore`, with blue/green swaps preserved across process
  boundaries;
* :class:`EdgeServer` / :class:`EdgeThread` -- a stdlib-only HTTP/1.1 front
  door over any service: ``POST /predict/<name>`` (JSON or raw npy bodies),
  ``POST /swap/<name>``, ``/healthz`` and ``/metrics``, with per-request
  deadline propagation (``X-Deadline-Ms`` -> bounded backpressure, 429/504
  load shedding) and graceful drain on close;
* :class:`Telemetry` -- the shared metrics surface (per-model latency
  quantiles, batch sizes, queue depth, swap counts, worker respawns, drift
  history, per-stage latency histograms, per-route edge quantiles and the
  slow-trace ring) every serving component reports into; Prometheus text
  exposition lives in :mod:`repro.obs` and ``Telemetry.to_prometheus()``;
* :class:`SlotRing` -- the zero-copy shared-memory data plane the
  multi-process service ships float batches through (queues carry only
  descriptors);
* :func:`parallel_ingest` -- sharded thread/process ingestion of batched
  datasets, exploiting that the quantized grid is an associative sketch
  (:class:`~repro.stream.StreamSketch`).

Typical flow::

    from repro import AdaWave
    from repro.serve import ClusteringService, ClusterModel

    frozen = AdaWave(scale=128).fit(X_train).export_model()
    frozen.save("clusters.npz")

    service = ClusteringService()
    service.load("prod", "clusters.npz")
    labels = service.predict("prod", X_new)
"""

from repro.serve.edge import DEADLINE_HEADER, EdgeServer, EdgeThread
from repro.serve.metrics import Telemetry
from repro.serve.model import FORMAT_MAGIC, FORMAT_VERSION, ClusterModel
from repro.serve.parallel import parallel_ingest
from repro.serve.procpool import ArtifactStore, ProcessPoolService, ProcessWorkerPool
from repro.serve.registry import ModelRegistry
from repro.serve.service import ClusteringService, Overloaded, ServiceClosed
from repro.serve.shm import SlotRing, SlotRingClient, shm_available

__all__ = [
    "ArtifactStore",
    "ClusterModel",
    "ModelRegistry",
    "ClusteringService",
    "ProcessPoolService",
    "ProcessWorkerPool",
    "EdgeServer",
    "EdgeThread",
    "DEADLINE_HEADER",
    "SlotRing",
    "SlotRingClient",
    "shm_available",
    "Overloaded",
    "ServiceClosed",
    "Telemetry",
    "parallel_ingest",
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
]
