"""Model-serving layer: frozen artifacts, registries and concurrent predict.

A fitted AdaWave run compresses into a tiny, immutable artifact -- the
quantizer geometry plus the surviving transformed-cell -> cluster map --
that labels arbitrary new points in one vectorized lookup pass without ever
touching the training data.  This package turns that observation into a
serving stack:

* :class:`ClusterModel` -- the frozen artifact, with versioned
  ``save``/``load`` (npz + JSON header) and ``O(n log cells)`` ``predict``;
* :class:`ModelRegistry` -- a thread-safe map of named models with atomic
  hot-swap semantics;
* :class:`ClusteringService` -- concurrent, micro-batched ``predict`` over
  many registered models;
* :func:`parallel_ingest` -- sharded thread/process ingestion of batched
  datasets, exploiting that the quantized grid is an associative sketch.

Typical flow::

    from repro import AdaWave
    from repro.serve import ClusteringService, ClusterModel

    frozen = AdaWave(scale=128).fit(X_train).export_model()
    frozen.save("clusters.npz")

    service = ClusteringService()
    service.load("prod", "clusters.npz")
    labels = service.predict("prod", X_new)
"""

from repro.serve.model import FORMAT_MAGIC, FORMAT_VERSION, ClusterModel
from repro.serve.parallel import parallel_ingest
from repro.serve.registry import ModelRegistry
from repro.serve.service import ClusteringService

__all__ = [
    "ClusterModel",
    "ModelRegistry",
    "ClusteringService",
    "parallel_ingest",
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
]
