"""Serving telemetry: latency histograms, queue depth, swaps, drift history.

A serving plane is only operable if it can answer "how is it doing?" without
stopping.  :class:`Telemetry` is the shared hook surface every serving
component reports into -- :class:`~repro.serve.ClusteringService` (and its
multi-process subclass) records per-model predict latency and batch sizes,
admission control records queue depth and rejections, blue/green publication
records swaps, and :class:`~repro.stream.StreamController` records its
drift-check history and contained callback failures.

Everything is aggregated in-process under one lock: bounded reservoirs for
the latency/batch-size distributions (so an always-on service never grows),
plain counters for the rest.  :meth:`Telemetry.snapshot` returns a nested
plain-``dict`` view (JSON-able) at any time, and an optional ``sink``
callable receives every event as it is recorded, so tests, benchmarks and
exporters can introspect the stream without polling.  A failing sink is
contained and counted, never propagated into the serving path.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

import numpy as np

#: Latency quantiles exported by :meth:`Telemetry.snapshot`.
QUANTILES = (0.5, 0.9, 0.99)


class _PredictSeries:
    """Bounded per-model predict statistics (latency + batch size)."""

    __slots__ = ("count", "rows", "seconds_total", "seconds_max", "latencies",
                 "batch_max")

    def __init__(self, reservoir: int) -> None:
        self.count = 0
        self.rows = 0
        self.seconds_total = 0.0
        self.seconds_max = 0.0
        self.latencies: Deque[float] = deque(maxlen=reservoir)
        self.batch_max = 0


class Telemetry:
    """Thread-safe aggregation point for serving metrics.

    Parameters
    ----------
    reservoir:
        Per-model latency samples retained for quantile estimation (a
        sliding reservoir of the most recent passes; counters and totals
        remain exact over the full lifetime).
    history_limit:
        Drift-check reports retained in :meth:`snapshot`'s history.
    sink:
        Optional callable receiving every recorded event as a flat ``dict``
        (``{"event": "predict", "model": ..., "seconds": ...}``).  The
        queue-depth *gauge* is the one exception: it changes on every
        admit/release, so it is readable from :meth:`snapshot` but not
        streamed.  Exceptions raised by the sink are swallowed and counted
        under ``sink_errors`` -- telemetry must never take the serving path
        down.
    """

    def __init__(
        self,
        *,
        reservoir: int = 2048,
        history_limit: int = 256,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if int(reservoir) < 1:
            raise ValueError(f"reservoir must be >= 1; got {reservoir}.")
        if int(history_limit) < 1:
            raise ValueError(f"history_limit must be >= 1; got {history_limit}.")
        self.reservoir = int(reservoir)
        self.sink = sink
        self._lock = threading.Lock()
        self._predict: Dict[str, _PredictSeries] = {}
        self._rejections: Dict[str, int] = {}
        self._queue_depth = 0
        self._max_queue_depth = 0
        self._swaps: Dict[str, int] = {}
        self._last_swap: Optional[str] = None
        self._worker_respawns: Dict[int, int] = {}
        self._drift_checks = 0
        self._drift_flagged = 0
        self._drift_history: Deque[Dict[str, Any]] = deque(maxlen=int(history_limit))
        self._callback_errors = 0
        self._last_callback_error: Optional[str] = None
        self._sink_errors = 0

    # -- recording ---------------------------------------------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.sink is None:
            return
        try:
            self.sink(event)
        except Exception:
            with self._lock:
                self._sink_errors += 1

    def record_predict(self, model: str, seconds: float, batch_size: int) -> None:
        """One executed predict pass: its wall time and row count."""
        with self._lock:
            series = self._predict.get(model)
            if series is None:
                series = self._predict[model] = _PredictSeries(self.reservoir)
            series.count += 1
            series.rows += int(batch_size)
            series.seconds_total += float(seconds)
            series.seconds_max = max(series.seconds_max, float(seconds))
            series.latencies.append(float(seconds))
            series.batch_max = max(series.batch_max, int(batch_size))
        self._emit({"event": "predict", "model": model,
                    "seconds": float(seconds), "batch_size": int(batch_size)})

    def record_reject(self, model: str) -> None:
        """One request turned away by admission control."""
        with self._lock:
            self._rejections[model] = self._rejections.get(model, 0) + 1
        self._emit({"event": "reject", "model": model})

    def record_queue_depth(self, depth: int) -> None:
        """Pending-request gauge, updated on every admit and release.

        Not streamed to the sink (it would dominate the event stream); read
        it from :meth:`snapshot` -- ``depth`` is the live value, ``max_depth``
        the high-water mark.
        """
        with self._lock:
            self._queue_depth = int(depth)
            self._max_queue_depth = max(self._max_queue_depth, int(depth))

    def record_swap(self, name: str, version: str) -> None:
        """One blue/green publication of ``version`` under alias ``name``."""
        with self._lock:
            self._swaps[name] = self._swaps.get(name, 0) + 1
            self._last_swap = version
        self._emit({"event": "swap", "model": name, "version": version})

    def record_worker_respawn(self, worker: int) -> None:
        """One dead worker process replaced by the pool's watchdog."""
        with self._lock:
            self._worker_respawns[int(worker)] = (
                self._worker_respawns.get(int(worker), 0) + 1
            )
        self._emit({"event": "worker_respawn", "worker": int(worker)})

    def record_drift_check(self, report: Any) -> None:
        """One drift check; ``report`` is a DriftReport (or mapping)."""
        if dataclasses.is_dataclass(report):
            entry = dataclasses.asdict(report)
        else:
            entry = dict(report)
        entry["reasons"] = list(entry.get("reasons") or ())
        with self._lock:
            self._drift_checks += 1
            if entry.get("drifted"):
                self._drift_flagged += 1
            self._drift_history.append(entry)
        self._emit({"event": "drift_check", **entry})

    def record_callback_error(self, where: str, error: BaseException) -> None:
        """A contained exception from a user callback (or worker control op)."""
        with self._lock:
            self._callback_errors += 1
            self._last_callback_error = f"{where}: {type(error).__name__}: {error}"
        self._emit({"event": "callback_error", "where": where,
                    "error": f"{type(error).__name__}: {error}"})

    # -- introspection -----------------------------------------------------------

    @staticmethod
    def _distribution(samples: Deque[float]) -> Dict[str, float]:
        values = np.asarray(samples, dtype=np.float64)
        stats = {f"p{int(q * 100)}": float(np.quantile(values, q)) for q in QUANTILES}
        stats["mean"] = float(values.mean())
        return stats

    def snapshot(self) -> Dict[str, Any]:
        """Plain-``dict`` view of everything recorded so far (JSON-able).

        Per-model predict entries report exact lifetime counters (``count``,
        ``rows``, total/max seconds) plus latency quantiles over the bounded
        reservoir of the most recent passes.
        """
        with self._lock:
            predict: Dict[str, Any] = {}
            for model, series in self._predict.items():
                latency = self._distribution(series.latencies)
                latency["max"] = series.seconds_max
                latency["total"] = series.seconds_total
                predict[model] = {
                    "count": series.count,
                    "rows": series.rows,
                    "latency": latency,
                    "batch_size": {
                        "mean": series.rows / series.count if series.count else 0.0,
                        "max": series.batch_max,
                    },
                }
            return {
                "predict": predict,
                "queue": {"depth": self._queue_depth,
                          "max_depth": self._max_queue_depth},
                "rejections": {"total": sum(self._rejections.values()),
                               "by_model": dict(self._rejections)},
                "swaps": {"count": sum(self._swaps.values()),
                          "by_name": dict(self._swaps),
                          "last_version": self._last_swap},
                "workers": {
                    "respawns": sum(self._worker_respawns.values()),
                    "by_worker": dict(self._worker_respawns),
                },
                "drift": {"checks": self._drift_checks,
                          "drifted": self._drift_flagged,
                          "history": [dict(entry) for entry in self._drift_history]},
                "callbacks": {"errors": self._callback_errors,
                              "last": self._last_callback_error},
                "sink_errors": self._sink_errors,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            passes = sum(s.count for s in self._predict.values())
            swaps = sum(self._swaps.values())
        return f"Telemetry(passes={passes}, swaps={swaps}, checks={self._drift_checks})"
