"""Serving telemetry: latency histograms, queue depth, swaps, drift history.

A serving plane is only operable if it can answer "how is it doing?" without
stopping.  :class:`Telemetry` is the shared hook surface every serving
component reports into -- :class:`~repro.serve.ClusteringService` (and its
multi-process subclass) records per-model predict latency and batch sizes,
admission control records queue depth and rejections, blue/green publication
records swaps, and :class:`~repro.stream.StreamController` records its
drift-check history and contained callback failures.

Everything is aggregated in-process under one lock: bounded reservoirs for
the latency/batch-size distributions (so an always-on service never grows),
plain counters for the rest.  :meth:`Telemetry.snapshot` returns a nested
plain-``dict`` view (JSON-able) at any time, and an optional ``sink``
callable receives every event as it is recorded, so tests, benchmarks and
exporters can introspect the stream without polling.  A failing sink is
contained and counted, never propagated into the serving path.
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
import time
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.timeseries import TimeSeriesStore

#: Latency quantiles exported by :meth:`Telemetry.snapshot`.
QUANTILES = (0.5, 0.9, 0.99)

#: Upper bounds (seconds) of the per-stage latency histograms: log-spaced
#: from 10us to 10s, covering everything from a queue hand-off to a
#: deadline-blown worker pass.  The final implicit bucket is ``+Inf``.
STAGE_BUCKETS = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class _StageSeries:
    """Fixed-bucket latency histogram for one serving-path stage.

    Unlike the reservoir-backed predict series, stage observations land in
    pre-sized cumulative-at-snapshot buckets, so the memory cost is constant
    no matter how hot the path is -- the natural shape for Prometheus
    ``_bucket``/``_sum``/``_count`` exposition.
    """

    __slots__ = ("count", "seconds_total", "seconds_max", "bucket_counts")

    def __init__(self) -> None:
        self.count = 0
        self.seconds_total = 0.0
        self.seconds_max = 0.0
        # One slot per finite bound plus the +Inf overflow slot.
        self.bucket_counts = [0] * (len(STAGE_BUCKETS) + 1)

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.count += 1
        self.seconds_total += seconds
        if seconds > self.seconds_max:
            self.seconds_max = seconds
        # bisect_left finds the first bound >= seconds (``le`` semantics);
        # past-the-end lands in the trailing +Inf slot.  C-implemented, so
        # the hot recording path does no Python-level bucket scan.
        self.bucket_counts[bisect_left(STAGE_BUCKETS, seconds)] += 1

    def cumulative_buckets(self) -> List[List[Any]]:
        """``[le, cumulative_count]`` pairs ending with ``["+Inf", count]``."""
        out: List[List[Any]] = []
        running = 0
        for bound, n in zip(STAGE_BUCKETS, self.bucket_counts):
            running += n
            out.append([bound, running])
        out.append(["+Inf", self.count])
        return out


class _EdgeSeries:
    """Per-route HTTP statistics: status counts + round-trip reservoir."""

    __slots__ = ("count", "by_status", "latencies", "seconds_total", "seconds_max")

    def __init__(self, reservoir: int) -> None:
        self.count = 0
        self.by_status: Dict[str, int] = {}
        self.latencies: Deque[float] = deque(maxlen=reservoir)
        self.seconds_total = 0.0
        self.seconds_max = 0.0


class _PredictSeries:
    """Bounded per-model predict statistics (latency + batch size)."""

    __slots__ = ("count", "rows", "seconds_total", "seconds_max", "latencies",
                 "batch_max")

    def __init__(self, reservoir: int) -> None:
        self.count = 0
        self.rows = 0
        self.seconds_total = 0.0
        self.seconds_max = 0.0
        self.latencies: Deque[float] = deque(maxlen=reservoir)
        self.batch_max = 0


class Telemetry:
    """Thread-safe aggregation point for serving metrics.

    Parameters
    ----------
    reservoir:
        Per-model latency samples retained for quantile estimation (a
        sliding reservoir of the most recent passes; counters and totals
        remain exact over the full lifetime).
    history_limit:
        Drift-check reports retained in :meth:`snapshot`'s history.
    slow_traces:
        Closed request traces retained with their full span breakdown: the
        N slowest seen so far (a min-heap, so the bar keeps rising) plus a
        ring of the most recent error/deadline-violating traces.  Exposed
        under ``snapshot()["traces"]`` and the edge's ``GET /debug/slow``.
    sink:
        Optional callable receiving every recorded event as a flat ``dict``
        (``{"event": "predict", "model": ..., "seconds": ...}``).  The
        queue-depth *gauge* is the one exception: it changes on every
        admit/release, so it is readable from :meth:`snapshot` but not
        streamed.  Exceptions raised by the sink are swallowed and counted
        under ``sink_errors`` -- telemetry must never take the serving path
        down.
    series:
        Optional :class:`~repro.obs.timeseries.TimeSeriesStore` receiving
        periodic rollups from :meth:`sample_series` (a fresh store with
        1-second steps is created when omitted).  Point-in-time aggregates
        become windowed history: request/error rates, per-stage and
        per-route latency quantiles, queue depth -- exported under
        ``snapshot()["series"]`` and as Prometheus gauges.
    """

    def __init__(
        self,
        *,
        reservoir: int = 2048,
        history_limit: int = 256,
        slow_traces: int = 32,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        series: Optional[TimeSeriesStore] = None,
    ) -> None:
        if int(reservoir) < 1:
            raise ValueError(f"reservoir must be >= 1; got {reservoir}.")
        if int(history_limit) < 1:
            raise ValueError(f"history_limit must be >= 1; got {history_limit}.")
        if int(slow_traces) < 1:
            raise ValueError(f"slow_traces must be >= 1; got {slow_traces}.")
        self.reservoir = int(reservoir)
        self.slow_traces = int(slow_traces)
        self.sink = sink
        self.series = series if series is not None else TimeSeriesStore()
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._predict: Dict[str, _PredictSeries] = {}
        self._rejections: Dict[str, int] = {}
        self._queue_depth = 0
        self._max_queue_depth = 0
        self._swaps: Dict[str, int] = {}
        self._last_swap: Optional[str] = None
        self._worker_respawns: Dict[int, int] = {}
        self._worker_pinned: Dict[int, int] = {}
        self._drift_checks = 0
        self._drift_flagged = 0
        self._drift_history: Deque[Dict[str, Any]] = deque(maxlen=int(history_limit))
        self._callback_errors = 0
        self._last_callback_error: Optional[str] = None
        self._sink_errors = 0
        self._stages: Dict[str, _StageSeries] = {}
        self._edge: Dict[str, _EdgeSeries] = {}
        self._trace_count = 0
        self._trace_errors = 0
        self._trace_violations = 0
        self._trace_seq = 0  # heap tie-breaker; dicts don't compare
        self._slowest: List[Tuple[float, int, Dict[str, Any]]] = []
        self._bad_traces: Deque[Dict[str, Any]] = deque(maxlen=self.slow_traces)

    # -- recording ---------------------------------------------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.sink is None:
            return
        try:
            self.sink(event)
        except Exception:
            with self._lock:
                self._sink_errors += 1

    def record_predict(self, model: str, seconds: float, batch_size: int) -> None:
        """One executed predict pass: its wall time and row count."""
        with self._lock:
            series = self._predict.get(model)
            if series is None:
                series = self._predict[model] = _PredictSeries(self.reservoir)
            series.count += 1
            series.rows += int(batch_size)
            series.seconds_total += float(seconds)
            series.seconds_max = max(series.seconds_max, float(seconds))
            series.latencies.append(float(seconds))
            series.batch_max = max(series.batch_max, int(batch_size))
        self._emit({"event": "predict", "model": model,
                    "seconds": float(seconds), "batch_size": int(batch_size)})

    def record_reject(self, model: str) -> None:
        """One request turned away by admission control."""
        with self._lock:
            self._rejections[model] = self._rejections.get(model, 0) + 1
        self._emit({"event": "reject", "model": model})

    def record_queue_depth(self, depth: int) -> None:
        """Pending-request gauge, updated on every admit and release.

        Not streamed to the sink (it would dominate the event stream); read
        it from :meth:`snapshot` -- ``depth`` is the live value, ``max_depth``
        the high-water mark.
        """
        with self._lock:
            self._queue_depth = int(depth)
            self._max_queue_depth = max(self._max_queue_depth, int(depth))

    def record_swap(self, name: str, version: str) -> None:
        """One blue/green publication of ``version`` under alias ``name``."""
        with self._lock:
            self._swaps[name] = self._swaps.get(name, 0) + 1
            self._last_swap = version
        self._emit({"event": "swap", "model": name, "version": version})

    def record_worker_respawn(self, worker: int) -> None:
        """One dead worker process replaced by the pool's watchdog."""
        with self._lock:
            self._worker_respawns[int(worker)] = (
                self._worker_respawns.get(int(worker), 0) + 1
            )
        self._emit({"event": "worker_respawn", "worker": int(worker)})

    def record_worker_pinned(self, worker: int, cpu: Optional[int]) -> None:
        """One worker process pinned to a CPU (``None`` = pin removed/failed)."""
        with self._lock:
            if cpu is None:
                self._worker_pinned.pop(int(worker), None)
            else:
                self._worker_pinned[int(worker)] = int(cpu)

    def record_stage(self, stage: str, seconds: float) -> None:
        """One observation of a named serving-path (or pipeline) stage.

        Stage observations aggregate into fixed log-spaced histograms
        (:data:`STAGE_BUCKETS`), exported as proper cumulative Prometheus
        histograms.  Not streamed to the sink individually -- one traced
        request produces ~8 of these, which would drown the event stream;
        :meth:`record_trace` emits a single summarising event instead.
        """
        with self._lock:
            series = self._stages.get(stage)
            if series is None:
                series = self._stages[stage] = _StageSeries()
            series.observe(seconds)

    def record_edge_request(self, route: str, status: int, seconds: float) -> None:
        """One HTTP request answered by the edge: route, status, round trip."""
        with self._lock:
            series = self._edge.get(route)
            if series is None:
                series = self._edge[route] = _EdgeSeries(self.reservoir)
            series.count += 1
            key = str(int(status))
            series.by_status[key] = series.by_status.get(key, 0) + 1
            series.latencies.append(float(seconds))
            series.seconds_total += float(seconds)
            series.seconds_max = max(series.seconds_max, float(seconds))
        self._emit({"event": "edge_request", "route": route,
                    "status": int(status), "seconds": float(seconds)})

    def record_trace(self, trace: Any) -> None:
        """One closed request trace: fan its spans into the stage histograms.

        Also maintains the slow-request capture: the ``slow_traces``
        slowest traces ever seen (min-heap -- the bar only rises) plus a
        ring of the most recent traces that errored or violated their
        deadline, each retained with the full span breakdown.
        """
        if not trace.closed:
            trace.close()
        total = float(trace.total_seconds or 0.0)
        bad = trace.error is not None or trace.deadline_violated
        # The span dict is only materialised for traces that are actually
        # captured (bad, or slow enough to enter the heap) -- the steady
        # state is a fast path of counter bumps and histogram updates.
        entry = trace.to_dict() if bad else None
        with self._lock:
            for span in trace.spans:
                series = self._stages.get(span.stage)
                if series is None:
                    series = self._stages[span.stage] = _StageSeries()
                series.observe(span.seconds)
            self._trace_count += 1
            if trace.error is not None:
                self._trace_errors += 1
            if trace.deadline_violated:
                self._trace_violations += 1
            if bad:
                self._bad_traces.append(entry)
            self._trace_seq += 1
            if len(self._slowest) < self.slow_traces:
                if entry is None:
                    entry = trace.to_dict()
                heapq.heappush(self._slowest, (total, self._trace_seq, entry))
            elif total > self._slowest[0][0]:
                if entry is None:
                    entry = trace.to_dict()
                heapq.heapreplace(self._slowest, (total, self._trace_seq, entry))
        if self.sink is not None:
            self._emit({"event": "trace", "trace_id": trace.trace_id,
                        "model": trace.model, "route": trace.route,
                        "seconds": total, "error": trace.error})

    def record_drift_check(self, report: Any, *, trace_id: Optional[str] = None) -> None:
        """One drift check; ``report`` is a DriftReport (or mapping).

        ``trace_id`` correlates the check with the structured log stream
        and any re-tune it triggers.
        """
        if dataclasses.is_dataclass(report):
            entry = dataclasses.asdict(report)
        else:
            entry = dict(report)
        entry["reasons"] = list(entry.get("reasons") or ())
        if trace_id is not None:
            entry["trace_id"] = trace_id
        with self._lock:
            self._drift_checks += 1
            if entry.get("drifted"):
                self._drift_flagged += 1
            self._drift_history.append(entry)
        self._emit({"event": "drift_check", **entry})

    def record_callback_error(self, where: str, error: BaseException) -> None:
        """A contained exception from a user callback (or worker control op)."""
        with self._lock:
            self._callback_errors += 1
            self._last_callback_error = f"{where}: {type(error).__name__}: {error}"
        self._emit({"event": "callback_error", "where": where,
                    "error": f"{type(error).__name__}: {error}"})

    def sample_series(self, at: Optional[float] = None) -> float:
        """Roll the current aggregates into the windowed time-series store.

        Called on a cadence (by :class:`repro.obs.sysmon.SystemMonitor`, a
        scraper, or a test), this turns the cumulative counters into
        ``counter`` series (windowed ``rate()`` answers requests/sec), the
        stage histograms into ``histogram`` series (windowed p50/p99), and
        the queue-depth gauge into a ``gauge`` series.  Returns the
        monotonic sample instant so callers can line up their own samples.
        """
        at = time.monotonic() if at is None else float(at)
        with self._lock:
            predict_count = sum(s.count for s in self._predict.values())
            predict_rows = sum(s.rows for s in self._predict.values())
            stage_vectors = {
                stage: list(series.bucket_counts)
                for stage, series in self._stages.items()
            }
            route_stats = {
                route: (
                    series.count,
                    sum(
                        n for status, n in series.by_status.items()
                        if status.startswith(("4", "5"))
                    ),
                    list(series.latencies),
                )
                for route, series in self._edge.items()
            }
            queue_depth = self._queue_depth
            trace_count = self._trace_count
            trace_errors = self._trace_errors
            rejections = sum(self._rejections.values())
        # Recorded outside the telemetry lock: the store has its own lock and
        # holding both invites ordering bugs for zero benefit.
        store = self.series
        store.observe("requests.count", predict_count, kind="counter", at=at)
        store.observe("requests.rows", predict_rows, kind="counter", at=at)
        store.observe("traces.count", trace_count, kind="counter", at=at)
        store.observe("traces.errors", trace_errors, kind="counter", at=at)
        store.observe("rejections.count", rejections, kind="counter", at=at)
        store.observe("queue.depth", queue_depth, kind="gauge", at=at)
        for stage, vector in stage_vectors.items():
            store.observe(
                f"stage.{stage}", vector, kind="histogram", at=at,
                bounds=STAGE_BUCKETS,
            )
        edge_requests = 0
        edge_errors = 0
        for route, (count, errors, latencies) in route_stats.items():
            edge_requests += count
            edge_errors += errors
            store.observe(f"edge.{route}.requests", count, kind="counter", at=at)
            store.observe(f"edge.{route}.errors", errors, kind="counter", at=at)
            if latencies:
                values = np.asarray(latencies, dtype=np.float64)
                store.observe(
                    f"edge.{route}.p50", float(np.quantile(values, 0.5)),
                    kind="gauge", at=at,
                )
                store.observe(
                    f"edge.{route}.p99", float(np.quantile(values, 0.99)),
                    kind="gauge", at=at,
                )
        store.observe("edge.requests", edge_requests, kind="counter", at=at)
        store.observe("edge.errors", edge_errors, kind="counter", at=at)
        return at

    # -- introspection -----------------------------------------------------------

    @staticmethod
    def _distribution(samples: Deque[float]) -> Dict[str, float]:
        values = np.asarray(samples, dtype=np.float64)
        stats = {f"p{int(q * 100)}": float(np.quantile(values, q)) for q in QUANTILES}
        stats["mean"] = float(values.mean())
        return stats

    def snapshot(self) -> Dict[str, Any]:
        """Plain-``dict`` view of everything recorded so far (JSON-able).

        Per-model predict entries report exact lifetime counters (``count``,
        ``rows``, total/max seconds) plus latency quantiles over the bounded
        reservoir of the most recent passes.  ``snapshot_at`` is a monotonic
        stamp and ``uptime_seconds`` the age of this Telemetry, so scrapers
        can compute rates without wall-clock skew; ``series`` carries the
        windowed time-series view (empty until :meth:`sample_series` runs).
        """
        snapshot_at = time.monotonic()
        # Rendered outside the telemetry lock: the store locks itself.
        series_view = self.series.to_dict(at=snapshot_at)
        with self._lock:
            predict: Dict[str, Any] = {}
            for model, series in self._predict.items():
                latency = self._distribution(series.latencies)
                latency["max"] = series.seconds_max
                latency["total"] = series.seconds_total
                predict[model] = {
                    "count": series.count,
                    "rows": series.rows,
                    "latency": latency,
                    "batch_size": {
                        "mean": series.rows / series.count if series.count else 0.0,
                        "max": series.batch_max,
                    },
                }
            stages: Dict[str, Any] = {}
            for stage, stage_series in self._stages.items():
                stages[stage] = {
                    "count": stage_series.count,
                    "seconds_total": stage_series.seconds_total,
                    "max": stage_series.seconds_max,
                    "buckets": stage_series.cumulative_buckets(),
                }
            routes: Dict[str, Any] = {}
            for route, edge_series in self._edge.items():
                latency = self._distribution(edge_series.latencies)
                latency["max"] = edge_series.seconds_max
                latency["total"] = edge_series.seconds_total
                routes[route] = {
                    "count": edge_series.count,
                    "by_status": dict(edge_series.by_status),
                    "latency": latency,
                }
            slowest = [
                dict(entry)
                for _, _, entry in sorted(
                    self._slowest, key=lambda item: item[0], reverse=True
                )
            ]
            return {
                "predict": predict,
                "stages": stages,
                "edge": {"routes": routes},
                "traces": {
                    "count": self._trace_count,
                    "errors": self._trace_errors,
                    "deadline_violations": self._trace_violations,
                    "slowest": slowest,
                    "violations": [dict(entry) for entry in self._bad_traces],
                },
                "queue": {"depth": self._queue_depth,
                          "max_depth": self._max_queue_depth},
                "rejections": {"total": sum(self._rejections.values()),
                               "by_model": dict(self._rejections)},
                "swaps": {"count": sum(self._swaps.values()),
                          "by_name": dict(self._swaps),
                          "last_version": self._last_swap},
                "workers": {
                    "respawns": sum(self._worker_respawns.values()),
                    "by_worker": dict(self._worker_respawns),
                    "pinned": dict(self._worker_pinned),
                },
                "drift": {"checks": self._drift_checks,
                          "drifted": self._drift_flagged,
                          "history": [dict(entry) for entry in self._drift_history]},
                "callbacks": {"errors": self._callback_errors,
                              "last": self._last_callback_error},
                "sink_errors": self._sink_errors,
                "uptime_seconds": snapshot_at - self._started,
                "snapshot_at": snapshot_at,
                "series": series_view,
            }

    def to_prometheus(self) -> str:
        """Current state as Prometheus text exposition (version 0.0.4)."""
        from repro.obs.prometheus import render_prometheus

        return render_prometheus(self.snapshot())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            passes = sum(s.count for s in self._predict.values())
            swaps = sum(self._swaps.values())
        return f"Telemetry(passes={passes}, swaps={swaps}, checks={self._drift_checks})"
