"""Concurrent clustering service: micro-batched predict over many models.

:class:`ClusteringService` is the front door of the serving layer.  It hosts
a :class:`~repro.serve.registry.ModelRegistry` and answers ``predict``
requests from arbitrarily many threads.  Requests against the same model are
*micro-batched*: while one thread (the "leader") is executing a vectorized
predict pass, every request that arrives for that model queues up and is
served by the leader's next pass as a single concatenated array.  Under
bursty traffic this amortises the per-call overhead (validation, encode,
``searchsorted`` setup) across the burst without adding any latency when the
service is idle -- a lone request executes immediately on its own thread.

Because :class:`~repro.serve.model.ClusterModel` is immutable and its lookup
is a pure function, concurrent predictions need no locking at all; only the
per-model request queues are guarded.  Model registration swaps atomically,
so a retrained artifact can replace a live one mid-traffic: in-flight
batches finish against the model they started with.

The service also fronts two operability concerns:

* **admission control** -- with ``max_pending`` set, at most that many
  requests may be pending at once; beyond it, :meth:`submit` raises
  :class:`Overloaded` immediately (shed load at the door instead of
  queueing unboundedly), while ``submit(..., wait_for_slot=True)`` /
  ``predict_async(..., backpressure=True)`` block the *caller* until a slot
  frees -- explicit backpressure instead of rejection.
* **telemetry** -- every executed pass reports its per-model latency and
  batch size into a :class:`~repro.serve.metrics.Telemetry`, along with
  queue depth, rejections and swap counts; read it with
  ``service.telemetry.snapshot()``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.trace import (
    STAGE_ADMISSION_WAIT,
    STAGE_COLLECT,
    STAGE_QUEUE_WAIT,
    STAGE_WORKER_PREDICT,
    Trace,
)
from repro.serve.metrics import Telemetry
from repro.serve.model import ClusterModel
from repro.serve.parallel import parallel_ingest
from repro.serve.registry import ModelRegistry


class ServiceClosed(RuntimeError):
    """A request reached a :class:`ClusteringService` after :meth:`~ClusteringService.close`."""


class Overloaded(RuntimeError):
    """Admission control rejected a request: ``max_pending`` requests are queued.

    Callers can retry after a backoff, or opt into blocking backpressure with
    ``submit(..., wait_for_slot=True)`` / ``predict_async(...,
    backpressure=True)`` instead of handling the rejection.
    """


class _ModelQueue:
    """Pending requests for one model plus the leader-election flag."""

    __slots__ = ("lock", "pending", "leader_active")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.pending: List[Tuple[np.ndarray, Future, Optional[Trace]]] = []
        self.leader_active = False


class ClusteringService:
    """Serve concurrent ``predict`` traffic for many named cluster models.

    Parameters
    ----------
    registry:
        Optional externally managed :class:`ModelRegistry`; a fresh private
        one is created when omitted.
    max_async_workers:
        Size of the dispatch thread pool backing the asyncio front end
        (:meth:`predict_async` / :meth:`ingest_async`).  The pool is created
        lazily on the first async call, so purely synchronous services never
        pay for it.
    max_pending:
        Admission-control bound on simultaneously pending requests.  Beyond
        it, non-blocking submissions raise :class:`Overloaded`;
        ``wait_for_slot=True`` / ``backpressure=True`` callers block until a
        slot frees.  ``None`` (default) admits everything.
    max_batch_delay:
        Seconds a freshly elected micro-batch leader waits before its first
        drain pass, letting a burst coalesce into one vectorized pass at the
        cost of that much added latency.  ``0`` (default) executes
        immediately.
    telemetry:
        Optional externally shared :class:`~repro.serve.metrics.Telemetry`;
        a private one is created when omitted, so ``telemetry.snapshot()``
        always works.
    tracing:
        When True (default), every request carries a
        :class:`~repro.obs.trace.Trace` -- stage spans (admission-wait,
        queue-wait, worker-predict, collect, and the cross-process stages in
        the procpool subclass) land in per-stage histograms under
        ``telemetry.snapshot()["stages"]`` and the slowest traces are kept
        with their full breakdown under ``["traces"]``.  Set False to serve
        with zero tracing overhead.

    Attributes
    ----------
    n_requests_:
        Total predict requests served.
    n_batches_:
        Vectorized predict passes executed; ``n_requests_ - n_batches_`` is
        the number of requests that rode along in someone else's micro-batch.

    The service is a context manager (``with``/``async with``); leaving the
    block -- or calling :meth:`close` directly -- shuts the dispatch pool
    down and rejects further requests with :class:`ServiceClosed`.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        max_async_workers: int = 4,
        max_pending: Optional[int] = None,
        max_batch_delay: float = 0.0,
        telemetry: Optional[Telemetry] = None,
        tracing: bool = True,
    ) -> None:
        if int(max_async_workers) < 1:
            raise ValueError(
                f"max_async_workers must be >= 1; got {max_async_workers}."
            )
        if max_pending is not None and int(max_pending) < 1:
            raise ValueError(f"max_pending must be >= 1 or None; got {max_pending}.")
        if float(max_batch_delay) < 0.0:
            raise ValueError(f"max_batch_delay must be >= 0; got {max_batch_delay}.")
        self.registry = registry if registry is not None else ModelRegistry()
        self.max_async_workers = int(max_async_workers)
        self.max_pending = None if max_pending is None else int(max_pending)
        self.max_batch_delay = float(max_batch_delay)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.tracing = bool(tracing)
        self._queues: Dict[str, _ModelQueue] = {}
        self._queues_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._lifecycle_lock = threading.Lock()
        self._admission = threading.Condition(threading.Lock())
        self._pending_slots = 0
        self._async_pool: Optional[ThreadPoolExecutor] = None
        # _closing stops admitting *new* requests while close() drains the
        # dispatch pool; _closed flips only after the drain, so async
        # requests admitted before close() still execute their submit().
        self._closing = False
        self._closed = False
        self.n_requests_: int = 0
        self.n_batches_: int = 0
        #: Attached :class:`repro.obs.sysmon.SystemMonitor` (or None); set by
        #: :func:`repro.obs.sysmon.attach_monitor`, stopped by :meth:`close`.
        self.monitor = None

    # -- model management ------------------------------------------------------

    def register(self, name: str, model: ClusterModel, *, overwrite: bool = True) -> ClusterModel:
        """Register a frozen model under ``name`` (atomic swap)."""
        return self.registry.register(name, model, overwrite=overwrite)

    def swap(self, name: str, model: ClusterModel) -> str:
        """Blue/green publish: new version of ``name``, alias rebound atomically.

        Delegates to :meth:`ModelRegistry.swap`; concurrent :meth:`predict`
        traffic on ``name`` never observes a missing model, and in-flight
        micro-batches finish against the version they started with.
        Returns the new version name.
        """
        version = self.registry.swap(name, model)
        self.telemetry.record_swap(name, version)
        return version

    def load(self, name: str, path, *, mmap: bool = False) -> ClusterModel:
        """Load a saved artifact and register it under ``name``.

        ``mmap=True`` memory-maps the artifact arrays so co-located serving
        processes share the file's pages (see :meth:`ClusterModel.load`).
        """
        return self.registry.load(name, path, mmap=mmap)

    def ingest(
        self,
        name: str,
        batches: Sequence[np.ndarray],
        *,
        bounds,
        n_workers: Optional[int] = None,
        executor: str = "thread",
        **adawave_params,
    ) -> ClusterModel:
        """Cluster a batched dataset with sharded parallel ingestion and serve it.

        Runs :func:`~repro.serve.parallel.parallel_ingest` (lookup-only, so
        ingestion memory is proportional to the occupied cells, not the
        sample count), freezes the result and registers it under ``name``.
        """
        if self._closed:
            raise ServiceClosed("ClusteringService is closed; no further requests.")
        estimator = parallel_ingest(
            batches,
            bounds=bounds,
            n_workers=n_workers,
            executor=executor,
            **adawave_params,
        )
        return self.register(name, estimator.export_model())

    # -- admission control ------------------------------------------------------

    def _admit(
        self, name: str, *, wait: bool = False, timeout: Optional[float] = None
    ) -> None:
        """Claim a pending-request slot (or reject/block when none are free).

        Blocked waiters park on the admission condition -- no polling;
        :meth:`_release_slot` notifies it, so a freed slot admits a waiter
        immediately.  With ``timeout`` set, a waiter gives up after that
        many seconds and raises :class:`Overloaded` (this is how the HTTP
        edge bounds queueing by the request deadline).  Telemetry (which may
        run a user-supplied sink) is only ever touched *outside* the
        admission lock, so a slow or reentrant sink can stall nothing but
        its own caller.
        """
        rejected_at = None
        timed_out = False
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        with self._admission:
            if self.max_pending is not None:
                while self._pending_slots >= self.max_pending:
                    if self._closing or self._closed:
                        raise ServiceClosed(
                            "ClusteringService is closed; no further requests."
                        )
                    if not wait:
                        rejected_at = self._pending_slots
                        break
                    if deadline is None:
                        self._admission.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0.0:
                            rejected_at = self._pending_slots
                            timed_out = True
                            break
                        self._admission.wait(timeout=remaining)
            if rejected_at is None:
                self._pending_slots += 1
                depth = self._pending_slots
        if rejected_at is not None:
            self.telemetry.record_reject(name)
            if timed_out:
                raise Overloaded(
                    f"request for {name!r} timed out after {timeout:g}s waiting "
                    f"for an admission slot ({rejected_at} requests pending >= "
                    f"max_pending={self.max_pending})."
                )
            raise Overloaded(
                f"request for {name!r} rejected: {rejected_at} requests "
                f"pending >= max_pending={self.max_pending}. Retry later, or "
                "block for a slot with wait_for_slot=True / "
                "predict_async(..., backpressure=True)."
            )
        self.telemetry.record_queue_depth(depth)

    def _release_slot(self, _future: Optional[Future] = None) -> None:
        """Return a slot; signature doubles as a future done-callback."""
        with self._admission:
            self._pending_slots -= 1
            depth = self._pending_slots
            self._admission.notify()
        self.telemetry.record_queue_depth(depth)

    @property
    def queue_depth(self) -> int:
        """Requests currently admitted but not yet resolved."""
        with self._admission:
            return self._pending_slots

    # -- serving ---------------------------------------------------------------

    def _queue_for(self, name: str) -> _ModelQueue:
        with self._queues_lock:
            queue = self._queues.get(name)
            if queue is None:
                queue = self._queues[name] = _ModelQueue()
            return queue

    def predict(self, name: str, X) -> np.ndarray:
        """Labels of ``X`` under the model registered as ``name``.

        Safe to call from any number of threads concurrently; identical
        inputs yield identical labels regardless of interleaving.  Unknown
        model names raise ``KeyError`` immediately; a saturated service
        (``max_pending``) raises :class:`Overloaded`.
        """
        return self.submit(name, X).result()

    def _trace_for(self, name: str, trace: Optional[Trace]) -> Optional[Trace]:
        """The trace to thread through this request: caller's, fresh, or None."""
        if trace is not None:
            return trace
        if not self.tracing:
            return None
        return Trace(model=name)

    def _abort_trace(self, trace: Optional[Trace], error: BaseException) -> None:
        """Close and record a trace whose request died before executing."""
        if trace is not None and trace.close(error=error):
            self.telemetry.record_trace(trace)

    def submit(
        self,
        name: str,
        X,
        *,
        wait_for_slot: bool = False,
        slot_timeout: Optional[float] = None,
        trace: Optional[Trace] = None,
    ) -> "Future[np.ndarray]":
        """Enqueue a predict request; returns a future with the labels.

        The calling thread may become the micro-batch leader and execute the
        combined pass itself before returning, so this is "asynchronous" in
        the queuing sense, not a background-thread guarantee.  When the
        service is saturated (``max_pending`` requests already admitted) the
        default is an immediate :class:`Overloaded` rejection;
        ``wait_for_slot=True`` blocks until a slot frees instead
        (backpressure on the caller), bounded by ``slot_timeout`` seconds
        when given (then :class:`Overloaded` after all).

        ``trace`` continues an existing request trace (the HTTP edge passes
        the one it opened at parse time); with tracing enabled and no trace
        given, a fresh one is created here -- direct callers get the same
        stage breakdown as edge traffic, minus the edge-parse span.
        """
        if self._closed:
            raise ServiceClosed("ClusteringService is closed; no further requests.")
        self.registry.get(name)  # fail fast on unknown names
        X = np.asarray(X, dtype=np.float64)
        trace = self._trace_for(name, trace)
        if trace is None:
            self._admit(name, wait=wait_for_slot, timeout=slot_timeout)
        else:
            admit_start = trace.last_stamp()
            try:
                self._admit(name, wait=wait_for_slot, timeout=slot_timeout)
            except BaseException as error:
                trace.add_span(STAGE_ADMISSION_WAIT, admit_start, time.monotonic())
                self._abort_trace(trace, error)
                raise
            trace.add_span(STAGE_ADMISSION_WAIT, admit_start, time.monotonic())
        future: "Future[np.ndarray]" = Future()
        future.add_done_callback(self._release_slot)
        queue = self._queue_for(name)
        with queue.lock:
            if trace is not None:
                trace.enqueued_at = trace.last_stamp()
            queue.pending.append((X, future, trace))
            if queue.leader_active:
                # An executing leader will pick this request up in its next
                # drain pass; nothing to do.
                return future
            queue.leader_active = True
        self._drain(name, queue)
        return future

    def _drain(self, name: str, queue: _ModelQueue) -> None:
        """Leader loop: keep serving coalesced batches until the queue is dry."""
        try:
            if self.max_batch_delay > 0.0:
                # Let a burst pile up behind the fresh leader so it executes
                # as one vectorized pass instead of many small ones.
                time.sleep(self.max_batch_delay)
            while True:
                with queue.lock:
                    batch = queue.pending
                    queue.pending = []
                    if not batch:
                        queue.leader_active = False
                        return
                self._execute(name, batch)
        except BaseException:
            # Never leave the queue leaderless-but-marked: a crashed leader
            # would otherwise strand every later request for this model.
            with queue.lock:
                queue.leader_active = False
            raise

    @staticmethod
    def _resolve_future(future: Future, *, result=None, error=None) -> None:
        """Complete ``future`` unless the caller already cancelled it."""
        if not future.set_running_or_notify_cancel():
            return
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    def _execute(
        self, name: str, batch: List[Tuple[np.ndarray, Future, Optional[Trace]]]
    ) -> None:
        with self._stats_lock:
            self.n_requests_ += len(batch)
            self.n_batches_ += 1
        try:
            model = self.registry.get(name)
        except KeyError as error:
            for _, future, trace in batch:
                self._resolve_future(future, error=error)
                self._abort_trace(trace, error)
            return
        # Group by feature count so heterogeneous requests (or malformed
        # inputs) cannot poison each other's concatenation.
        groups: Dict[int, List[int]] = {}
        for index, (X, _, _) in enumerate(batch):
            width = X.shape[1] if X.ndim == 2 else -1
            groups.setdefault(width, []).append(index)
        for indices in groups.values():
            arrays = [batch[i][0] for i in indices]
            futures = [batch[i][1] for i in indices]
            traces = [batch[i][2] for i in indices]
            try:
                exec_start = time.monotonic()
                start = time.perf_counter()
                if len(arrays) == 1:
                    results = [model.predict(arrays[0])]
                else:
                    stacked = np.concatenate(arrays, axis=0)
                    labels = model.predict(stacked)
                    offsets = np.cumsum([len(a) for a in arrays])[:-1]
                    results = np.split(labels, offsets)
                seconds = time.perf_counter() - start
                exec_end = time.monotonic()
            except Exception as error:  # propagate per-request, keep serving
                for future, trace in zip(futures, traces):
                    self._resolve_future(future, error=error)
                    self._abort_trace(trace, error)
                continue
            self.telemetry.record_predict(
                name, seconds, sum(len(labels) for labels in results)
            )
            for future, labels, trace in zip(futures, results, traces):
                self._resolve_future(future, result=labels)
                if trace is not None:
                    # One coalesced pass serves many requests: the shared
                    # predict span fans back out onto every member trace.
                    trace.add_span(STAGE_QUEUE_WAIT, trace.enqueued_at, exec_start)
                    trace.add_span(STAGE_WORKER_PREDICT, exec_start, exec_end)
                    done = time.monotonic()
                    trace.add_span(STAGE_COLLECT, exec_end, done)
                    # close() is first-wins: if a doomed-trace path already
                    # closed it, do not record it a second time.  Closing at
                    # the collect span's own end stamp keeps a preemption
                    # right here from stretching the total past the spans.
                    if trace.close(at=done):
                        self.telemetry.record_trace(trace)

    # -- asyncio front end -------------------------------------------------------

    def _dispatch_pool(self) -> ThreadPoolExecutor:
        with self._lifecycle_lock:
            if self._closed or self._closing:
                raise ServiceClosed("ClusteringService is closed; no further requests.")
            if self._async_pool is None:
                self._async_pool = ThreadPoolExecutor(
                    max_workers=self.max_async_workers,
                    thread_name_prefix="repro-serve",
                )
            return self._async_pool

    async def predict_async(
        self,
        name: str,
        X,
        *,
        backpressure: bool = False,
        slot_timeout: Optional[float] = None,
        trace: Optional[Trace] = None,
    ) -> np.ndarray:
        """Awaitable :meth:`predict`: labels of ``X`` under model ``name``.

        The request runs on the service's dispatch pool, so the event loop
        is never blocked by a micro-batch leader pass; requests from
        coroutines and from plain threads coalesce into the same
        micro-batches.  With ``backpressure=True`` a saturated service
        (``max_pending``) parks the request until a slot frees instead of
        raising :class:`Overloaded` -- the awaiting coroutine simply resumes
        later, or raises :class:`Overloaded` after ``slot_timeout`` seconds
        when one is given (deadline-bounded backpressure: the parked
        dispatch-pool thread is reclaimed instead of waiting forever).
        """
        loop = asyncio.get_running_loop()
        pool = self._dispatch_pool()
        return await loop.run_in_executor(
            pool,
            lambda: self.submit(
                name,
                X,
                wait_for_slot=backpressure,
                slot_timeout=slot_timeout,
                trace=trace,
            ).result(),
        )

    async def ingest_async(
        self,
        name: str,
        batches: Sequence[np.ndarray],
        *,
        bounds,
        n_workers: Optional[int] = None,
        executor: str = "thread",
        **adawave_params,
    ) -> ClusterModel:
        """Awaitable :meth:`ingest`: cluster, freeze and register off-loop."""
        loop = asyncio.get_running_loop()
        pool = self._dispatch_pool()
        return await loop.run_in_executor(
            pool,
            lambda: self.ingest(
                name,
                batches,
                bounds=bounds,
                n_workers=n_workers,
                executor=executor,
                **adawave_params,
            ),
        )

    # -- lifecycle ---------------------------------------------------------------

    def _stop_monitor(self) -> None:
        """Stop an attached system monitor (idempotent, never raises)."""
        monitor = self.monitor
        if monitor is None:
            return
        try:
            monitor.stop()
        except Exception as error:  # pragma: no cover - defensive
            self.telemetry.record_callback_error("monitor-stop", error)

    def close(self) -> None:
        """Shut the service down: drain the dispatch pool, reject new requests.

        Idempotent.  In-flight requests finish -- async requests already
        admitted to the dispatch pool run to completion before the closed
        flag takes effect -- and subsequent :meth:`predict` /
        :meth:`submit` / async calls raise :class:`ServiceClosed`.  Callers
        blocked waiting for an admission slot are woken and also raise
        :class:`ServiceClosed`.  The registry (possibly shared) is left
        untouched.
        """
        with self._lifecycle_lock:
            if self._closed or self._closing:
                return
            self._closing = True
            pool, self._async_pool = self._async_pool, None
        self._stop_monitor()
        with self._admission:
            self._admission.notify_all()
        # Drain with admissions stopped but submit() still open, so queued
        # predict_async work items admitted before close() complete instead
        # of being rejected mid-flight.
        if pool is not None:
            pool.shutdown(wait=True)
        self._closed = True

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def __enter__(self) -> "ClusteringService":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    async def __aenter__(self) -> "ClusteringService":
        return self

    async def __aexit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusteringService(models={self.registry.names()!r}, "
            f"requests={self.n_requests_}, batches={self.n_batches_})"
        )
