"""Zero-copy data plane: shared-memory slab rings for float batches.

The PR-5 process pool ships every predict micro-batch through an
``mp.Queue``, which pickles the float array in the parent, copies it through
a pipe and unpickles it in the worker -- three touches of every byte before
the lookup even starts.  This module removes that hop for the common case:

* :class:`SlotRing` -- the *parent-side* owner of one
  ``multiprocessing.shared_memory`` segment, carved into a fixed number of
  equal-size slots managed by a free-list.  The dispatcher acquires a slot,
  copies the batch into it once, and the queue carries only a tiny
  ``(slot, shape, dtype)`` descriptor.
* :class:`SlotRingClient` -- the *worker-side* attachment to the same
  segment.  :meth:`SlotRingClient.view` is a zero-copy ndarray view straight
  over the shared pages, and the worker writes its labels back into the same
  slot, so the response rides the slab too.

Ownership rules keep this safe without any cross-process synchronisation:
the free-list lives only in the parent (dispatcher acquires, collector or
watchdog releases), a slot is referenced by exactly one in-flight request at
a time, and the worker only ever touches a slot named by a descriptor it was
handed.  A SIGKILL'd worker therefore cannot corrupt the ring -- its slots
are simply released when the watchdog fails the in-flight batches.

Batches that do not fit a slot (or are not C-contiguous) fall back to the
pickle path automatically; equivalence tests pin that both paths are
bit-for-bit identical.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

import numpy as np

try:  # pragma: no cover - stdlib, but absent on exotic builds
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None
    resource_tracker = None

#: Default slot payload capacity (8 MiB holds a 500k-point 2-D float64 batch).
DEFAULT_SLOT_BYTES = 8 << 20

#: Default slots per worker ring; bounds how many batches can be in flight
#: on the shm path per worker before the dispatcher falls back to pickling.
DEFAULT_SLOTS = 4


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` is usable on this host."""
    if shared_memory is None:
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=1)
    except (OSError, ValueError):  # pragma: no cover - no /dev/shm
        return False
    probe.close()
    probe.unlink()
    return True


class _untracked_attach:
    """Suppress resource-tracker registration while attaching a segment.

    An *attaching* process does not own the segment, but (before Python
    3.13's ``track=False``) ``SharedMemory(name=...)`` registers it with the
    resource tracker anyway -- and the tracker would unlink the parent's
    live ring at worker exit.  Unregistering *after* the attach is no
    better: the process tree shares one tracker whose cache is a set, so
    the worker's unregister would also erase the creator's entry and the
    final unlink would crash the tracker with a ``KeyError``.  The only
    clean pre-3.13 option is to not register the attachment at all.
    """

    def __enter__(self) -> None:
        self._register = None
        if resource_tracker is not None:
            self._register = resource_tracker.register
            resource_tracker.register = lambda name, rtype: None

    def __exit__(self, *exc_info) -> bool:
        if self._register is not None:
            resource_tracker.register = self._register
        return False


def fits_slot(array: np.ndarray, slot_bytes: int) -> bool:
    """True when ``array`` is eligible for a slot of ``slot_bytes``.

    Empty batches are routed to the pickle path (nothing to share) and
    non-contiguous ones too, mirroring the descriptor contract: a slot holds
    exactly ``array.nbytes`` raw C-order bytes.
    """
    return (
        0 < array.nbytes <= int(slot_bytes)
        and array.flags["C_CONTIGUOUS"]
    )


class SlotRingClient:
    """Worker-side attachment to a :class:`SlotRing` segment.

    Holds no free-list: the worker may only read or write slots named by a
    descriptor the parent handed it, which the parent guarantees are not
    concurrently reused.
    """

    def __init__(self, name: str, slot_bytes: int, n_slots: int) -> None:
        if shared_memory is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory is unavailable.")
        self.slot_bytes = int(slot_bytes)
        self.n_slots = int(n_slots)
        with _untracked_attach():
            self._shm = shared_memory.SharedMemory(name=name)

    def _check(self, slot: int, nbytes: int) -> int:
        slot = int(slot)
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"slot {slot} out of range [0, {self.n_slots}).")
        if nbytes > self.slot_bytes:
            raise ValueError(
                f"{nbytes} bytes do not fit a {self.slot_bytes}-byte slot."
            )
        return slot

    def view(self, slot: int, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Zero-copy ndarray view of ``slot`` (do not retain past the request)."""
        dtype = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64))
        slot = self._check(slot, count * dtype.itemsize)
        flat = np.frombuffer(
            self._shm.buf,
            dtype=dtype,
            count=count,
            offset=slot * self.slot_bytes,
        )
        return flat.reshape(shape)

    def write(self, slot: int, array: np.ndarray) -> Tuple[Tuple[int, ...], str]:
        """Copy ``array`` into ``slot``; returns its ``(shape, dtype)`` descriptor."""
        array = np.ascontiguousarray(array)
        slot = self._check(slot, array.nbytes)
        target = np.frombuffer(
            self._shm.buf,
            dtype=array.dtype,
            count=array.size,
            offset=slot * self.slot_bytes,
        )
        target[:] = array.reshape(-1)
        del target
        return tuple(array.shape), str(array.dtype)

    def close(self) -> None:
        """Detach from the segment (the owner unlinks it)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a view is still alive
            pass


class SlotRing(SlotRingClient):
    """Parent-side ring: one shared segment of ``n_slots`` fixed-size slots.

    The free-list is process-local and thread-safe (dispatcher acquires,
    collector/watchdog release); workers attach with
    :class:`SlotRingClient` via :meth:`spec` and never see the free-list.
    """

    def __init__(
        self,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        n_slots: int = DEFAULT_SLOTS,
    ) -> None:
        if shared_memory is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory is unavailable.")
        slot_bytes = int(slot_bytes)
        n_slots = int(n_slots)
        if slot_bytes < 1 or n_slots < 1:
            raise ValueError(
                f"slot_bytes and n_slots must be >= 1; got {slot_bytes}, {n_slots}."
            )
        self.slot_bytes = slot_bytes
        self.n_slots = n_slots
        self._shm = shared_memory.SharedMemory(
            create=True, size=slot_bytes * n_slots
        )
        self.name = self._shm.name
        self._lock = threading.Lock()
        self._free: List[int] = list(range(n_slots))
        self._closed = False
        self.acquires = 0
        self.releases = 0
        self.exhausted = 0

    def spec(self) -> Tuple[str, int, int]:
        """``(name, slot_bytes, n_slots)`` -- the client's attach arguments."""
        return (self.name, self.slot_bytes, self.n_slots)

    # -- free-list ---------------------------------------------------------------

    def acquire(self) -> Optional[int]:
        """Claim a free slot index, or None when the ring is saturated."""
        with self._lock:
            if self._closed or not self._free:
                self.exhausted += 1
                return None
            self.acquires += 1
            return self._free.pop()

    def release(self, slot: int) -> None:
        """Return ``slot`` to the free-list (idempotence is the caller's job)."""
        with self._lock:
            if not self._closed:
                self.releases += 1
                self._free.append(int(slot))

    def free_slots(self) -> int:
        """Currently available slot count."""
        with self._lock:
            return len(self._free)

    def stats(self) -> dict:
        """Lifetime ring counters: acquires, releases, saturation misses.

        ``exhausted`` counts acquire attempts that found no free slot (the
        batch then rode the pickle path) -- a persistently high value says
        the ring is undersized for the in-flight depth.
        """
        with self._lock:
            return {
                "acquires": self.acquires,
                "releases": self.releases,
                "exhausted": self.exhausted,
                "free": len(self._free),
                "n_slots": self.n_slots,
            }

    def read(self, slot: int, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Copy the array described by ``(slot, shape, dtype)`` out of the ring."""
        view = self.view(slot, shape, dtype)
        out = np.array(view, copy=True)
        del view
        return out

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Detach *and unlink* the segment; the ring is unusable afterwards."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._free.clear()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a view is still alive
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlotRing({self.name!r}, slot_bytes={self.slot_bytes}, "
            f"n_slots={self.n_slots}, free={self.free_slots()})"
        )
