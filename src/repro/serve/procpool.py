"""Multi-process serving plane: shared artifacts, worker pools, admission.

The single-process :class:`~repro.serve.ClusteringService` serializes all
traffic for one model through one micro-batch leader at a time, so its
aggregate throughput tops out at one core no matter how many threads call
it.  This module removes that wall without giving up blue/green semantics:

* :class:`ArtifactStore` -- a content-addressed directory of
  ``compress=False`` npz artifacts keyed by
  :meth:`~repro.serve.ClusterModel.content_digest`.  Publishing is
  idempotent (identical models share one file) and atomic (write to a temp
  name, ``os.replace``), so concurrent writers and readers never observe a
  torn artifact.
* :class:`ProcessWorkerPool` -- N worker *processes*, each holding live
  models opened with ``ClusterModel.load(mmap=True)`` against the store, so
  every worker shares the same on-disk pages instead of copying the cell
  map.  Model changes travel as control messages on the same per-worker
  FIFO queues as predict work, which is what preserves blue/green across
  the process boundary: a predict enqueued after a swap is always answered
  by the new version, one enqueued before it by a version that *was* live.
* :class:`ProcessPoolService` -- a drop-in :class:`ClusteringService`
  subclass whose predict micro-batches are dispatched round-robin to the
  worker pool (several batches genuinely in flight at once), with the base
  class's admission control (:class:`~repro.serve.service.Overloaded`,
  backpressure) and :class:`~repro.serve.metrics.Telemetry` in front.

The parent keeps its own :class:`~repro.serve.ModelRegistry` (attached to
the store) for bookkeeping, versioning and fail-fast name checks; worker
processes hold only the mmap'd artifacts they serve.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serve.metrics import Telemetry
from repro.serve.model import ClusterModel
from repro.serve.registry import ModelRegistry
from repro.serve.service import ClusteringService, ServiceClosed


class ArtifactStore:
    """Content-addressed directory of memory-mappable ClusterModel artifacts.

    Every artifact is stored exactly once as ``<digest>.npz`` (uncompressed,
    so ``load(mmap=True)`` shares its pages across processes), where
    ``digest`` is the model's :meth:`~repro.serve.ClusterModel.content_digest`.
    Writes go through a temporary name and an atomic ``os.replace``, so a
    reader either sees the complete artifact or none at all -- never a
    partial file -- and concurrent publishers of the same model are
    harmless.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, digest: str) -> Path:
        """On-disk location of the artifact with ``digest`` (may not exist)."""
        return self.directory / f"{digest}.npz"

    def publish(self, model: ClusterModel) -> str:
        """Write ``model`` to the store (idempotent); returns its digest."""
        digest = model.content_digest()
        final = self.path(digest)
        if final.exists():
            return digest
        # mkstemp guarantees a unique scratch per publisher, so concurrent
        # publishers of the same model (two threads swapping one artifact)
        # never stomp each other's half-written file; whoever replaces last
        # wins with identical bytes.
        handle, scratch = tempfile.mkstemp(
            dir=self.directory, prefix=f".{digest}.", suffix=".tmp"
        )
        os.close(handle)
        scratch = Path(scratch)
        try:
            model.save(scratch, compress=False)
            os.replace(scratch, final)
        finally:
            scratch.unlink(missing_ok=True)
        return digest

    def load(self, digest: str, *, mmap: bool = True) -> ClusterModel:
        """Open the artifact with ``digest`` (memory-mapped by default)."""
        path = self.path(digest)
        if not path.exists():
            known = ", ".join(self.digests()[:8]) or "<none>"
            raise KeyError(
                f"artifact {digest!r} is not in the store at {self.directory} "
                f"(present: {known})."
            )
        return ClusterModel.load(path, mmap=mmap)

    def digests(self) -> List[str]:
        """Sorted digests of every artifact currently in the store."""
        return sorted(path.stem for path in self.directory.glob("*.npz"))

    def __contains__(self, digest: str) -> bool:
        return self.path(str(digest)).exists()

    def gc(self, keep: Sequence[str]) -> List[str]:
        """Delete every artifact whose digest is not in ``keep``; returns them."""
        keep_set = {str(digest) for digest in keep}
        removed = []
        for digest in self.digests():
            if digest not in keep_set:
                self.path(digest).unlink(missing_ok=True)
                removed.append(digest)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore({str(self.directory)!r}, artifacts={len(self.digests())})"


def _portable_error(error: BaseException) -> BaseException:
    """``error`` if it survives pickling, else a RuntimeError carrying its text."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


def _worker_main(store_dir: str, task_queue, result_queue) -> None:
    """Worker-process body: serve predict tasks against mmap'd store artifacts.

    Messages arrive on ``task_queue`` in FIFO order -- ``("bind", name,
    digest)`` (re)binds a model from the store, ``("drop", name)`` forgets
    one, ``("predict", request_id, name, X)`` answers with ``("done",
    request_id, labels, error)`` on ``result_queue``, ``("stop",)`` exits.
    The FIFO ordering is the blue/green guarantee: a bind enqueued before a
    predict is always applied before it.

    Artifacts are content-addressed and immutable, so loads are cached by
    digest: a swap storm flipping between versions costs one disk open per
    *distinct* artifact, after which every rebind is a dictionary
    assignment -- control traffic can never starve the predicts queued
    behind it.  Module-level so every start method (spawn included) can
    import it.
    """
    store = ArtifactStore(store_dir)
    models: Dict[str, ClusterModel] = {}
    cache: "OrderedDict[str, ClusterModel]" = OrderedDict()
    cache_limit = 64
    while True:
        try:
            message = task_queue.get()
        except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "bind":
            _, name, digest = message
            try:
                model = cache.get(digest)
                if model is None:
                    model = cache[digest] = store.load(digest, mmap=True)
                cache.move_to_end(digest)
                models[name] = model
                while len(cache) > cache_limit:
                    bound = {id(m) for m in models.values()}
                    stale = next(
                        (d for d, m in cache.items() if id(m) not in bound), None
                    )
                    if stale is None:
                        break
                    del cache[stale]
            except Exception as error:
                result_queue.put(("bind-error", name, _portable_error(error)))
        elif kind == "drop":
            models.pop(message[1], None)
        elif kind == "predict":
            _, request_id, name, X = message
            try:
                model = models.get(name)
                if model is None:
                    raise KeyError(
                        f"worker pid {os.getpid()} has no model bound as {name!r}."
                    )
                result_queue.put(("done", request_id, model.predict(X), None))
            except Exception as error:
                result_queue.put(("done", request_id, None, _portable_error(error)))


class ProcessWorkerPool:
    """N predict worker processes sharing one artifact store.

    Parameters
    ----------
    store:
        The :class:`ArtifactStore` (or its directory) workers open models
        from.
    n_workers:
        Worker-process count; defaults to the host CPU count.
    mp_context:
        Multiprocessing start method.  The default ``"spawn"`` is safe in
        arbitrarily threaded parents (the serving plane always is one);
        ``"fork"`` starts faster where the platform allows it.

    Control messages (:meth:`bind` / :meth:`drop`) are broadcast to every
    worker's FIFO queue; predict tasks go to one worker each, chosen
    round-robin over the live processes.  Results from all workers funnel
    into the shared :attr:`result_queue`.
    """

    def __init__(
        self,
        store: Union[ArtifactStore, str, Path],
        n_workers: Optional[int] = None,
        *,
        mp_context: str = "spawn",
    ) -> None:
        from repro.serve.parallel import resolve_n_workers

        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.n_workers = resolve_n_workers(n_workers)
        self._ctx = multiprocessing.get_context(mp_context)
        self._task_queues = [self._ctx.Queue() for _ in range(self.n_workers)]
        self.result_queue = self._ctx.Queue()
        self.processes = [
            self._ctx.Process(
                target=_worker_main,
                args=(str(self.store.directory), task_queue, self.result_queue),
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            for index, task_queue in enumerate(self._task_queues)
        ]
        for process in self.processes:
            process.start()
        self._rotation = itertools.cycle(range(self.n_workers))
        self._lock = threading.Lock()
        self._closed = False

    # -- control plane -----------------------------------------------------------

    def bind(self, name: str, digest: str) -> None:
        """Broadcast: every worker re-opens ``digest`` and serves it as ``name``."""
        for task_queue in self._task_queues:
            task_queue.put(("bind", name, digest))

    def drop(self, name: str) -> None:
        """Broadcast: every worker forgets the model bound as ``name``."""
        for task_queue in self._task_queues:
            task_queue.put(("drop", name))

    # -- data plane --------------------------------------------------------------

    def next_alive_worker(self) -> int:
        """Round-robin index of a live worker; raises when none remain."""
        with self._lock:
            for _ in range(self.n_workers):
                index = next(self._rotation)
                if self.processes[index].is_alive():
                    return index
        raise RuntimeError(
            "no live worker processes remain in the pool; the service must be "
            "restarted."
        )

    def send_predict(self, worker: int, request_id: int, name: str, X) -> None:
        """Enqueue one predict task on ``worker``'s FIFO queue."""
        self._task_queues[worker].put(("predict", request_id, name, X))

    def alive(self) -> List[bool]:
        """Liveness of each worker process, by index."""
        return [process.is_alive() for process in self.processes]

    # -- lifecycle ---------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker: polite ``stop`` sentinel, then terminate stragglers."""
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put(("stop",))
            except (ValueError, OSError):  # pragma: no cover - queue torn down
                pass
        deadline = time.monotonic() + timeout
        for process in self.processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in self.processes:
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=1.0)
        for task_queue in self._task_queues:
            task_queue.close()
            task_queue.cancel_join_thread()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessWorkerPool(n_workers={self.n_workers}, alive={sum(self.alive())})"


@dataclass
class _Inflight:
    """One shipped micro-batch awaiting its worker's answer."""

    worker: int
    name: str
    futures: List[Future]
    sizes: Optional[List[int]]
    started: float = field(default_factory=time.perf_counter)


class ProcessPoolService(ClusteringService):
    """Multi-process :class:`ClusteringService`: predict beyond one core.

    A dispatcher thread pulls admitted requests off a queue, coalesces
    contiguous same-model requests into micro-batches and ships each batch
    to the next live worker process; a collector thread resolves the
    callers' futures as answers come back, so several batches are genuinely
    in flight at once -- aggregate throughput scales with ``n_workers``
    instead of stopping at the GIL.  Model management mirrors the base
    class, with every ``register``/``swap``/``load`` additionally published
    to the :class:`ArtifactStore` and broadcast to the workers, preserving
    blue/green semantics end to end across process boundaries.

    Parameters
    ----------
    store:
        The shared :class:`ArtifactStore` (or a directory to create one in).
    n_workers:
        Worker-process count (defaults to the host CPU count).
    registry:
        Optional external :class:`ModelRegistry`; it is attached to the
        store so digests resolve.  A private store-attached registry is
        created when omitted.
    mp_context:
        Worker start method (``"spawn"`` default; see
        :class:`ProcessWorkerPool`).
    max_batch_requests:
        Most requests coalesced into one shipped micro-batch.
    worker_timeout:
        Seconds :meth:`close` waits for in-flight worker answers before
        terminating the pool and failing the stragglers with
        :class:`ServiceClosed`.
    max_pending, max_batch_delay, max_async_workers, telemetry:
        As in :class:`ClusteringService` (``max_batch_delay`` here bounds
        how long the dispatcher waits for a fuller batch).
    """

    def __init__(
        self,
        store: Union[ArtifactStore, str, Path],
        *,
        n_workers: Optional[int] = None,
        registry: Optional[ModelRegistry] = None,
        mp_context: str = "spawn",
        max_batch_requests: int = 32,
        worker_timeout: float = 10.0,
        max_pending: Optional[int] = None,
        max_batch_delay: float = 0.0,
        max_async_workers: int = 4,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if int(max_batch_requests) < 1:
            raise ValueError(
                f"max_batch_requests must be >= 1; got {max_batch_requests}."
            )
        store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        if registry is None:
            registry = ModelRegistry(store=store)
        elif registry.store is None:
            registry.store = store
        elif registry.store is not store and not (
            isinstance(registry.store, ArtifactStore)
            and registry.store.directory.resolve() == store.directory.resolve()
        ):
            # A registry publishing somewhere the workers never look would
            # turn every bind into a buried KeyError; fail loudly instead.
            raise ValueError(
                f"registry is attached to a different artifact store "
                f"({registry.store!r}) than this service ({store!r}); use one "
                "store for both so worker processes can open what the "
                "registry publishes."
            )
        super().__init__(
            registry,
            max_async_workers=max_async_workers,
            max_pending=max_pending,
            max_batch_delay=max_batch_delay,
            telemetry=telemetry,
        )
        self.store = store
        self.max_batch_requests = int(max_batch_requests)
        self.worker_timeout = float(worker_timeout)
        self.pool = ProcessWorkerPool(store, n_workers, mp_context=mp_context)
        self._requests: Deque[Tuple[str, np.ndarray, Future]] = deque()
        self._requests_cond = threading.Condition()
        self._stop_dispatch = False
        self._inflight: Dict[int, _Inflight] = {}
        self._inflight_lock = threading.Lock()
        self._request_ids = itertools.count()
        self._shutdown = threading.Event()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-serve-collect", daemon=True
        )
        self._watchdog = threading.Thread(
            target=self._watch_loop, name="repro-serve-watch", daemon=True
        )
        self._dispatcher.start()
        self._collector.start()
        self._watchdog.start()

    @staticmethod
    def _resolve_future(future: Future, *, result=None, error=None) -> None:
        """Like the base resolver, but tolerant of both sides of a race.

        A future can be completed by the collector *and* (on a worker death
        or a close timeout) by the watchdog / ``close``; whichever loses the
        race must be a no-op, not an ``InvalidStateError`` escaping a
        daemon thread.
        """
        if future.done():
            return
        try:
            ClusteringService._resolve_future(future, result=result, error=error)
        except InvalidStateError:
            pass

    # -- model management --------------------------------------------------------

    def register(self, name: str, model: ClusterModel, *, overwrite: bool = True) -> ClusterModel:
        """Register ``model``, publish its artifact and bind it in every worker."""
        registered = self.registry.register(name, model, overwrite=overwrite)
        self.pool.bind(name, self.registry.digest(name))
        return registered

    def swap(self, name: str, model: ClusterModel) -> str:
        """Blue/green publish across the process pool.

        The artifact lands in the store and the parent registry first, then
        the bind is broadcast on every worker's FIFO queue -- so predicts
        enqueued after this call returns are answered by the new version,
        and earlier ones by a version that was live when they were enqueued.
        Worker bindings of versions the retention policy evicted are
        dropped.
        """
        before = set(self.registry.versions(name))
        version = self.registry.swap(name, model)
        digest = self.registry.digest(version)
        self.pool.bind(name, digest)
        self.pool.bind(version, digest)
        for evicted in before - set(self.registry.versions(name)):
            self.pool.drop(evicted)
        self.telemetry.record_swap(name, version)
        return version

    def load(self, name: str, path, *, mmap: bool = True) -> ClusterModel:
        """Load an artifact from ``path`` and serve it under ``name``."""
        return self.register(name, ClusterModel.load(path, mmap=mmap))

    # -- serving -----------------------------------------------------------------

    def submit(
        self, name: str, X, *, wait_for_slot: bool = False
    ) -> "Future[np.ndarray]":
        """Admit a predict request and hand it to the dispatcher.

        Unlike the base class, the calling thread never executes the pass
        itself -- the future resolves from the collector thread once a
        worker process answers.
        """
        if self._closed:
            raise ServiceClosed("ProcessPoolService is closed; no further requests.")
        self.registry.get(name)  # fail fast on unknown names
        X = np.asarray(X, dtype=np.float64)
        self._admit(name, wait=wait_for_slot)
        future: "Future[np.ndarray]" = Future()
        future.add_done_callback(self._release_slot)
        with self._requests_cond:
            if self._stop_dispatch:
                # close() already drained the dispatcher; resolving here (not
                # raising before the append) keeps the slot accounting exact.
                self._resolve_future(
                    future,
                    error=ServiceClosed(
                        "ProcessPoolService is closed; no further requests."
                    ),
                )
                return future
            self._requests.append((name, X, future))
            self._requests_cond.notify()
        return future

    def _dispatch_loop(self) -> None:
        while True:
            with self._requests_cond:
                while not self._requests and not self._stop_dispatch:
                    self._requests_cond.wait()
                if not self._requests:
                    return
                if (
                    self.max_batch_delay > 0.0
                    and not self._stop_dispatch
                    and len(self._requests) < self.max_batch_requests
                ):
                    # One bounded chance for the burst to fill the batch out.
                    self._requests_cond.wait(timeout=self.max_batch_delay)
                    if not self._requests:
                        continue
                name, X, future = self._requests.popleft()
                batch = [(X, future)]
                while (
                    len(batch) < self.max_batch_requests
                    and self._requests
                    and self._requests[0][0] == name
                    and self._requests[0][1].ndim == X.ndim
                    and (X.ndim != 2 or self._requests[0][1].shape[1] == X.shape[1])
                ):
                    batch.append(self._requests.popleft()[1:])
            self._ship(name, batch)

    def _ship(self, name: str, batch: List[Tuple[np.ndarray, Future]]) -> None:
        arrays = [X for X, _ in batch]
        futures = [future for _, future in batch]
        try:
            worker = self.pool.next_alive_worker()
            if len(arrays) == 1:
                stacked, sizes = arrays[0], None
            else:
                stacked = np.concatenate(arrays, axis=0)
                sizes = [len(X) for X in arrays]
        except Exception as error:
            for future in futures:
                self._resolve_future(future, error=error)
            return
        request_id = next(self._request_ids)
        entry = _Inflight(worker=worker, name=name, futures=futures, sizes=sizes)
        with self._inflight_lock:
            self._inflight[request_id] = entry
        try:
            self.pool.send_predict(worker, request_id, name, stacked)
        except Exception as error:  # pragma: no cover - queue torn down
            with self._inflight_lock:
                self._inflight.pop(request_id, None)
            for future in futures:
                self._resolve_future(future, error=error)

    def _collect_loop(self) -> None:
        while True:
            try:
                message = self.pool.result_queue.get()
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            try:
                kind = message[0]
                if kind == "stop-collector":
                    return
                if kind == "bind-error":
                    _, name, error = message
                    self.telemetry.record_callback_error(f"worker-bind:{name}", error)
                    continue
                _, request_id, labels, error = message
                with self._inflight_lock:
                    entry = self._inflight.pop(request_id, None)
                if entry is None:
                    continue
                if error is not None:
                    for future in entry.futures:
                        self._resolve_future(future, error=error)
                    continue
                seconds = time.perf_counter() - entry.started
                self.telemetry.record_predict(entry.name, seconds, len(labels))
                with self._stats_lock:
                    self.n_requests_ += len(entry.futures)
                    self.n_batches_ += 1
                if entry.sizes is None:
                    self._resolve_future(entry.futures[0], result=labels)
                else:
                    offsets = np.cumsum(entry.sizes)[:-1]
                    for future, part in zip(entry.futures, np.split(labels, offsets)):
                        self._resolve_future(future, result=part)
            except Exception as error:  # pragma: no cover - defensive
                self.telemetry.record_callback_error("collector", error)

    def _watch_loop(self) -> None:
        """Fail the in-flight batches of any worker that died, never hang them."""
        while not self._shutdown.wait(0.1):
            alive = self.pool.alive()
            if all(alive):
                continue
            with self._inflight_lock:
                doomed = [
                    (request_id, entry)
                    for request_id, entry in self._inflight.items()
                    if not alive[entry.worker]
                ]
                for request_id, _ in doomed:
                    self._inflight.pop(request_id, None)
            for _, entry in doomed:
                exitcode = self.pool.processes[entry.worker].exitcode
                for future in entry.futures:
                    self._resolve_future(
                        future,
                        error=RuntimeError(
                            f"worker process {entry.worker} died (exitcode "
                            f"{exitcode}) with this request in flight."
                        ),
                    )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut the serving plane down without stranding a single future.

        Idempotent and safe to call with requests in flight: admitted
        requests are still dispatched, in-flight worker batches get up to
        ``worker_timeout`` seconds to answer, then workers are stopped and
        anything unresolved fails with :class:`ServiceClosed` (a clean
        error, never a hang).  Later calls raise :class:`ServiceClosed`.
        """
        with self._lifecycle_lock:
            if self._closed or self._closing:
                return
            self._closing = True
            pool, self._async_pool = self._async_pool, None
        with self._admission:
            self._admission.notify_all()
        if pool is not None:
            pool.shutdown(wait=True)
        with self._requests_cond:
            self._stop_dispatch = True
            self._requests_cond.notify_all()
        self._dispatcher.join()
        deadline = time.monotonic() + self.worker_timeout
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if not self._inflight:
                    break
            if not any(self.pool.alive()):
                break
            time.sleep(0.01)
        self._shutdown.set()
        self._watchdog.join()
        self.pool.close()
        try:
            self.pool.result_queue.put(("stop-collector",))
        except (ValueError, OSError):  # pragma: no cover - queue torn down
            pass
        self._collector.join(timeout=5.0)
        with self._inflight_lock:
            stranded = list(self._inflight.values())
            self._inflight.clear()
        for entry in stranded:  # pragma: no cover - only on worker timeout
            for future in entry.futures:
                self._resolve_future(
                    future,
                    error=ServiceClosed(
                        "ProcessPoolService closed before the worker answered."
                    ),
                )
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessPoolService(models={self.registry.names()!r}, "
            f"workers={sum(self.pool.alive())}/{self.pool.n_workers}, "
            f"requests={self.n_requests_})"
        )
