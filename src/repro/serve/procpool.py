"""Multi-process serving plane: shared artifacts, worker pools, admission.

The single-process :class:`~repro.serve.ClusteringService` serializes all
traffic for one model through one micro-batch leader at a time, so its
aggregate throughput tops out at one core no matter how many threads call
it.  This module removes that wall without giving up blue/green semantics:

* :class:`ArtifactStore` -- a content-addressed directory of
  ``compress=False`` npz artifacts keyed by
  :meth:`~repro.serve.ClusterModel.content_digest`.  Publishing is
  idempotent (identical models share one file) and atomic (write to a temp
  name, ``os.replace``), so concurrent writers and readers never observe a
  torn artifact.
* :class:`ProcessWorkerPool` -- N worker *processes*, each holding live
  models opened with ``ClusterModel.load(mmap=True)`` against the store, so
  every worker shares the same on-disk pages instead of copying the cell
  map.  Model changes travel as control messages on the same per-worker
  FIFO queues as predict work, which is what preserves blue/green across
  the process boundary: a predict enqueued after a swap is always answered
  by the new version, one enqueued before it by a version that *was* live.
  Dead workers are **respawned** (:meth:`ProcessWorkerPool.respawn`): the
  pool replays its current name -> digest bindings from the store into a
  fresh process, so a crash costs the in-flight batches (failed fast, never
  hung) but not capacity.
* :class:`ProcessPoolService` -- a drop-in :class:`ClusteringService`
  subclass whose predict micro-batches are dispatched round-robin to the
  worker pool (several batches genuinely in flight at once), with the base
  class's admission control (:class:`~repro.serve.service.Overloaded`,
  backpressure) and :class:`~repro.serve.metrics.Telemetry` in front.
  Float batches travel through per-worker shared-memory slab rings
  (:mod:`repro.serve.shm`) -- the queues carry only ``(slot, shape,
  dtype)`` descriptors, and oversized or non-contiguous batches fall back
  to the pickle path automatically.

The parent keeps its own :class:`~repro.serve.ModelRegistry` (attached to
the store) for bookkeeping, versioning and fail-fast name checks; worker
processes hold only the mmap'd artifacts they serve.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, InvalidStateError
from queue import Empty
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.trace import (
    STAGE_ADMISSION_WAIT,
    STAGE_COLLECT,
    STAGE_QUEUE_WAIT,
    Trace,
    apply_worker_stamps,
)
from repro.serve.metrics import Telemetry
from repro.serve.model import ClusterModel
from repro.serve.registry import ModelRegistry
from repro.serve.service import ClusteringService, ServiceClosed
from repro.serve.shm import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_SLOTS,
    SlotRing,
    SlotRingClient,
    fits_slot,
    shm_available,
)


class ArtifactStore:
    """Content-addressed directory of memory-mappable ClusterModel artifacts.

    Every artifact is stored exactly once as ``<digest>.npz`` (uncompressed,
    so ``load(mmap=True)`` shares its pages across processes), where
    ``digest`` is the model's :meth:`~repro.serve.ClusterModel.content_digest`.
    Writes go through a temporary name and an atomic ``os.replace``, so a
    reader either sees the complete artifact or none at all -- never a
    partial file -- and concurrent publishers of the same model are
    harmless.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, digest: str) -> Path:
        """On-disk location of the artifact with ``digest`` (may not exist)."""
        return self.directory / f"{digest}.npz"

    def publish(self, model: ClusterModel) -> str:
        """Write ``model`` to the store (idempotent); returns its digest."""
        digest = model.content_digest()
        final = self.path(digest)
        if final.exists():
            return digest
        # mkstemp guarantees a unique scratch per publisher, so concurrent
        # publishers of the same model (two threads swapping one artifact)
        # never stomp each other's half-written file; whoever replaces last
        # wins with identical bytes.
        handle, scratch = tempfile.mkstemp(
            dir=self.directory, prefix=f".{digest}.", suffix=".tmp"
        )
        os.close(handle)
        scratch = Path(scratch)
        try:
            model.save(scratch, compress=False)
            os.replace(scratch, final)
        finally:
            scratch.unlink(missing_ok=True)
        return digest

    def load(self, digest: str, *, mmap: bool = True) -> ClusterModel:
        """Open the artifact with ``digest`` (memory-mapped by default).

        A digest can pass an existence check and still be unlinked by a
        concurrent :meth:`gc` before the open lands, so a vanished file is
        retried once and then surfaced as the same actionable ``KeyError``
        a never-present digest gets -- callers never see a raw
        ``FileNotFoundError`` from a gc race.
        """
        path = self.path(digest)
        for _ in range(2):
            if not path.exists():
                break
            try:
                return ClusterModel.load(path, mmap=mmap)
            except (FileNotFoundError, ValueError) as error:
                # ClusterModel.load wraps I/O failures in ValueError; only a
                # *vanished* file is the gc race -- genuine corruption of a
                # still-present artifact must keep its ValueError.
                vanished = (
                    isinstance(error, FileNotFoundError)
                    or isinstance(error.__cause__, FileNotFoundError)
                    or not path.exists()
                )
                if not vanished:
                    raise
                continue
        known = ", ".join(self.digests()[:8]) or "<none>"
        raise KeyError(
            f"artifact {digest!r} is not in the store at {self.directory} "
            f"(present: {known}). It may have been removed by a concurrent "
            "gc(); re-publish the model or widen the gc keep set."
        )

    def digests(self) -> List[str]:
        """Sorted digests of every artifact currently in the store."""
        return sorted(path.stem for path in self.directory.glob("*.npz"))

    def __contains__(self, digest: str) -> bool:
        return self.path(str(digest)).exists()

    def gc(self, keep: Sequence[str]) -> List[str]:
        """Delete every artifact whose digest is not in ``keep``; returns them."""
        keep_set = {str(digest) for digest in keep}
        removed = []
        for digest in self.digests():
            if digest not in keep_set:
                self.path(digest).unlink(missing_ok=True)
                removed.append(digest)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore({str(self.directory)!r}, artifacts={len(self.digests())})"


def _portable_error(error: BaseException) -> BaseException:
    """``error`` if it survives pickling, else a RuntimeError carrying its text."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


def _worker_main(store_dir: str, task_queue, result_queue, ring_spec) -> None:
    """Worker-process body: serve predict tasks against mmap'd store artifacts.

    Messages arrive on ``task_queue`` in FIFO order -- ``("bind", name,
    digest)`` (re)binds a model from the store, ``("drop", name)`` forgets
    one, ``("predict", request_id, name, X)`` answers with ``("done",
    request_id, labels, error, stamps)`` on ``result_queue``,
    ``("predict-shm", request_id, name, slot, shape, dtype)`` reads the
    batch zero-copy from the shared-memory ring described by ``ring_spec``
    and writes the labels back into the same slot (``("done-shm",
    request_id, shape, dtype, None, stamps)``), and ``("stop",)`` exits.
    ``stamps`` is the trace triple ``(dequeued, loaded, predicted)`` on the
    shared monotonic clock -- identical on both data planes, so the parent
    expands either answer into the same cross-process spans; ``None`` on
    error answers.  The FIFO ordering is the blue/green
    guarantee: a bind enqueued before a predict is always applied before it.

    Artifacts are content-addressed and immutable, so loads are cached by
    digest: a swap storm flipping between versions costs one disk open per
    *distinct* artifact, after which every rebind is a dictionary
    assignment -- control traffic can never starve the predicts queued
    behind it.  Module-level so every start method (spawn included) can
    import it.
    """
    store = ArtifactStore(store_dir)
    ring = None
    if ring_spec is not None:
        try:
            ring = SlotRingClient(*ring_spec)
        except Exception:
            ring = None  # shm descriptors will be answered with an error
    models: Dict[str, ClusterModel] = {}
    cache: "OrderedDict[str, ClusterModel]" = OrderedDict()
    cache_limit = 64

    while True:
        try:
            message = task_queue.get()
        except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
            return
        kind = message[0]
        if kind == "stop":
            if ring is not None:
                ring.close()
            return
        if kind == "bind":
            _, name, digest = message
            try:
                model = cache.get(digest)
                if model is None:
                    model = cache[digest] = store.load(digest, mmap=True)
                cache.move_to_end(digest)
                models[name] = model
                while len(cache) > cache_limit:
                    bound = {id(m) for m in models.values()}
                    stale = next(
                        (d for d, m in cache.items() if id(m) not in bound), None
                    )
                    if stale is None:
                        break
                    del cache[stale]
            except Exception as error:
                result_queue.put(("bind-error", name, _portable_error(error)))
        elif kind == "drop":
            models.pop(message[1], None)
        elif kind == "predict":
            _, request_id, name, X = message
            # Trace stamps on the host-shared monotonic clock: dequeue,
            # model-in-hand, labels-in-hand.  The parent expands them into
            # the ipc-out / worker-load / worker-predict / ipc-back spans.
            dequeued = time.monotonic()
            try:
                model = models.get(name)
                if model is None:
                    raise KeyError(
                        f"worker pid {os.getpid()} has no model bound as {name!r}."
                    )
                loaded = time.monotonic()
                labels = model.predict(X)
                predicted = time.monotonic()
                result_queue.put(
                    ("done", request_id, labels, None, (dequeued, loaded, predicted))
                )
            except Exception as error:
                result_queue.put(
                    ("done", request_id, None, _portable_error(error), None)
                )
        elif kind == "predict-shm":
            _, request_id, name, slot, shape, dtype = message
            dequeued = time.monotonic()
            try:
                if ring is None:
                    raise RuntimeError(
                        f"worker pid {os.getpid()} could not attach the "
                        "shared-memory ring; shm descriptors cannot be served."
                    )
                model = models.get(name)
                if model is None:
                    raise KeyError(
                        f"worker pid {os.getpid()} has no model bound as {name!r}."
                    )
                X = ring.view(slot, shape, dtype)
                loaded = time.monotonic()
                labels = model.predict(X)
                predicted = time.monotonic()
                # Drop the slab view immediately: a live export into the
                # shared segment keeps SharedMemory.close() from unmapping
                # it at worker shutdown.
                del X
                stamps = (dequeued, loaded, predicted)
                if labels.nbytes <= ring.slot_bytes:
                    # The labels ride back in the request's own slot: the
                    # parent holds it until this answer is read, so the
                    # request bytes are dead and the slot is exclusively ours.
                    out_shape, out_dtype = ring.write(slot, labels)
                    result_queue.put(
                        ("done-shm", request_id, out_shape, out_dtype, None, stamps)
                    )
                else:  # pragma: no cover - labels larger than the batch
                    result_queue.put(("done", request_id, labels, None, stamps))
            except Exception as error:
                result_queue.put(
                    ("done", request_id, None, _portable_error(error), None)
                )


class ProcessWorkerPool:
    """N predict worker processes sharing one artifact store.

    Parameters
    ----------
    store:
        The :class:`ArtifactStore` (or its directory) workers open models
        from.
    n_workers:
        Worker-process count; defaults to the host CPU count.
    mp_context:
        Multiprocessing start method.  The default ``"spawn"`` is safe in
        arbitrarily threaded parents (the serving plane always is one);
        ``"fork"`` starts faster where the platform allows it.
    use_shm:
        Ship float batches through per-worker shared-memory slab rings
        (:mod:`repro.serve.shm`) instead of pickling them through the
        queues.  Enabled by default where ``multiprocessing.shared_memory``
        works; silently disabled (pickle path only) where it does not.
    shm_slot_bytes, shm_slots:
        Geometry of each worker's ring: ``shm_slots`` slots of
        ``shm_slot_bytes`` payload each.  Batches that do not fit a slot --
        or arrive while every slot is in flight -- fall back to the pickle
        path automatically.
    pin_workers:
        Pin each worker process to one CPU (round-robin over the CPUs this
        process may run on) via ``os.sched_setaffinity``, so co-located
        pools stop migrating workers across caches.  Respawned workers are
        re-pinned to their slot's CPU.  Skipped silently -- ``pinned()``
        stays empty -- on platforms without ``sched_setaffinity`` or when
        the kernel refuses.

    Control messages (:meth:`bind` / :meth:`drop`) are broadcast to every
    worker's FIFO queue; predict tasks go to one worker each, chosen
    round-robin over the live processes.  Results from all workers funnel
    into the shared :attr:`result_queue`.  The pool remembers its current
    name -> digest bindings, which is what lets :meth:`respawn` rebuild a
    dead worker's model set from the store.
    """

    def __init__(
        self,
        store: Union[ArtifactStore, str, Path],
        n_workers: Optional[int] = None,
        *,
        mp_context: str = "spawn",
        use_shm: bool = True,
        shm_slot_bytes: int = DEFAULT_SLOT_BYTES,
        shm_slots: int = DEFAULT_SLOTS,
        pin_workers: bool = False,
    ) -> None:
        from repro.serve.parallel import resolve_n_workers

        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.n_workers = resolve_n_workers(n_workers)
        self.pin_workers = bool(pin_workers)
        self._pin_cpus: List[int] = []
        if self.pin_workers and hasattr(os, "sched_getaffinity"):
            # The CPUs this process may run on, not the raw host count:
            # containers and taskset-restricted parents pin within their own
            # allowance.
            try:
                self._pin_cpus = sorted(os.sched_getaffinity(0))
            except OSError:
                self._pin_cpus = []
        self.pinned_cpus: List[Optional[int]] = [None] * self.n_workers
        self._ctx = multiprocessing.get_context(mp_context)
        self.rings: Optional[List[SlotRing]] = None
        if use_shm and shm_available():
            self.rings = [
                SlotRing(shm_slot_bytes, shm_slots) for _ in range(self.n_workers)
            ]
        self.use_shm = self.rings is not None
        self._task_queues = [self._ctx.Queue() for _ in range(self.n_workers)]
        self.result_queue = self._ctx.Queue()
        self.processes = [
            self._spawn_process(index, task_queue)
            for index, task_queue in enumerate(self._task_queues)
        ]
        for index, process in enumerate(self.processes):
            process.start()
            self._pin(index, process)
        self._rotation = itertools.cycle(range(self.n_workers))
        self._lock = threading.Lock()
        self._bindings: Dict[str, str] = {}
        self._generations = [0] * self.n_workers
        self.shm_sends = 0
        self.pickle_sends = 0
        self.respawns = 0
        self._closed = False

    def _ring_spec(self, index: int):
        return None if self.rings is None else self.rings[index].spec()

    def _pin(self, index: int, process) -> None:
        """Pin a just-started worker to its slot's CPU; skip where unsupported.

        Parent-side by pid, so the worker needs no cooperation and a
        respawned process inherits its slot's CPU deterministically.
        """
        if not self._pin_cpus or not hasattr(os, "sched_setaffinity"):
            return
        cpu = self._pin_cpus[index % len(self._pin_cpus)]
        try:
            os.sched_setaffinity(process.pid, {cpu})
        except (OSError, ValueError):
            # The kernel refused (permissions, cpuset changes, the process
            # already exited): serve unpinned rather than fail the pool.
            self.pinned_cpus[index] = None
            return
        self.pinned_cpus[index] = cpu

    def pinned(self) -> Dict[int, int]:
        """Worker index -> CPU for every successfully pinned worker."""
        return {
            index: cpu for index, cpu in enumerate(self.pinned_cpus) if cpu is not None
        }

    def _spawn_process(self, index: int, task_queue):
        return self._ctx.Process(
            target=_worker_main,
            args=(
                str(self.store.directory),
                task_queue,
                self.result_queue,
                self._ring_spec(index),
            ),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )

    # -- control plane -----------------------------------------------------------

    def bind(self, name: str, digest: str) -> None:
        """Broadcast: every worker re-opens ``digest`` and serves it as ``name``."""
        with self._lock:
            self._bindings[str(name)] = str(digest)
            for task_queue in self._task_queues:
                task_queue.put(("bind", name, digest))

    def drop(self, name: str) -> None:
        """Broadcast: every worker forgets the model bound as ``name``."""
        with self._lock:
            self._bindings.pop(str(name), None)
            for task_queue in self._task_queues:
                task_queue.put(("drop", name))

    def bindings(self) -> Dict[str, str]:
        """Snapshot of the current name -> digest bindings."""
        with self._lock:
            return dict(self._bindings)

    def respawn(self, index: int) -> Optional[int]:
        """Replace the dead worker at ``index`` with a fresh process.

        The new worker reuses the slot's shared-memory ring and result
        queue, gets a *fresh* task queue (whatever the dead worker left
        unread is gone -- the watchdog already failed those requests fast),
        and has the pool's current name -> digest bindings replayed from
        the store before it serves anything, so blue/green state survives
        the crash.  Returns the slot's new generation number, or ``None``
        when the worker is actually alive (benign race) or the pool is
        closed.  Callers see the restored capacity through the usual
        round-robin rotation -- no rebalancing is needed.
        """
        with self._lock:
            if self._closed:
                return None
            old_process = self.processes[index]
            if old_process.is_alive():
                return None
            old_queue = self._task_queues[index]
            task_queue = self._ctx.Queue()
            for name, digest in sorted(self._bindings.items()):
                task_queue.put(("bind", name, digest))
            process = self._spawn_process(index, task_queue)
            self._task_queues[index] = task_queue
            self.processes[index] = process
            self._generations[index] += 1
            self.respawns += 1
            generation = self._generations[index]
            process.start()
            self._pin(index, process)
        old_process.join(timeout=0.1)  # reap the corpse
        old_queue.close()
        old_queue.cancel_join_thread()
        return generation

    # -- data plane --------------------------------------------------------------

    def next_alive_worker(self) -> int:
        """Round-robin index of a live worker; raises when none remain."""
        with self._lock:
            for _ in range(self.n_workers):
                index = next(self._rotation)
                if self.processes[index].is_alive():
                    return index
        raise RuntimeError(
            "no live worker processes remain in the pool; the service must be "
            "restarted."
        )

    def send_predict(
        self, worker: int, request_id: int, name: str, X: np.ndarray
    ) -> Tuple[int, Optional[int]]:
        """Enqueue one predict task on ``worker``'s FIFO queue.

        Ships the batch through the worker's shared-memory ring when it
        fits a free slot (the queue then carries only the descriptor),
        falling back to the pickle path otherwise.  Returns ``(generation,
        slot)`` -- the worker generation the task was sent to (so the
        watchdog can fail requests stranded on a superseded incarnation)
        and the ring slot to release once the answer lands (``None`` on the
        pickle path).
        """
        with self._lock:
            task_queue = self._task_queues[worker]
            generation = self._generations[worker]
            ring = None if self.rings is None else self.rings[worker]
            if ring is not None and fits_slot(X, ring.slot_bytes):
                slot = ring.acquire()
                if slot is not None:
                    shape, dtype = ring.write(slot, X)
                    task_queue.put(
                        ("predict-shm", request_id, name, slot, shape, dtype)
                    )
                    self.shm_sends += 1
                    return generation, slot
            task_queue.put(("predict", request_id, name, X))
            self.pickle_sends += 1
            return generation, None

    def read_labels(self, worker: int, slot: int, shape, dtype) -> np.ndarray:
        """Copy a worker's shm-path answer out of its ring (slot stays held)."""
        assert self.rings is not None
        return self.rings[worker].read(slot, shape, dtype)

    def release_slot(self, worker: int, slot: Optional[int]) -> None:
        """Return a ring slot to ``worker``'s free-list (no-op for ``None``)."""
        if slot is not None and self.rings is not None:
            self.rings[worker].release(slot)

    def alive(self) -> List[bool]:
        """Liveness of each worker process, by index."""
        return [process.is_alive() for process in self.processes]

    def pids(self) -> List[Optional[int]]:
        """OS pid of each worker slot (``None`` before start), by index.

        Respawns change a slot's pid; resource samplers keyed by slot index
        (:class:`repro.obs.sysmon.SystemMonitor`) follow the replacement
        automatically.
        """
        return [process.pid for process in self.processes]

    def generations(self) -> List[int]:
        """Current generation number of each worker slot, by index."""
        with self._lock:
            return list(self._generations)

    # -- lifecycle ---------------------------------------------------------------

    def close(self, timeout: float = 5.0, *, release_shm: bool = True) -> None:
        """Stop every worker: polite ``stop`` sentinel, then terminate stragglers.

        ``release_shm=False`` leaves the shared-memory rings linked (the
        owning service releases them once its collector thread -- which may
        still be reading an answer out of a ring -- has exited; call
        :meth:`release_rings` afterwards).
        """
        if not self._closed:
            with self._lock:
                self._closed = True
            for task_queue in self._task_queues:
                try:
                    task_queue.put(("stop",))
                except (ValueError, OSError):  # pragma: no cover - queue torn down
                    pass
            deadline = time.monotonic() + timeout
            for process in self.processes:
                process.join(timeout=max(0.0, deadline - time.monotonic()))
            for process in self.processes:
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join(timeout=1.0)
            for task_queue in self._task_queues:
                task_queue.close()
                task_queue.cancel_join_thread()
        if release_shm:
            self.release_rings()

    def release_rings(self) -> None:
        """Unlink the shared-memory rings (idempotent)."""
        if self.rings is not None:
            for ring in self.rings:
                ring.close()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessWorkerPool(n_workers={self.n_workers}, "
            f"alive={sum(self.alive())}, shm={self.use_shm})"
        )


@dataclass
class _Inflight:
    """One shipped micro-batch awaiting its worker's answer."""

    worker: int
    name: str
    futures: List[Future]
    sizes: Optional[List[int]]
    #: Member-request traces, index-aligned with ``futures`` (None entries
    #: when tracing is off).  The worker's stamp triple fans back out onto
    #: every one of these when the answer lands.
    traces: List[Optional[Trace]] = field(default_factory=list)
    #: Monotonic instant the dispatcher started the send (ring write +
    #: queue put); the worker's dequeue stamp closes the ipc-out span
    #: opened here.
    sent_at: float = 0.0
    #: Worker generation the batch was shipped to; -1 while the dispatcher
    #: is still writing/enqueueing it (the watchdog must not touch the entry
    #: before the send lands, or it could release a slot the worker is about
    #: to write into).
    generation: int = -1
    slot: Optional[int] = None
    started: float = field(default_factory=time.perf_counter)


class ProcessPoolService(ClusteringService):
    """Multi-process :class:`ClusteringService`: predict beyond one core.

    A dispatcher thread pulls admitted requests off a queue, coalesces
    contiguous same-model requests into micro-batches and ships each batch
    to the next live worker process; a collector thread resolves the
    callers' futures as answers come back, so several batches are genuinely
    in flight at once -- aggregate throughput scales with ``n_workers``
    instead of stopping at the GIL.  Model management mirrors the base
    class, with every ``register``/``swap``/``load`` additionally published
    to the :class:`ArtifactStore` and broadcast to the workers, preserving
    blue/green semantics end to end across process boundaries.

    Batches ride per-worker shared-memory rings where they fit (see
    :class:`ProcessWorkerPool`), and a watchdog keeps the pool at full
    capacity: a dead worker's in-flight batches fail fast with an explicit
    error, then the worker is respawned with the current bindings replayed
    -- every respawn lands in ``telemetry.snapshot()["workers"]``.

    Parameters
    ----------
    store:
        The shared :class:`ArtifactStore` (or a directory to create one in).
    n_workers:
        Worker-process count (defaults to the host CPU count).
    registry:
        Optional external :class:`ModelRegistry`; it is attached to the
        store so digests resolve.  A private store-attached registry is
        created when omitted.
    mp_context:
        Worker start method (``"spawn"`` default; see
        :class:`ProcessWorkerPool`).
    max_batch_requests:
        Most requests coalesced into one shipped micro-batch.
    worker_timeout:
        Seconds :meth:`close` waits for in-flight worker answers before
        terminating the pool and failing the stragglers with
        :class:`ServiceClosed`.
    respawn_workers:
        Automatically replace dead workers (default).  ``False`` restores
        the PR-5 behaviour of leaving the slot empty.
    use_shm, shm_slot_bytes, shm_slots, pin_workers:
        Shared-memory data-plane and CPU-pinning knobs, passed to
        :class:`ProcessWorkerPool`.  Successful pins surface in
        ``telemetry.snapshot()["workers"]["pinned"]``.
    max_pending, max_batch_delay, max_async_workers, telemetry:
        As in :class:`ClusteringService` (``max_batch_delay`` here bounds
        how long the dispatcher waits for a fuller batch).
    """

    def __init__(
        self,
        store: Union[ArtifactStore, str, Path],
        *,
        n_workers: Optional[int] = None,
        registry: Optional[ModelRegistry] = None,
        mp_context: str = "spawn",
        max_batch_requests: int = 32,
        worker_timeout: float = 10.0,
        respawn_workers: bool = True,
        use_shm: bool = True,
        shm_slot_bytes: int = DEFAULT_SLOT_BYTES,
        shm_slots: int = DEFAULT_SLOTS,
        pin_workers: bool = False,
        max_pending: Optional[int] = None,
        max_batch_delay: float = 0.0,
        max_async_workers: int = 4,
        telemetry: Optional[Telemetry] = None,
        tracing: bool = True,
    ) -> None:
        if int(max_batch_requests) < 1:
            raise ValueError(
                f"max_batch_requests must be >= 1; got {max_batch_requests}."
            )
        store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        if registry is None:
            registry = ModelRegistry(store=store)
        elif registry.store is None:
            registry.store = store
        elif registry.store is not store and not (
            isinstance(registry.store, ArtifactStore)
            and registry.store.directory.resolve() == store.directory.resolve()
        ):
            # A registry publishing somewhere the workers never look would
            # turn every bind into a buried KeyError; fail loudly instead.
            raise ValueError(
                f"registry is attached to a different artifact store "
                f"({registry.store!r}) than this service ({store!r}); use one "
                "store for both so worker processes can open what the "
                "registry publishes."
            )
        super().__init__(
            registry,
            max_async_workers=max_async_workers,
            max_pending=max_pending,
            max_batch_delay=max_batch_delay,
            telemetry=telemetry,
            tracing=tracing,
        )
        self.store = store
        self.max_batch_requests = int(max_batch_requests)
        self.worker_timeout = float(worker_timeout)
        self.respawn_workers = bool(respawn_workers)
        self.pool = ProcessWorkerPool(
            store,
            n_workers,
            mp_context=mp_context,
            use_shm=use_shm,
            shm_slot_bytes=shm_slot_bytes,
            shm_slots=shm_slots,
            pin_workers=pin_workers,
        )
        for index, cpu in self.pool.pinned().items():
            self.telemetry.record_worker_pinned(index, cpu)
        self._requests: Deque[
            Tuple[str, np.ndarray, Future, Optional[Trace]]
        ] = deque()
        self._requests_cond = threading.Condition()
        self._stop_dispatch = False
        self._inflight: Dict[int, _Inflight] = {}
        self._inflight_lock = threading.Lock()
        self._request_ids = itertools.count()
        self._shutdown = threading.Event()
        self._collector_stop = threading.Event()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-serve-collect", daemon=True
        )
        self._watchdog = threading.Thread(
            target=self._watch_loop, name="repro-serve-watch", daemon=True
        )
        self._dispatcher.start()
        self._collector.start()
        self._watchdog.start()

    @staticmethod
    def _resolve_future(future: Future, *, result=None, error=None) -> None:
        """Like the base resolver, but tolerant of both sides of a race.

        A future can be completed by the collector *and* (on a worker death
        or a close timeout) by the watchdog / ``close``; whichever loses the
        race must be a no-op, not an ``InvalidStateError`` escaping a
        daemon thread.
        """
        if future.done():
            return
        try:
            ClusteringService._resolve_future(future, result=result, error=error)
        except InvalidStateError:
            pass

    # -- model management --------------------------------------------------------

    def register(self, name: str, model: ClusterModel, *, overwrite: bool = True) -> ClusterModel:
        """Register ``model``, publish its artifact and bind it in every worker."""
        registered = self.registry.register(name, model, overwrite=overwrite)
        self.pool.bind(name, self.registry.digest(name))
        return registered

    def swap(self, name: str, model: ClusterModel) -> str:
        """Blue/green publish across the process pool.

        The artifact lands in the store and the parent registry first, then
        the bind is broadcast on every worker's FIFO queue -- so predicts
        enqueued after this call returns are answered by the new version,
        and earlier ones by a version that was live when they were enqueued.
        Worker bindings of versions the retention policy evicted are
        dropped.
        """
        before = set(self.registry.versions(name))
        version = self.registry.swap(name, model)
        digest = self.registry.digest(version)
        self.pool.bind(name, digest)
        self.pool.bind(version, digest)
        for evicted in before - set(self.registry.versions(name)):
            self.pool.drop(evicted)
        self.telemetry.record_swap(name, version)
        return version

    def load(self, name: str, path, *, mmap: bool = True) -> ClusterModel:
        """Load an artifact from ``path`` and serve it under ``name``."""
        return self.register(name, ClusterModel.load(path, mmap=mmap))

    # -- serving -----------------------------------------------------------------

    def submit(
        self,
        name: str,
        X,
        *,
        wait_for_slot: bool = False,
        slot_timeout: Optional[float] = None,
        trace: Optional[Trace] = None,
    ) -> "Future[np.ndarray]":
        """Admit a predict request and hand it to the dispatcher.

        Unlike the base class, the calling thread never executes the pass
        itself -- the future resolves from the collector thread once a
        worker process answers.  The trace (caller's, or a fresh one when
        tracing is on) rides the dispatch queue with the request and is
        closed by whichever thread resolves the future -- collector,
        watchdog, or ``close``.
        """
        if self._closed:
            raise ServiceClosed("ProcessPoolService is closed; no further requests.")
        self.registry.get(name)  # fail fast on unknown names
        X = np.asarray(X, dtype=np.float64)
        trace = self._trace_for(name, trace)
        admit_start = None if trace is None else trace.last_stamp()
        try:
            self._admit(name, wait=wait_for_slot, timeout=slot_timeout)
        except BaseException as error:
            if trace is not None:
                trace.add_span(STAGE_ADMISSION_WAIT, admit_start, time.monotonic())
                self._abort_trace(trace, error)
            raise
        if trace is not None:
            trace.add_span(STAGE_ADMISSION_WAIT, admit_start, time.monotonic())
        future: "Future[np.ndarray]" = Future()
        future.add_done_callback(self._release_slot)
        with self._requests_cond:
            if self._stop_dispatch:
                # close() already drained the dispatcher; resolving here (not
                # raising before the append) keeps the slot accounting exact.
                closed_error = ServiceClosed(
                    "ProcessPoolService is closed; no further requests."
                )
                self._resolve_future(future, error=closed_error)
                self._abort_trace(trace, closed_error)
                return future
            if trace is not None:
                trace.enqueued_at = trace.last_stamp()
            self._requests.append((name, X, future, trace))
            self._requests_cond.notify()
        return future

    def _dispatch_loop(self) -> None:
        while True:
            with self._requests_cond:
                while not self._requests and not self._stop_dispatch:
                    self._requests_cond.wait()
                if not self._requests:
                    return
                if (
                    self.max_batch_delay > 0.0
                    and not self._stop_dispatch
                    and len(self._requests) < self.max_batch_requests
                ):
                    # One bounded chance for the burst to fill the batch out.
                    self._requests_cond.wait(timeout=self.max_batch_delay)
                    if not self._requests:
                        continue
                name, X, future, trace = self._requests.popleft()
                batch = [(X, future, trace)]
                while (
                    len(batch) < self.max_batch_requests
                    and self._requests
                    and self._requests[0][0] == name
                    and self._requests[0][1].ndim == X.ndim
                    and (X.ndim != 2 or self._requests[0][1].shape[1] == X.shape[1])
                ):
                    batch.append(self._requests.popleft()[1:])
            self._ship(name, batch)

    def _ship(
        self, name: str, batch: List[Tuple[np.ndarray, Future, Optional[Trace]]]
    ) -> None:
        arrays = [X for X, _, _ in batch]
        futures = [future for _, future, _ in batch]
        traces = [trace for _, _, trace in batch]
        try:
            worker = self.pool.next_alive_worker()
            if len(arrays) == 1:
                stacked, sizes = arrays[0], None
            else:
                stacked = np.concatenate(arrays, axis=0)
                sizes = [len(X) for X in arrays]
        except Exception as error:
            for future, trace in zip(futures, traces):
                self._resolve_future(future, error=error)
                self._abort_trace(trace, error)
            return
        request_id = next(self._request_ids)
        entry = _Inflight(
            worker=worker, name=name, futures=futures, sizes=sizes, traces=traces
        )
        with self._inflight_lock:
            self._inflight[request_id] = entry
        try:
            # Stamp before the send so the ring write + queue put land inside
            # the ipc-out span (closed by the worker's dequeue stamp).
            sent_at = time.monotonic()
            for trace in traces:
                if trace is not None:
                    trace.add_span(STAGE_QUEUE_WAIT, trace.enqueued_at, sent_at)
            entry.sent_at = sent_at
            generation, slot = self.pool.send_predict(
                worker, request_id, name, stacked
            )
            entry.slot = slot
            # Publish the generation last: it flips the entry from
            # "send in progress" (watchdog hands off) to "watchable".
            entry.generation = generation
        except Exception as error:  # pragma: no cover - queue torn down
            with self._inflight_lock:
                self._inflight.pop(request_id, None)
            for future, trace in zip(futures, traces):
                self._resolve_future(future, error=error)
                self._abort_trace(trace, error)

    def _finish_entry(
        self,
        entry: _Inflight,
        labels: np.ndarray,
        stamps=None,
        received_at: Optional[float] = None,
    ) -> None:
        """Resolve an answered batch's futures and account it exactly once.

        ``stamps`` is the worker's ``(dequeued, loaded, predicted)`` triple;
        it fans back out onto every member trace of the coalesced batch,
        followed by a per-trace collect span covering this resolution.
        """
        seconds = time.perf_counter() - entry.started
        self.telemetry.record_predict(entry.name, seconds, len(labels))
        with self._stats_lock:
            self.n_requests_ += len(entry.futures)
            self.n_batches_ += 1
        if entry.sizes is None:
            parts = [labels]
        else:
            offsets = np.cumsum(entry.sizes)[:-1]
            parts = np.split(labels, offsets)
        for future, part, trace in zip(entry.futures, parts, entry.traces):
            self._resolve_future(future, result=part)
            if trace is not None:
                if received_at is None:
                    received_at = time.monotonic()
                apply_worker_stamps(trace, entry.sent_at, stamps, received_at)
                done = time.monotonic()
                trace.add_span(STAGE_COLLECT, received_at, done)
                # close() is first-wins: a watchdog that doomed this entry
                # already closed and recorded the trace.  Closing at the
                # collect span's own end stamp keeps a preemption right here
                # from stretching the total past the spans.
                if trace.close(at=done):
                    self.telemetry.record_trace(trace)

    def _collect_loop(self) -> None:
        # The timed get is deliberate: the parent must never `put` on the
        # result queue (not even a stop sentinel), because a worker SIGKILL'd
        # mid-`put` dies holding the queue's shared write lock -- a parent
        # blocked on that lock would hang close() and interpreter exit.
        # Reads contend only on the reader lock, which workers never touch.
        while True:
            try:
                message = self.pool.result_queue.get(timeout=0.1)
            except Empty:
                if self._collector_stop.is_set():
                    return
                continue
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            received_at = time.monotonic()
            try:
                kind = message[0]
                if kind == "bind-error":
                    _, name, error = message
                    self.telemetry.record_callback_error(f"worker-bind:{name}", error)
                    continue
                if kind == "done-shm":
                    _, request_id, shape, dtype, error, stamps = message
                    with self._inflight_lock:
                        entry = self._inflight.pop(request_id, None)
                    if entry is None:
                        continue
                    labels = self.pool.read_labels(
                        entry.worker, entry.slot, shape, dtype
                    )
                    self.pool.release_slot(entry.worker, entry.slot)
                    self._finish_entry(
                        entry, labels, stamps=stamps, received_at=received_at
                    )
                    continue
                _, request_id, labels, error, stamps = message
                with self._inflight_lock:
                    entry = self._inflight.pop(request_id, None)
                if entry is None:
                    continue
                self.pool.release_slot(entry.worker, entry.slot)
                if error is not None:
                    for future, trace in zip(entry.futures, entry.traces):
                        self._resolve_future(future, error=error)
                        self._abort_trace(trace, error)
                    continue
                self._finish_entry(
                    entry, labels, stamps=stamps, received_at=received_at
                )
            except Exception as error:  # pragma: no cover - defensive
                self.telemetry.record_callback_error("collector", error)

    def _watch_loop(self) -> None:
        """Keep the pool at capacity: fail a dead worker's batches, respawn it.

        Every tick compares each in-flight entry against the liveness *and
        generation* of the worker slot it was shipped to.  The generation
        check closes the race where the dispatcher ships to a worker in the
        same tick the watchdog replaces it: the entry's messages sit in the
        superseded incarnation's (discarded) queue, so it must fail fast
        like the rest -- never hang until ``close()``.
        """
        while not self._shutdown.wait(0.1):
            alive = self.pool.alive()
            generations = self.pool.generations()
            dead = [index for index, ok in enumerate(alive) if not ok]
            with self._inflight_lock:
                doomed = [
                    (request_id, entry)
                    for request_id, entry in self._inflight.items()
                    if entry.generation >= 0
                    and (
                        not alive[entry.worker]
                        or entry.generation != generations[entry.worker]
                    )
                ]
                for request_id, _ in doomed:
                    self._inflight.pop(request_id, None)
            for _, entry in doomed:
                self.pool.release_slot(entry.worker, entry.slot)
                exitcode = self.pool.processes[entry.worker].exitcode
                death = RuntimeError(
                    f"worker process {entry.worker} died (exitcode "
                    f"{exitcode}) with this request in flight."
                )
                for future, trace in zip(entry.futures, entry.traces):
                    self._resolve_future(future, error=death)
                    # Doomed traces close with an error span covering the
                    # unaccounted tail -- they surface in the slow ring, they
                    # never leak half-open.
                    self._abort_trace(trace, death)
            if not dead or not self.respawn_workers or self._closing:
                continue
            for index in dead:
                generation = self.pool.respawn(index)
                if generation is not None:
                    self.telemetry.record_worker_respawn(index)
                    # Respawn re-pins (or fails to); keep the snapshot honest.
                    self.telemetry.record_worker_pinned(
                        index, self.pool.pinned_cpus[index]
                    )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut the serving plane down without stranding a single future.

        Idempotent and safe to call with requests in flight: admitted
        requests are still dispatched, in-flight worker batches get up to
        ``worker_timeout`` seconds to answer, then workers are stopped and
        anything unresolved fails with :class:`ServiceClosed` (a clean
        error, never a hang).  Later calls raise :class:`ServiceClosed`.
        """
        with self._lifecycle_lock:
            if self._closed or self._closing:
                return
            self._closing = True
            pool, self._async_pool = self._async_pool, None
        self._stop_monitor()
        with self._admission:
            self._admission.notify_all()
        if pool is not None:
            pool.shutdown(wait=True)
        with self._requests_cond:
            self._stop_dispatch = True
            self._requests_cond.notify_all()
        self._dispatcher.join()
        deadline = time.monotonic() + self.worker_timeout
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if not self._inflight:
                    break
            if not any(self.pool.alive()):
                break
            time.sleep(0.01)
        self._shutdown.set()
        self._watchdog.join()
        # The collector may still be copying an answer out of a ring, so the
        # shared-memory segments are released only after it exits.
        self.pool.close(release_shm=False)
        self._collector_stop.set()
        self._collector.join(timeout=5.0)
        with self._inflight_lock:
            stranded = list(self._inflight.values())
            self._inflight.clear()
        for entry in stranded:  # pragma: no cover - only on worker timeout
            stranded_error = ServiceClosed(
                "ProcessPoolService closed before the worker answered."
            )
            for future, trace in zip(entry.futures, entry.traces):
                self._resolve_future(future, error=stranded_error)
                self._abort_trace(trace, stranded_error)
        self.pool.release_rings()
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessPoolService(models={self.registry.names()!r}, "
            f"workers={sum(self.pool.alive())}/{self.pool.n_workers}, "
            f"requests={self.n_requests_})"
        )
