"""Frozen, shippable AdaWave clustering artifacts.

AdaWave's quantized grid is a tiny sketch of the data: once the pipeline has
run, everything needed to label *new* points is the quantizer geometry
(bounds and interval counts), the surviving transformed-cell -> cluster-id
map and the level/threshold metadata.  :class:`ClusterModel` freezes exactly
that -- ``O(occupied cells)`` memory, no reference to the training points --
so a fitted clustering can be saved, copied across machines and served
without the training set ever leaving the ingestion host.

The on-disk format is a plain ``.npz`` archive whose numeric members hold
the arrays and whose ``header`` member is a UTF-8 JSON document with a magic
string, a format version and the scalar metadata.  :meth:`ClusterModel.load`
validates both before touching any array, so corrupted files and artifacts
written by a future incompatible version are rejected with a clear error
instead of mislabelling traffic.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.grid.lookup import NOISE_LABEL, CellLabelIndex
from repro.grid.quantizer import GridQuantizer
from repro.utils.validation import NotFittedError, check_array

#: Magic string identifying a serialized ClusterModel.
FORMAT_MAGIC = "repro.serve/cluster-model"

#: Current on-disk format version.  Bump on any incompatible layout change;
#: :meth:`ClusterModel.load` refuses files with a different major version.
FORMAT_VERSION = 1


@dataclass(frozen=True, eq=False)
class ClusterModel:
    """Immutable serving artifact extracted from a fitted AdaWave run.

    Attributes
    ----------
    lower, upper:
        Fitted per-dimension quantizer bounds (post edge-expansion, so new
        points quantize onto the identical grid).
    grid_shape:
        Interval counts of the original quantization grid.
    level:
        Wavelet decomposition levels; a point's transformed cell is its
        original cell floor-divided by ``2 ** level``.
    threshold:
        The adaptive density threshold the run selected (metadata; already
        applied to the cell map).
    cell_coords:
        ``(k, d)`` surviving transformed-cell coordinates in sorted
        (lexicographic) COO order.
    cell_labels:
        ``(k,)`` cluster ids aligned with :attr:`cell_coords`.
    n_clusters:
        Number of clusters in the map.
    metadata:
        Free-form scalar metadata (wavelet name, threshold method, training
        sample count, ...) persisted verbatim in the JSON header.
    """

    lower: np.ndarray
    upper: np.ndarray
    grid_shape: Tuple[int, ...]
    level: int
    threshold: float
    cell_coords: np.ndarray
    cell_labels: np.ndarray
    n_clusters: int
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=np.float64)
        upper = np.asarray(self.upper, dtype=np.float64)
        coords = np.asarray(self.cell_coords, dtype=np.int64)
        labels = np.asarray(self.cell_labels, dtype=np.int64)
        grid_shape = tuple(int(s) for s in self.grid_shape)
        if coords.ndim != 2:
            raise ValueError(f"cell_coords must be 2-D; got shape {coords.shape}.")
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ValueError("lower and upper must be 1-D arrays of equal length.")
        if len(grid_shape) != len(lower) or coords.shape[1] != len(lower):
            raise ValueError(
                "dimension mismatch between bounds, grid_shape and cell_coords: "
                f"{len(lower)} vs {len(grid_shape)} vs {coords.shape[1]}."
            )
        if labels.shape != (len(coords),):
            raise ValueError(
                f"cell_labels must have shape ({len(coords)},); got {labels.shape}."
            )
        if len(coords):
            # Canonicalise to sorted COO order so saved artifacts are
            # byte-stable regardless of how the map was assembled.  Already-
            # canonical inputs (every saved artifact) are adopted as-is, so a
            # memory-mapped load keeps sharing the file's pages.
            order = np.lexsort(coords.T[::-1])
            if not np.array_equal(order, np.arange(len(order))):
                coords = np.ascontiguousarray(coords[order])
                labels = labels[order]
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        object.__setattr__(self, "grid_shape", grid_shape)
        object.__setattr__(self, "level", int(self.level))
        object.__setattr__(self, "threshold", float(self.threshold))
        object.__setattr__(self, "cell_coords", coords)
        object.__setattr__(self, "cell_labels", labels)
        object.__setattr__(self, "n_clusters", int(self.n_clusters))
        object.__setattr__(self, "metadata", dict(self.metadata))
        # Derived lookup machinery, built once: predict() afterwards is a
        # pure encode / searchsorted pass with no per-call allocation beyond
        # the outputs.
        object.__setattr__(
            self, "_quantizer", GridQuantizer.from_fitted(lower, upper, grid_shape)
        )
        object.__setattr__(self, "_index", CellLabelIndex(coords, labels))
        object.__setattr__(self, "_factor", 2 ** int(self.level))

    # -- introspection ---------------------------------------------------------

    @property
    def n_features(self) -> int:
        """Dimensionality of the feature space the model was trained on."""
        return len(self.grid_shape)

    @property
    def n_cells(self) -> int:
        """Number of surviving transformed cells in the map."""
        return len(self.cell_labels)

    def memory_cells(self) -> int:
        """Stored entries -- the artifact's size never scales with ``n_seen``."""
        return self.n_cells

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_estimator(cls, estimator) -> "ClusterModel":
        """Freeze a fitted :class:`~repro.core.adawave.AdaWave` estimator."""
        result = getattr(estimator, "result_", None)
        if result is None:
            raise NotFittedError(
                "cannot export a ClusterModel from an unfitted estimator; "
                "call fit() or partial_fit/finalize first."
            )
        quantization = result.quantization
        ndim = quantization.grid.ndim
        surviving = result.surviving_cells
        if surviving:
            coords = np.asarray(list(surviving.keys()), dtype=np.int64)
            labels = np.fromiter(surviving.values(), dtype=np.int64, count=len(surviving))
        else:
            coords = np.empty((0, ndim), dtype=np.int64)
            labels = np.empty(0, dtype=np.int64)
        wavelet = getattr(estimator, "wavelet_", None)
        if wavelet is None:
            spec = getattr(estimator, "wavelet", None)
            wavelet = getattr(spec, "name", None) or str(spec)
        metadata = {
            "wavelet": wavelet,
            # The denoising level policy the fitted run used (canonical
            # LevelPolicy name, sweep winners resolved); load() rejects
            # unknown values so a typo'd or tampered artifact cannot serve.
            "threshold_method": getattr(estimator, "threshold_method_", None),
            # The elbow-detection rule the estimator was configured with
            # ("auto" / "segments" / "angle" / "distance" / "none").
            "threshold_selector": getattr(estimator, "threshold_method", None),
            # The elbow rule that actually fired on this run's density curve.
            "threshold_rule": result.threshold.method,
            "n_seen": int(getattr(estimator, "n_seen_", 0)),
        }
        transform_backend = getattr(estimator, "backend_", None)
        if transform_backend:
            # Provenance: which transform kernel produced the coefficients
            # this artifact's cell map was cut from.
            metadata["transform_backend"] = transform_backend
        stage_seconds = getattr(estimator, "stage_seconds_", None)
        if stage_seconds:
            # Fit-time provenance: how long each grid-side stage of the
            # winning run took, same stage vocabulary the serving plane uses.
            metadata["stage_seconds"] = dict(stage_seconds)
        tune_result = getattr(estimator, "tune_result_", None)
        if tune_result is not None:
            # A tuned model ships the evidence for its own resolution: the
            # chosen scale/level plus the full per-candidate score table
            # (JSON-able, persisted verbatim in the artifact header).
            metadata["tuning"] = tune_result.provenance()
        return cls(
            lower=quantization.lower,
            upper=quantization.upper,
            grid_shape=quantization.grid.shape,
            level=result.level,
            threshold=result.threshold.threshold,
            cell_coords=coords,
            cell_labels=labels,
            n_clusters=result.n_clusters,
            metadata=metadata,
        )

    # -- serving ---------------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        """Label arbitrary points in one vectorized lookup pass.

        Points are quantized against the frozen bounds, mapped to
        transformed-space cells (``// 2 ** level``) and matched against the
        sorted cell map via a single encode / ``searchsorted`` pass.  Points
        in unmapped cells -- or outside the fitted bounds entirely -- get
        :data:`~repro.grid.lookup.NOISE_LABEL`.  Runs in ``O(n log k)`` for
        ``n`` points against ``k`` surviving cells and never materialises
        anything proportional to the training-set size.
        """
        X = check_array(X, name="X", allow_empty=True)
        cells, inside = self._quantizer.transform_with_mask(X)
        labels = self._index.lookup(cells // self._factor)
        labels[~inside] = NOISE_LABEL
        return labels

    # -- persistence -----------------------------------------------------------

    def content_digest(self) -> str:
        """Hex SHA-256 of the artifact's logical content.

        Hashes the canonical JSON header plus the raw bytes of every array,
        so two models with identical contents share a digest regardless of
        how (or whether) they were serialized -- npz archives embed
        timestamps, so file bytes are *not* stable, but this digest is.
        Content-addressed stores (:class:`~repro.serve.procpool.ArtifactStore`)
        key artifacts by it.
        """
        digest = hashlib.sha256()
        digest.update(json.dumps(self._header(), sort_keys=True).encode("utf-8"))
        for array in (
            self.lower,
            self.upper,
            np.asarray(self.grid_shape, dtype=np.int64),
            self.cell_coords,
            self.cell_labels,
        ):
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()

    def _header(self) -> Dict[str, Any]:
        return {
            "format": FORMAT_MAGIC,
            "version": FORMAT_VERSION,
            "level": self.level,
            "threshold": self.threshold,
            "n_clusters": self.n_clusters,
            "n_features": self.n_features,
            "n_cells": self.n_cells,
            "metadata": self.metadata,
        }

    def save(self, path: Union[str, Path], *, compress: bool = True) -> Path:
        """Serialize the artifact to ``path`` (npz + JSON header); returns it.

        ``compress=False`` stores the arrays uncompressed, which makes the
        artifact memory-mappable: ``load(path, mmap=True)`` then shares the
        file's pages across serving processes instead of copying the arrays
        into each one.
        """
        path = Path(path)
        header = json.dumps(self._header(), sort_keys=True).encode("utf-8")
        writer = np.savez_compressed if compress else np.savez
        with open(path, "wb") as stream:
            writer(
                stream,
                header=np.frombuffer(header, dtype=np.uint8),
                lower=self.lower,
                upper=self.upper,
                grid_shape=np.asarray(self.grid_shape, dtype=np.int64),
                cell_coords=self.cell_coords,
                cell_labels=self.cell_labels,
            )
        return path

    @staticmethod
    def _mmap_npz_member(path: Path, info: "zipfile.ZipInfo") -> Optional[np.ndarray]:
        """Memory-map one stored (uncompressed) ``.npy`` member of an archive.

        The member's array data lives at a fixed offset inside the zip file,
        so ``np.memmap`` can map it read-only straight from disk -- every
        process mapping the same artifact shares those pages.  Returns
        ``None`` when the member cannot be mapped (deflated, object dtype,
        zero-size, exotic npy version); the caller falls back to a copying
        read.
        """
        if info.compress_type != zipfile.ZIP_STORED:
            return None
        with open(path, "rb") as stream:
            stream.seek(info.header_offset)
            local_header = stream.read(30)
            if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
                return None
            name_len, extra_len = struct.unpack("<HH", local_header[26:30])
            stream.seek(info.header_offset + 30 + name_len + extra_len)
            member_start = stream.tell()
            version = np.lib.format.read_magic(stream)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(stream)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(stream)
            else:
                return None
            data_offset = stream.tell()
        if dtype.hasobject or int(np.prod(shape)) == 0:
            return None
        if data_offset - member_start + int(np.prod(shape)) * dtype.itemsize > info.file_size:
            return None
        return np.memmap(
            path,
            dtype=dtype,
            mode="r",
            offset=data_offset,
            shape=shape,
            order="F" if fortran else "C",
        )

    @classmethod
    def _load_members(cls, path: Path, *, mmap: bool) -> Dict[str, np.ndarray]:
        """All npz members of the artifact, memory-mapped where possible."""
        if not mmap:
            with np.load(path, allow_pickle=False) as archive:
                return {name: archive[name] for name in archive.files}
        members: Dict[str, np.ndarray] = {}
        with zipfile.ZipFile(path) as archive:
            for info in archive.infolist():
                if not info.filename.endswith(".npy"):
                    continue
                name = info.filename[:-4]
                loaded = cls._mmap_npz_member(path, info)
                if loaded is None:
                    with archive.open(info) as stream:
                        loaded = np.lib.format.read_array(stream, allow_pickle=False)
                members[name] = loaded
        return members

    @classmethod
    def load(cls, path: Union[str, Path], *, mmap: bool = False) -> "ClusterModel":
        """Deserialize an artifact, validating magic, version and layout.

        With ``mmap=True`` the arrays of an uncompressed artifact
        (``save(..., compress=False)``) are memory-mapped read-only --
        ``mmap_mode="r"`` semantics for the npz members -- so concurrent
        serving processes loading the same file share its pages instead of
        each copying the cell map.  Compressed members fall back to a normal
        copying read.

        Raises
        ------
        ValueError
            If the file is not a ClusterModel archive, is corrupted, or was
            written with an incompatible format version.
        """
        path = Path(path)
        try:
            members = cls._load_members(path, mmap=mmap)
        except (zipfile.BadZipFile, OSError, EOFError, ValueError, KeyError) as error:
            raise ValueError(
                f"{path} is not a readable ClusterModel artifact: {error}"
            ) from error
        if "header" not in members:
            raise ValueError(
                f"{path} is missing the ClusterModel JSON header; not a "
                "ClusterModel artifact."
            )
        try:
            header = json.loads(bytes(members["header"].astype(np.uint8)).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"{path} has a corrupted ClusterModel header.") from error
        if not isinstance(header, dict) or header.get("format") != FORMAT_MAGIC:
            raise ValueError(
                f"{path} does not declare the {FORMAT_MAGIC!r} format; refusing to load."
            )
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path} uses ClusterModel format version {header.get('version')!r}; "
                f"this build reads version {FORMAT_VERSION}. Re-export the model."
            )
        required = ("lower", "upper", "grid_shape", "cell_coords", "cell_labels")
        missing = [name for name in required if name not in members]
        if missing:
            raise ValueError(f"{path} is missing required arrays: {missing}.")
        try:
            model = cls(
                lower=members["lower"],
                upper=members["upper"],
                grid_shape=tuple(int(s) for s in members["grid_shape"]),
                level=int(header["level"]),
                threshold=float(header["threshold"]),
                cell_coords=members["cell_coords"],
                cell_labels=members["cell_labels"],
                n_clusters=int(header["n_clusters"]),
                metadata=dict(header.get("metadata") or {}),
            )
        except (TypeError, KeyError, ValueError) as error:
            raise ValueError(
                f"{path} holds inconsistent ClusterModel contents: {error}"
            ) from error
        if model.n_cells != int(header.get("n_cells", model.n_cells)):
            raise ValueError(
                f"{path} header declares {header.get('n_cells')} cells but the "
                f"arrays hold {model.n_cells}; artifact is corrupted."
            )
        threshold_method = model.metadata.get("threshold_method")
        if threshold_method is not None:
            from repro.wavelets.thresholding import THRESHOLD_POLICY_NAMES

            if threshold_method not in THRESHOLD_POLICY_NAMES:
                raise ValueError(
                    f"{path} declares unknown threshold_method "
                    f"{threshold_method!r}; this build knows "
                    f"{THRESHOLD_POLICY_NAMES}. The artifact was written by "
                    "an incompatible build or has been tampered with; "
                    "re-export the model."
                )
        return model

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterModel(d={self.n_features}, cells={self.n_cells}, "
            f"clusters={self.n_clusters}, level={self.level})"
        )
