"""HTTP front door for the serving plane: predict, swap, health, metrics.

Nothing outside the process could call the PR-5 serving plane; this module
puts a real network edge on any :class:`~repro.serve.ClusteringService`
(the multi-process :class:`~repro.serve.ProcessPoolService` included) using
only the stdlib: an ``asyncio.start_server`` loop speaking a deliberately
small slice of HTTP/1.1.

* ``POST /predict/<name>`` -- label a batch.  The body is either JSON
  (``{"points": [[...], ...]}``, answered with ``{"labels": [...]}``) or a
  raw ``.npy`` array (``Content-Type: application/x-npy``, answered in
  kind), so high-volume clients skip JSON entirely.
* ``POST /swap/<name>`` -- blue/green publish: the body is a ClusterModel
  npz artifact; the response carries the new version name.
* ``GET /healthz`` -- graded liveness: ``ok | degraded | closing`` with
  machine-readable ``reasons`` (dead workers, burning SLOs, event-loop
  lag) when a :class:`repro.obs.sysmon.SystemMonitor` is attached to the
  service, plus model/worker counts.
* ``GET /readyz`` -- serviceability: 200 while the edge can actually
  answer predicts, 503 (with the reasons) when it cannot -- closing,
  closed, or a worker pool with zero live processes.  Load balancers
  route on this; ``/healthz`` stays 200 while degraded so operators can
  still read it.
* ``GET /metrics`` -- the service's full
  :meth:`~repro.serve.metrics.Telemetry.snapshot` with the edge's own
  counters merged into its ``edge`` section.  Content-negotiated on the
  ``Accept`` header with full q-value handling: a preference for
  ``text/plain`` or ``application/openmetrics-text`` gets Prometheus text
  exposition 0.0.4, anything else (including the usual ``*/*`` default)
  gets JSON.
* ``GET /debug/slow`` -- the slow-request capture: full span breakdowns of
  the slowest and deadline-violating traces.
* ``POST /debug/profile`` (``{"action": "start"|"stop"}``) and ``GET
  /debug/profile`` -- the opt-in sampling profiler
  (:class:`repro.obs.profiler.SamplingProfiler`): start/stop a capture,
  fetch collapsed-stack flame-graph text.

``HEAD`` is answered on every GET route -- the full headers (including the
exact ``Content-Length`` the GET would carry) with no body.

Every predict request is traced end to end (when the service has tracing
enabled): the edge opens the trace before decoding the body, hands it to
``predict_async``, and returns its id in the ``X-Trace-Id`` response header
so clients can correlate slow responses with ``GET /debug/slow`` and the
structured log stream.

**Deadline propagation** is the edge's load-shedding contract: a request
carrying ``X-Deadline-Ms: <budget>`` is queued with backpressure *bounded
by that budget* -- if the service cannot answer in time it fails with 504
(or 429 when shed immediately without a deadline) instead of queueing
forever.  :meth:`EdgeServer.close` drains gracefully: in-flight requests
finish (up to ``drain_timeout``), idle keep-alive connections are dropped,
new connections are refused.

:class:`EdgeThread` runs the whole thing on a private event-loop thread for
synchronous callers (examples, tests, ``curl`` demos).
"""

from __future__ import annotations

import asyncio
import io
import json
import logging
import math
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.obs.profiler import SamplingProfiler
from repro.obs.prometheus import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.trace import STAGE_EDGE_PARSE, Trace
from repro.serve.model import ClusterModel
from repro.serve.service import ClusteringService, Overloaded, ServiceClosed

#: Structured request log.  Silent unless the embedding application (or
#: :func:`repro.obs.enable_json_logging`) attaches a handler -- importing
#: or running the edge never configures global logging state.
logger = logging.getLogger("repro.serve.edge")

#: Request header carrying the caller's remaining time budget, in
#: milliseconds.  See :class:`EdgeServer`.
DEADLINE_HEADER = "x-deadline-ms"

#: Content types decoded as raw ``.npy`` bodies.
_NPY_TYPES = ("application/x-npy", "application/octet-stream")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _BadRequest(Exception):
    """Malformed HTTP from the client; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class EdgeServer:
    """Asyncio HTTP/1.1 edge over a :class:`ClusteringService`.

    Parameters
    ----------
    service:
        The service to front -- single-process or a
        :class:`~repro.serve.ProcessPoolService`.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    max_body_bytes:
        Request bodies beyond this are refused with 413.
    drain_timeout:
        Seconds :meth:`close` waits for in-flight requests to finish before
        cancelling their connections.
    idle_timeout:
        Seconds a keep-alive connection may sit between requests.

    The server is an async context manager::

        async with EdgeServer(service, port=0) as edge:
            ...  # edge.port is bound

    Requests with an ``X-Deadline-Ms`` header are admitted with
    deadline-bounded backpressure (the caller's budget caps both the
    admission wait and the predict itself); requests without one are shed
    immediately with 429 when the service is saturated.
    """

    def __init__(
        self,
        service: ClusteringService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_body_bytes: int = 256 << 20,
        drain_timeout: float = 5.0,
        idle_timeout: float = 30.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self.max_body_bytes = int(max_body_bytes)
        self.drain_timeout = float(drain_timeout)
        self.idle_timeout = float(idle_timeout)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._active_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._closing = False
        self.requests_by_status: Dict[int, int] = {}
        #: Opt-in sampling profiler behind ``/debug/profile``; costs nothing
        #: until a capture is started.
        self.profiler = SamplingProfiler()

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> "EdgeServer":
        """Bind and start accepting connections; resolves the actual port."""
        if self._server is not None:
            raise RuntimeError("EdgeServer is already started.")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        """Graceful drain: finish in-flight requests, then drop connections.

        New connections are refused immediately; requests already being
        processed get up to ``drain_timeout`` seconds to complete; idle
        keep-alive connections are cancelled.  Idempotent.  The underlying
        service is left running (it may outlive the edge, or be closed by
        its own context manager).
        """
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self.drain_timeout)
        except asyncio.TimeoutError:  # pragma: no cover - stuck request
            pass
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    async def __aenter__(self) -> "EdgeServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> bool:
        await self.close()
        return False

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while not self._closing:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader, writer),
                        timeout=self.idle_timeout,
                    )
                except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                    return
                except _BadRequest as error:
                    # Never parsed far enough to time or route; count it
                    # under its own label so malformed traffic is visible.
                    self.service.telemetry.record_edge_request(
                        "bad-request", error.status, 0.0
                    )
                    await self._respond_json(
                        writer, error.status, {"error": str(error)}, close=True
                    )
                    return
                if request is None:  # clean EOF between requests
                    return
                method, path, headers, body = request
                self._active_requests += 1
                self._idle.clear()
                started = time.perf_counter()
                try:
                    status, payload, content_type, extra_headers = await self._route(
                        method, path, headers, body
                    )
                finally:
                    self._active_requests -= 1
                    if self._active_requests == 0:
                        self._idle.set()
                seconds = time.perf_counter() - started
                route = self._route_label(path)
                self.service.telemetry.record_edge_request(route, status, seconds)
                if logger.isEnabledFor(logging.INFO):
                    logger.info(
                        "%s %s -> %d in %.1fms",
                        method, path, status, seconds * 1e3,
                        extra={
                            "route": route,
                            "status": status,
                            "trace_id": extra_headers.get("X-Trace-Id"),
                        },
                    )
                keep_alive = (
                    not self._closing
                    and headers.get("connection", "").lower() != "close"
                )
                await self._write_response(
                    writer, status, payload, content_type,
                    close=not keep_alive, headers=extra_headers,
                    head_only=method == "HEAD",
                )
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # pragma: no cover - peer already gone
                pass

    async def _read_request(
        self, reader, writer
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(400, "malformed request line.")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= 100 or len(raw) > 16384:
                raise _BadRequest(400, "header section too large.")
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest(400, "invalid Content-Length.") from None
        if length > self.max_body_bytes:
            raise _BadRequest(
                413, f"body of {length} bytes exceeds {self.max_body_bytes}."
            )
        if headers.get("expect", "").lower() == "100-continue":
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            await writer.drain()
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], headers, body

    # -- routing -----------------------------------------------------------------

    @staticmethod
    def _route_label(path: str) -> str:
        """Bounded-cardinality route label for telemetry (no raw paths)."""
        if path.startswith("/predict/"):
            return "predict"
        if path.startswith("/swap/"):
            return "swap"
        if path == "/healthz":
            return "healthz"
        if path == "/readyz":
            return "readyz"
        if path == "/metrics":
            return "metrics"
        if path == "/debug/slow":
            return "debug-slow"
        if path == "/debug/profile":
            return "debug-profile"
        return "other"

    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Any, str, Dict[str, str]]:
        """Dispatch one request; returns ``(status, payload, content_type, headers)``."""
        # HEAD routes exactly like GET (the body is suppressed at write
        # time, headers -- Content-Length included -- stay identical).
        if method == "HEAD":
            method = "GET"
        try:
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": "use GET."}, "application/json", {}
                return 200, self._healthz(), "application/json", {}
            if path == "/readyz":
                if method != "GET":
                    return 405, {"error": "use GET."}, "application/json", {}
                return self._readyz()
            if path == "/metrics":
                if method != "GET":
                    return 405, {"error": "use GET."}, "application/json", {}
                return self._metrics(headers)
            if path == "/debug/slow":
                if method != "GET":
                    return 405, {"error": "use GET."}, "application/json", {}
                traces = self.service.telemetry.snapshot()["traces"]
                return 200, traces, "application/json", {}
            if path == "/debug/profile":
                return self._profile(method, body)
            if path.startswith("/predict/"):
                if method != "POST":
                    return 405, {"error": "use POST."}, "application/json", {}
                return await self._predict(path[len("/predict/"):], headers, body)
            if path.startswith("/swap/"):
                if method != "POST":
                    return 405, {"error": "use POST."}, "application/json", {}
                return await self._swap(path[len("/swap/"):], body)
            return 404, {"error": f"unknown path {path!r}."}, "application/json", {}
        except _BadRequest as error:
            return error.status, {"error": str(error)}, "application/json", {}
        except Exception as error:  # pragma: no cover - defensive catch-all
            return (
                500,
                {"error": f"{type(error).__name__}: {error}"},
                "application/json",
                {},
            )

    @staticmethod
    def _negotiate_metrics(accept: str) -> str:
        """Pick ``"json"`` or ``"prometheus"`` from an ``Accept`` header.

        Proper (if small) content negotiation: media ranges are split,
        parameters parsed, ``q`` values honoured (``q=0`` excludes), ties
        broken by specificity then list order.  ``application/json``,
        ``application/*`` and the bare default map to JSON;
        ``text/plain``, ``application/openmetrics-text`` and ``text/*``
        map to the Prometheus exposition.
        """
        if not accept.strip():
            return "json"
        # (q, specificity, -position, kind); max() picks the winner.
        candidates = []
        for position, part in enumerate(accept.split(",")):
            pieces = part.split(";")
            media = pieces[0].strip().lower()
            q = 1.0
            for param in pieces[1:]:
                key, _, value = param.partition("=")
                if key.strip().lower() == "q":
                    try:
                        q = float(value.strip())
                    except ValueError:
                        q = 0.0
            if q <= 0.0:
                continue
            if media in ("text/plain", "application/openmetrics-text"):
                kind, specificity = "prometheus", 2
            elif media == "application/json":
                kind, specificity = "json", 2
            elif media == "text/*":
                kind, specificity = "prometheus", 1
            elif media == "application/*":
                kind, specificity = "json", 1
            elif media == "*/*":
                kind, specificity = "json", 0
            else:
                continue
            candidates.append((q, specificity, -position, kind))
        if not candidates:
            return "json"
        return max(candidates)[3]

    def _metrics(self, headers: Dict[str, str]) -> Tuple[int, Any, str, Dict[str, str]]:
        """``GET /metrics``: JSON snapshot, or Prometheus text when asked.

        The edge's own counters are merged into a *copy* of the snapshot's
        ``edge`` section -- the snapshot dict is shared state once handed
        out, and mutating it here would let two concurrent renders (JSON
        and Prometheus) interleave partial edge counters.
        """
        snapshot = self.service.telemetry.snapshot()
        edge_section = dict(snapshot.get("edge") or {})
        edge_section["active_requests"] = self._active_requests
        edge_section["requests_by_status"] = {
            str(code): count
            for code, count in sorted(self.requests_by_status.items())
        }
        snapshot = {**snapshot, "edge": edge_section}
        if self._negotiate_metrics(headers.get("accept", "")) == "prometheus":
            return 200, render_prometheus(snapshot), PROMETHEUS_CONTENT_TYPE, {}
        return 200, snapshot, "application/json", {}

    def _health_verdict(self) -> Tuple[str, list, Dict[str, Any]]:
        """Graded ``(status, reasons, detail)`` for health and readiness.

        With a :class:`~repro.obs.sysmon.SystemMonitor` attached to the
        service the verdict is its full evaluation (workers, loop lag,
        burning SLOs); without one, the edge still grades the one thing it
        can see directly -- dead pool workers.
        """
        if self._closing or self.service.closed:
            return "closing", ["closing"], {}
        monitor = getattr(self.service, "monitor", None)
        if monitor is not None:
            verdict = monitor.health()
            return verdict["status"], verdict["reasons"], verdict["detail"]
        pool = getattr(self.service, "pool", None)
        if pool is not None:
            alive = pool.alive()
            if not all(alive):
                return (
                    "degraded",
                    ["workers_dead"],
                    {"workers_alive": sum(alive), "workers_total": len(alive)},
                )
        return "ok", [], {}

    def _healthz(self) -> Dict[str, Any]:
        status, reasons, detail = self._health_verdict()
        health: Dict[str, Any] = {
            "status": status,
            "reasons": reasons,
            "models": self.service.registry.names(),
        }
        if detail:
            health["detail"] = detail
        pool = getattr(self.service, "pool", None)
        if pool is not None:
            health["workers"] = {
                "alive": sum(pool.alive()),
                "total": pool.n_workers,
                "respawns": pool.respawns,
                "shm_sends": pool.shm_sends,
                "pickle_sends": pool.pickle_sends,
            }
            if pool.rings is not None:
                health["workers"]["rings"] = [
                    ring.stats() for ring in pool.rings
                ]
        return health

    def _readyz(self) -> Tuple[int, Any, str, Dict[str, str]]:
        """``GET /readyz``: 200 while serviceable, 503 with reasons when not.

        Not serviceable means requests would fail, not merely suffer: the
        edge is closing/closed, or a worker pool has zero live processes.
        A degraded-but-answering service (burning SLO, loop lag, *some*
        workers dead) stays ready -- load balancers should keep routing to
        it while operators chase the ``/healthz`` reasons.
        """
        status, reasons, detail = self._health_verdict()
        ready = status != "closing"
        if ready:
            pool = getattr(self.service, "pool", None)
            if pool is not None and not any(pool.alive()):
                ready = False
        payload = {"ready": ready, "status": status, "reasons": reasons}
        if detail:
            payload["detail"] = detail
        return (200 if ready else 503), payload, "application/json", {}

    def _profile(
        self, method: str, body: bytes
    ) -> Tuple[int, Any, str, Dict[str, str]]:
        """``/debug/profile``: POST starts/stops a capture, GET fetches it.

        ``POST {"action": "start", "hz": 97}`` begins sampling (409 when a
        capture is already running), ``POST {"action": "stop"}`` ends it;
        both answer with the profiler's report.  ``GET`` returns the
        collapsed-stack text of the last (or still-running) capture --
        feed it straight to any flame-graph renderer.
        """
        if method == "GET":
            report = self.profiler.report()
            return (
                200,
                self.profiler.collapsed(),
                "text/plain; charset=utf-8",
                {"X-Profile-Samples": str(report["samples"]),
                 "X-Profile-Running": "1" if report["running"] else "0"},
            )
        if method != "POST":
            return 405, {"error": "use GET or POST."}, "application/json", {}
        try:
            document = json.loads(body or b"{}")
            action = document.get("action") if isinstance(document, dict) else None
        except json.JSONDecodeError as error:
            return (
                400,
                {"error": f"invalid profile request body: {error}"},
                "application/json",
                {},
            )
        if action == "start":
            hz = document.get("hz")
            try:
                started = self.profiler.start(
                    hz=None if hz is None else float(hz)
                )
            except (TypeError, ValueError) as error:
                return 400, {"error": str(error)}, "application/json", {}
            status = 200 if started else 409
            payload = {"started": started, **self.profiler.report()}
            if not started:
                payload["error"] = "a profile capture is already running."
            return status, payload, "application/json", {}
        if action == "stop":
            stopped = self.profiler.stop()
            return (
                200,
                {"stopped": stopped, **self.profiler.report()},
                "application/json",
                {},
            )
        return (
            400,
            {"error": 'profile action must be "start" or "stop".'},
            "application/json",
            {},
        )

    def _finish_trace(
        self, trace: Optional[Trace], error: Optional[str] = None
    ) -> None:
        """Close and record a trace the service never got to close itself.

        No-op for traces already closed by the serving path (the normal
        case) -- only edge-side failures (decode errors, deadline expiry,
        unknown models) are accounted here.
        """
        if trace is not None and not trace.closed and trace.close(error=error):
            self.service.telemetry.record_trace(trace)

    async def _predict(
        self, name: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Any, str, Dict[str, str]]:
        deadline = self._parse_deadline(headers)
        trace: Optional[Trace] = None
        if getattr(self.service, "tracing", False):
            trace = Trace(route="predict", model=name, deadline=deadline)
        extra = {} if trace is None else {"X-Trace-Id": trace.trace_id}
        if deadline is not None and deadline <= 0.0:
            self._finish_trace(trace, error="deadline already expired")
            return 504, {"error": "deadline already expired."}, "application/json", extra
        wants_npy = any(
            kind in headers.get("content-type", "") for kind in _NPY_TYPES
        )
        try:
            X = self._decode_batch(body, wants_npy)
        except Exception as error:
            self._finish_trace(trace, error=f"decode: {error}")
            return (
                400,
                {"error": f"could not decode batch: {error}"},
                "application/json",
                extra,
            )
        if trace is not None:
            trace.add_span(STAGE_EDGE_PARSE, trace.started, time.monotonic())
        try:
            # A deadline buys bounded backpressure: the request may queue for
            # a slot, but only until the budget runs out.  Without one, a
            # saturated service sheds the request immediately (429).
            labels = await asyncio.wait_for(
                self.service.predict_async(
                    name,
                    X,
                    backpressure=deadline is not None,
                    slot_timeout=deadline,
                    trace=trace,
                ),
                timeout=deadline,
            )
        except asyncio.TimeoutError:
            # The trace is still riding the serving path; whoever resolves
            # the abandoned future closes it (it shows up deadline_violated
            # in the slow ring), so it is not finished here.
            return 504, {"error": "deadline exceeded."}, "application/json", extra
        except Overloaded as error:
            if deadline is not None:
                return 504, {"error": str(error)}, "application/json", extra
            return 429, {"error": str(error)}, "application/json", extra
        except ServiceClosed as error:
            return 503, {"error": str(error)}, "application/json", extra
        except KeyError as error:
            self._finish_trace(trace, error=f"unknown model: {error}")
            return 404, {"error": str(error)}, "application/json", extra
        except (ValueError, RuntimeError) as error:
            self._finish_trace(trace, error=f"{type(error).__name__}: {error}")
            return (
                400,
                {"error": f"{type(error).__name__}: {error}"},
                "application/json",
                extra,
            )
        if wants_npy:
            buffer = io.BytesIO()
            np.save(buffer, labels)
            return 200, buffer.getvalue(), "application/x-npy", extra
        return (
            200,
            {"model": name, "n": int(len(labels)), "labels": labels.tolist()},
            "application/json",
            extra,
        )

    async def _swap(
        self, name: str, body: bytes
    ) -> Tuple[int, Any, str, Dict[str, str]]:
        if not body:
            return (
                400,
                {"error": "swap body must be an npz artifact."},
                "application/json",
                {},
            )
        loop = asyncio.get_running_loop()
        try:
            model = await loop.run_in_executor(None, self._load_artifact, body)
            version = self.service.swap(name, model)
        except ServiceClosed as error:
            return 503, {"error": str(error)}, "application/json", {}
        except Exception as error:
            return (
                400,
                {"error": f"could not swap {name!r}: {error}"},
                "application/json",
                {},
            )
        return 200, {"name": name, "version": version}, "application/json", {}

    @staticmethod
    def _load_artifact(body: bytes) -> ClusterModel:
        # ClusterModel.load validates magic/version before touching arrays,
        # so arbitrary uploads fail with a clear error, not a mislabeled model.
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "artifact.npz"
            path.write_bytes(body)
            return ClusterModel.load(path)

    @staticmethod
    def _parse_deadline(headers: Dict[str, str]) -> Optional[float]:
        """Deadline budget in seconds from ``X-Deadline-Ms``, validated.

        Non-numeric, negative, infinite and NaN values are all refused with
        an actionable 400 -- ``inf`` would disable load shedding silently,
        ``nan`` would poison every deadline comparison, and a negative
        budget is a client bug worth surfacing rather than a synonym for
        "already expired".  ``0`` stays legal and expires immediately (504).
        """
        raw = headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        header = "X-Deadline-Ms"
        try:
            value = float(raw)
        except ValueError:
            raise _BadRequest(
                400,
                f"invalid {header} header: {raw!r} is not a number; "
                "send the remaining budget in milliseconds, e.g. "
                f"{header}: 250.",
            ) from None
        if not math.isfinite(value):
            raise _BadRequest(
                400,
                f"invalid {header} header: {raw!r} must be finite; "
                "omit the header entirely for no deadline.",
            )
        if value < 0.0:
            raise _BadRequest(
                400,
                f"invalid {header} header: {raw!r} is negative; "
                "the budget is the remaining milliseconds and must be >= 0.",
            )
        return value / 1000.0

    @staticmethod
    def _decode_batch(body: bytes, is_npy: bool) -> np.ndarray:
        if is_npy:
            return np.load(io.BytesIO(body), allow_pickle=False)
        document = json.loads(body or b"null")
        points = document.get("points") if isinstance(document, dict) else document
        if points is None:
            raise ValueError('expected {"points": [[...], ...]} or a bare array.')
        return np.asarray(points, dtype=np.float64)

    # -- response writing --------------------------------------------------------

    async def _write_response(
        self,
        writer,
        status: int,
        payload: Any,
        content_type: str,
        *,
        close: bool,
        headers: Optional[Dict[str, str]] = None,
        head_only: bool = False,
    ) -> None:
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
        elif isinstance(payload, str):
            # Pre-rendered text bodies (Prometheus exposition) ship as-is.
            body = payload.encode("utf-8")
        else:
            body = json.dumps(payload).encode("utf-8")
        self.requests_by_status[status] = self.requests_by_status.get(status, 0) + 1
        extra = "".join(
            f"{key}: {value}\r\n" for key, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"{extra}"
            "\r\n"
        )
        # A HEAD answer carries the GET's exact headers (Content-Length
        # included) with no body -- the payload is still rendered above so
        # the length is honest.
        writer.write(head.encode("latin-1") + (b"" if head_only else body))
        await writer.drain()

    async def _respond_json(
        self, writer, status: int, payload: Any, *, close: bool
    ) -> None:
        try:
            await self._write_response(
                writer, status, payload, "application/json", close=close
            )
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


class EdgeThread:
    """Run an :class:`EdgeServer` on a private event-loop thread.

    Synchronous front door for examples and tests::

        with EdgeThread(service) as edge:
            requests_like_call(f"http://{edge.host}:{edge.port}/healthz")

    :meth:`close` drains the edge and stops the loop thread; the wrapped
    service is not closed.
    """

    def __init__(
        self,
        service: ClusteringService,
        host: str = "127.0.0.1",
        port: int = 0,
        **edge_kwargs,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-edge", daemon=True
        )
        self._thread.start()
        self.edge = EdgeServer(service, host, port, **edge_kwargs)
        try:
            asyncio.run_coroutine_threadsafe(self.edge.start(), self._loop).result(
                timeout=10.0
            )
        except Exception:
            self._stop_loop()
            raise
        self._closed = False

    @property
    def host(self) -> str:
        return self.edge.host

    @property
    def port(self) -> int:
        return self.edge.port

    @property
    def url(self) -> str:
        """Base URL of the running edge (no trailing slash)."""
        return f"http://{self.edge.host}:{self.edge.port}"

    def loop_lag(self, timeout: float = 1.0) -> Optional[float]:
        """Round-trip scheduling lag of the edge's event loop, in seconds.

        Schedules a no-op coroutine on the loop and times until it runs: a
        healthy loop answers in microseconds, one starved by a blocking
        handler (or a pegged host) takes visibly longer.  ``None`` when the
        edge is closed or the probe times out -- the intended
        ``loop_lag`` hook for :class:`repro.obs.sysmon.SystemMonitor`.
        """
        if self._closed:
            return None
        started = time.monotonic()
        try:
            asyncio.run_coroutine_threadsafe(
                asyncio.sleep(0), self._loop
            ).result(timeout=timeout)
        except Exception:
            return None
        return time.monotonic() - started

    def close(self, timeout: float = 10.0) -> None:
        """Drain the edge and stop the loop thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            asyncio.run_coroutine_threadsafe(self.edge.close(), self._loop).result(
                timeout=timeout
            )
        finally:
            self._stop_loop(timeout)

    def _stop_loop(self, timeout: float = 10.0) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        if not self._thread.is_alive():
            self._loop.close()

    def __enter__(self) -> "EdgeThread":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeThread(url={self.url!r}, closed={self._closed})"
