"""Spatial index substrate: union-find, KD-tree and neighbour queries.

These structures back the grid connectivity step of AdaWave (union-find over
adjacent occupied cells) and the density / affinity computations of the
baseline algorithms (range queries for DBSCAN, nearest neighbours for the
self-tuning spectral clustering scale estimate).
"""

from repro.spatial.union_find import ArrayUnionFind, UnionFind
from repro.spatial.kdtree import KDTree
from repro.spatial.neighbors import (
    pairwise_distances,
    radius_neighbors,
    k_nearest_neighbors,
)

__all__ = [
    "ArrayUnionFind",
    "UnionFind",
    "KDTree",
    "pairwise_distances",
    "radius_neighbors",
    "k_nearest_neighbors",
]
