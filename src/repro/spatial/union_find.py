"""Disjoint-set (union-find) structure with path compression and union by rank.

AdaWave's step 4 finds the connected components of the surviving grid cells;
the union-find gives that in near-linear time over the cell adjacency pairs.
The implementation supports arbitrary hashable items so grid cells can be
used directly as keys without first being renumbered.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class UnionFind:
    """Disjoint-set forest over arbitrary hashable items."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._count = 0
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        """Number of items currently tracked."""
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    @property
    def n_components(self) -> int:
        """Number of disjoint sets."""
        return self._count

    def add(self, item: Hashable) -> None:
        """Register ``item`` as its own singleton set (no-op if present)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._count += 1

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of ``item``'s set."""
        if item not in self._parent:
            raise KeyError(f"{item!r} has not been added to the union-find.")
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the path directly at the root.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: Hashable, second: Hashable) -> Hashable:
        """Merge the sets containing ``first`` and ``second``; return the new root."""
        self.add(first)
        self.add(second)
        root_a = self.find(first)
        root_b = self.find(second)
        if root_a == root_b:
            return root_a
        # Union by rank keeps the trees shallow.
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        self._count -= 1
        return root_a

    def connected(self, first: Hashable, second: Hashable) -> bool:
        """True if both items are in the same set."""
        return self.find(first) == self.find(second)

    def groups(self) -> Dict[Hashable, List[Hashable]]:
        """Mapping of set representative to the members of that set."""
        result: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            result.setdefault(self.find(item), []).append(item)
        return result

    def component_labels(self) -> Dict[Hashable, int]:
        """Assign a dense integer label (0, 1, ...) to every item by component.

        Labels are assigned in the order components are first encountered when
        iterating over insertion order, which keeps the labelling deterministic.
        """
        labels: Dict[Hashable, int] = {}
        next_label = 0
        root_to_label: Dict[Hashable, int] = {}
        for item in self._parent:
            root = self.find(item)
            if root not in root_to_label:
                root_to_label[root] = next_label
                next_label += 1
            labels[item] = root_to_label[root]
        return labels
