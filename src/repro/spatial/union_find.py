"""Disjoint-set (union-find) structures with path compression.

AdaWave's step 4 finds the connected components of the surviving grid cells;
the union-find gives that in near-linear time over the cell adjacency pairs.
Two implementations are provided:

:class:`UnionFind`
    The classic pointer-chasing structure over arbitrary hashable items, so
    grid cells can be used directly as keys without being renumbered.  Used
    by the reference (dict) engine and wherever items are not integers.

:class:`ArrayUnionFind`
    A vectorized variant over the integers ``0 .. n-1`` backed by a single
    ``parent`` array.  Edge batches are merged with a hook-and-shortcut
    iteration (each round hooks the larger of two roots onto the smaller with
    ``np.minimum.at`` and then compresses every path by repeated pointer
    jumping), so unioning ``E`` edges costs ``O((E + n) log n)`` numpy passes
    with no Python loop over the edges.  This is what the vectorized
    connected-components labeling of :mod:`repro.grid.connectivity` runs on.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List

import numpy as np


class UnionFind:
    """Disjoint-set forest over arbitrary hashable items."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._count = 0
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        """Number of items currently tracked."""
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    @property
    def n_components(self) -> int:
        """Number of disjoint sets."""
        return self._count

    def add(self, item: Hashable) -> None:
        """Register ``item`` as its own singleton set (no-op if present)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._count += 1

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of ``item``'s set."""
        if item not in self._parent:
            raise KeyError(f"{item!r} has not been added to the union-find.")
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the path directly at the root.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: Hashable, second: Hashable) -> Hashable:
        """Merge the sets containing ``first`` and ``second``; return the new root."""
        self.add(first)
        self.add(second)
        root_a = self.find(first)
        root_b = self.find(second)
        if root_a == root_b:
            return root_a
        # Union by rank keeps the trees shallow.
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        self._count -= 1
        return root_a

    def connected(self, first: Hashable, second: Hashable) -> bool:
        """True if both items are in the same set."""
        return self.find(first) == self.find(second)

    def groups(self) -> Dict[Hashable, List[Hashable]]:
        """Mapping of set representative to the members of that set."""
        result: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            result.setdefault(self.find(item), []).append(item)
        return result

    def component_labels(self) -> Dict[Hashable, int]:
        """Assign a dense integer label (0, 1, ...) to every item by component.

        Labels are assigned in the order components are first encountered when
        iterating over insertion order, which keeps the labelling deterministic.
        """
        labels: Dict[Hashable, int] = {}
        next_label = 0
        root_to_label: Dict[Hashable, int] = {}
        for item in self._parent:
            root = self.find(item)
            if root not in root_to_label:
                root_to_label[root] = next_label
                next_label += 1
            labels[item] = root_to_label[root]
        return labels


class ArrayUnionFind:
    """Disjoint-set forest over the integers ``0 .. n-1`` backed by arrays.

    The parent pointers always satisfy ``parent[i] <= i`` after a union round,
    so the forest is acyclic by construction and repeated pointer jumping
    (``parent = parent[parent]``) converges to fully compressed paths.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0; got {n}.")
        self.parent = np.arange(n, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint sets."""
        self.compress()
        return int(np.count_nonzero(self.parent == np.arange(len(self.parent))))

    def compress(self) -> np.ndarray:
        """Point every element directly at its root (full path compression)."""
        parent = self.parent
        while True:
            grandparent = parent[parent]
            if np.array_equal(grandparent, parent):
                break
            parent = grandparent
        self.parent = parent
        return parent

    def find_many(self, indices) -> np.ndarray:
        """Roots of ``indices`` (vectorized pointer jumping)."""
        roots = self.parent[np.asarray(indices, dtype=np.int64)]
        while True:
            hop = self.parent[roots]
            if np.array_equal(hop, roots):
                return roots
            roots = hop

    def union_pairs(self, first, second) -> None:
        """Merge the sets of every pair ``(first[i], second[i])`` at once.

        Iterates hook-and-shortcut rounds: find both roots, hook the larger
        root of every still-disconnected pair onto the smaller one (conflicting
        hooks onto the same root are resolved by ``np.minimum.at``, which keeps
        the forest acyclic), then fully compress.  Terminates in ``O(log n)``
        rounds because every round at least halves the number of live pairs.
        """
        first = np.asarray(first, dtype=np.int64)
        second = np.asarray(second, dtype=np.int64)
        if first.shape != second.shape:
            raise ValueError("first and second must have the same length.")
        while len(first):
            roots_a = self.find_many(first)
            roots_b = self.find_many(second)
            live = roots_a != roots_b
            if not live.any():
                break
            high = np.maximum(roots_a[live], roots_b[live])
            low = np.minimum(roots_a[live], roots_b[live])
            np.minimum.at(self.parent, high, low)
            self.compress()
            first = first[live]
            second = second[live]

    def labels(self) -> np.ndarray:
        """Dense component labels ``0, 1, ...`` assigned in index order.

        The component containing the smallest element gets label 0, the next
        first-seen component label 1, and so on -- the same deterministic
        order the hashable :class:`UnionFind` produces for sorted input.
        """
        roots = self.compress()
        _, first_seen, inverse = np.unique(roots, return_index=True, return_inverse=True)
        # np.unique orders roots by value; because parent[i] <= i, a root's
        # value equals the smallest element of its component, so value order
        # already is first-seen order.
        del first_seen
        return inverse.astype(np.int64)
