"""A KD-tree for nearest-neighbour and radius queries.

The DBSCAN baseline needs eps-range queries for every point and the
self-tuning spectral clustering baseline needs the distance to the k-th
nearest neighbour; a KD-tree gives both in ``O(log n)`` expected time per
query for the low-dimensional data the paper evaluates on.  For high
dimensions the tree degrades gracefully to brute force behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import heapq

import numpy as np

from repro.utils.validation import check_array

_LEAF_SIZE = 16


@dataclass
class _Node:
    """Internal node: split axis/value plus index range of the leaf points."""

    indices: np.ndarray
    axis: int = -1
    split_value: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class KDTree:
    """Static KD-tree built once over a point set.

    Parameters
    ----------
    points:
        Array of shape ``(n_samples, n_features)``.
    leaf_size:
        Maximum number of points stored in a leaf node.
    """

    def __init__(self, points, leaf_size: int = _LEAF_SIZE) -> None:
        self._points = check_array(points, name="points")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1; got {leaf_size}.")
        self._leaf_size = int(leaf_size)
        self._root = self._build(np.arange(self._points.shape[0]), depth=0)

    @property
    def n_points(self) -> int:
        """Number of points indexed by the tree."""
        return self._points.shape[0]

    def _build(self, indices: np.ndarray, depth: int) -> _Node:
        if len(indices) <= self._leaf_size:
            return _Node(indices=indices)
        axis = depth % self._points.shape[1]
        values = self._points[indices, axis]
        median = float(np.median(values))
        left_mask = values <= median
        # Guard against degenerate splits where every value equals the median.
        if left_mask.all() or not left_mask.any():
            return _Node(indices=indices)
        node = _Node(indices=indices, axis=axis, split_value=median)
        node.left = self._build(indices[left_mask], depth + 1)
        node.right = self._build(indices[~left_mask], depth + 1)
        return node

    # -- radius queries ----------------------------------------------------

    def query_radius(self, point, radius: float) -> np.ndarray:
        """Indices of all points within Euclidean ``radius`` of ``point``."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative; got {radius}.")
        query = np.asarray(point, dtype=np.float64).ravel()
        if query.shape[0] != self._points.shape[1]:
            raise ValueError(
                f"query point has {query.shape[0]} features; tree expects {self._points.shape[1]}."
            )
        found: List[int] = []
        self._radius_search(self._root, query, radius, found)
        return np.asarray(sorted(found), dtype=np.int64)

    def _radius_search(self, node: _Node, query: np.ndarray, radius: float, found: List[int]) -> None:
        if node.is_leaf:
            candidates = self._points[node.indices]
            distances = np.sqrt(((candidates - query) ** 2).sum(axis=1))
            found.extend(int(i) for i in node.indices[distances <= radius])
            return
        difference = query[node.axis] - node.split_value
        near, far = (node.left, node.right) if difference <= 0 else (node.right, node.left)
        self._radius_search(near, query, radius, found)
        if abs(difference) <= radius:
            self._radius_search(far, query, radius, found)

    # -- k nearest neighbours ----------------------------------------------

    def query(self, point, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Distances and indices of the ``k`` nearest neighbours of ``point``."""
        if k < 1:
            raise ValueError(f"k must be >= 1; got {k}.")
        k = min(k, self.n_points)
        query = np.asarray(point, dtype=np.float64).ravel()
        if query.shape[0] != self._points.shape[1]:
            raise ValueError(
                f"query point has {query.shape[0]} features; tree expects {self._points.shape[1]}."
            )
        # Max-heap of (-distance, index) keeping the k best candidates seen.
        heap: List[Tuple[float, int]] = []
        self._knn_search(self._root, query, k, heap)
        ordered = sorted((-negative_distance, index) for negative_distance, index in heap)
        distances = np.asarray([entry[0] for entry in ordered])
        indices = np.asarray([entry[1] for entry in ordered], dtype=np.int64)
        return distances, indices

    def _knn_search(self, node: _Node, query: np.ndarray, k: int, heap: List[Tuple[float, int]]) -> None:
        if node.is_leaf:
            candidates = self._points[node.indices]
            distances = np.sqrt(((candidates - query) ** 2).sum(axis=1))
            for distance, index in zip(distances, node.indices):
                entry = (-float(distance), int(index))
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif entry > heap[0]:
                    heapq.heapreplace(heap, entry)
            return
        difference = query[node.axis] - node.split_value
        near, far = (node.left, node.right) if difference <= 0 else (node.right, node.left)
        self._knn_search(near, query, k, heap)
        worst = -heap[0][0] if heap else np.inf
        if len(heap) < k or abs(difference) <= worst:
            self._knn_search(far, query, k, heap)
