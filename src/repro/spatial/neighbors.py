"""Neighbour query helpers shared by the baseline algorithms.

These wrap the KD-tree with the batch interfaces the baselines actually use
and fall back to vectorised brute force for small inputs where building the
tree is not worth it.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.spatial.kdtree import KDTree
from repro.utils.validation import check_array

_BRUTE_FORCE_LIMIT = 512


def pairwise_distances(X, Y=None) -> np.ndarray:
    """Dense Euclidean distance matrix between the rows of ``X`` and ``Y``.

    ``Y=None`` computes the self-distance matrix.  Used by the spectral and
    RIC baselines, both of which are quadratic by nature.
    """
    X = check_array(X, name="X")
    Y = X if Y is None else check_array(Y, name="Y")
    if X.shape[1] != Y.shape[1]:
        raise ValueError(
            f"X and Y must have the same number of features; got {X.shape[1]} and {Y.shape[1]}."
        )
    squared = (
        np.sum(X**2, axis=1)[:, None] + np.sum(Y**2, axis=1)[None, :] - 2.0 * X @ Y.T
    )
    np.maximum(squared, 0.0, out=squared)
    return np.sqrt(squared)


def radius_neighbors(X, radius: float) -> List[np.ndarray]:
    """For every row of ``X``, the indices of rows within Euclidean ``radius``.

    Each point is included in its own neighbourhood, matching the DBSCAN
    definition of ``|N_eps(p)|``.
    """
    X = check_array(X, name="X")
    if radius < 0:
        raise ValueError(f"radius must be non-negative; got {radius}.")
    n_samples = X.shape[0]
    if n_samples <= _BRUTE_FORCE_LIMIT:
        distances = pairwise_distances(X)
        return [np.flatnonzero(distances[i] <= radius) for i in range(n_samples)]
    tree = KDTree(X)
    return [tree.query_radius(X[i], radius) for i in range(n_samples)]


def k_nearest_neighbors(X, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Distances and indices of the ``k`` nearest neighbours of every row.

    The query point itself is excluded, so ``distances[:, 0]`` is the distance
    to the closest *other* point.  Self-tuning spectral clustering uses the
    ``k``-th column as its local scale.
    """
    X = check_array(X, name="X")
    if k < 1:
        raise ValueError(f"k must be >= 1; got {k}.")
    n_samples = X.shape[0]
    if k >= n_samples:
        raise ValueError(f"k must be < n_samples={n_samples}; got {k}.")
    if n_samples <= _BRUTE_FORCE_LIMIT:
        distances = pairwise_distances(X)
        np.fill_diagonal(distances, np.inf)
        order = np.argsort(distances, axis=1)[:, :k]
        sorted_distances = np.take_along_axis(distances, order, axis=1)
        return sorted_distances, order
    tree = KDTree(X)
    all_distances = np.empty((n_samples, k))
    all_indices = np.empty((n_samples, k), dtype=np.int64)
    for i in range(n_samples):
        # Query k + 1 and drop the self match.
        distances, indices = tree.query(X[i], k=k + 1)
        mask = indices != i
        all_distances[i] = distances[mask][:k]
        all_indices[i] = indices[mask][:k]
    return all_distances, all_indices
