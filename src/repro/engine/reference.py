"""Reference (dict-based) implementations of the AdaWave pipeline stages.

These are the straightforward per-cell Python implementations the project
started from: a loop over points for quantization, a loop over occupied lines
for the wavelet pass, hash probing for connected components and a memoised
per-point loop for the final label lookup.  They are kept for three reasons:

* :func:`fit_reference` runs the whole pipeline through them, which is what
  the golden-regression layer and the runtime benchmark compare the
  vectorized engine against (``AdaWave(engine="reference")`` was deprecated
  and has been removed from the estimator constructor);
* the Hypothesis equivalence tests assert stage-by-stage agreement between
  the two engines on random inputs;
* they document the algorithm in its most literal form.

They are deliberately *not* optimised -- the vectorized versions living in
:mod:`repro.grid`, :mod:`repro.core.transform` and :mod:`repro.spatial` are
the production path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.grid.connectivity import _connected_components_hash, neighbor_offsets
from repro.grid.lookup import NOISE_LABEL, LookupTable
from repro.grid.quantizer import GridQuantizer, QuantizationResult
from repro.grid.sparse_grid import SparseGrid
from repro.wavelets.dwt import dwt
from repro.wavelets.filters import build_wavelet

Cell = Tuple[int, ...]

_NEGLIGIBLE = 1e-9


def quantize_reference(quantizer: GridQuantizer, X: np.ndarray) -> QuantizationResult:
    """Per-point accumulation into the sparse grid (Algorithm 2, literal)."""
    cell_ids = quantizer.transform(X)
    grid = SparseGrid(quantizer.shape_)
    for cell in map(tuple, cell_ids.tolist()):
        grid.add(cell, 1.0)
    widths = (quantizer.upper_ - quantizer.lower_) / np.asarray(
        quantizer.shape_, dtype=np.float64
    )
    return QuantizationResult(
        grid=grid,
        cell_ids=cell_ids,
        lower=quantizer.lower_.copy(),
        upper=quantizer.upper_.copy(),
        widths=widths,
    )


def _transform_axis_reference(grid: SparseGrid, wavelet, axis: int) -> SparseGrid:
    """Single-level low-pass transform along one axis, one line at a time."""
    new_shape = list(grid.shape)
    new_shape[axis] = (grid.shape[axis] + 1) // 2
    transformed = SparseGrid(new_shape)
    for key, line in grid.lines_along(axis):
        approx, _detail = dwt(line, wavelet, mode="periodization")
        for position, value in enumerate(approx):
            if abs(value) <= _NEGLIGIBLE:
                continue
            cell = key[:axis] + (position,) + key[axis:]
            transformed.add(cell, float(value))
    return transformed


def wavelet_smooth_grid_reference(
    grid: SparseGrid, wavelet: str = "bior2.2", level: int = 1
) -> Tuple[SparseGrid, Tuple[int, ...]]:
    """Per-line wavelet smoothing of the grid (Algorithm 3, literal)."""
    if level < 1:
        raise ValueError(f"level must be >= 1; got {level}.")
    bank = build_wavelet(wavelet)
    current = grid
    for _ in range(level):
        if min(current.shape) < 2:
            break
        for axis in range(current.ndim):
            current = _transform_axis_reference(current, bank, axis)
    return current, current.shape


def connected_components_reference(cells, connectivity: str = "face") -> Dict[Cell, int]:
    """Hash-probing connected components with sorted-cell deterministic labels."""
    cell_list = sorted(set(tuple(int(c) for c in cell) for cell in cells))
    if not cell_list:
        return {}
    ndim = len(cell_list[0])
    if any(len(cell) != ndim for cell in cell_list):
        raise ValueError("all cells must have the same dimensionality.")
    neighbor_offsets(ndim, connectivity)
    return _connected_components_hash(cell_list, connectivity)


def label_points_reference(
    lookup: LookupTable,
    point_cells: np.ndarray,
    transformed_labels: Dict[Cell, int],
) -> np.ndarray:
    """Memoised per-point label lookup (the original ``label_points``)."""
    transformed = lookup.to_transformed_many(point_cells)
    labels = np.full(transformed.shape[0], NOISE_LABEL, dtype=np.int64)
    cache: Dict[Cell, int] = {}
    for index, cell in enumerate(map(tuple, transformed.tolist())):
        if cell not in cache:
            cache[cell] = transformed_labels.get(cell, NOISE_LABEL)
        labels[index] = cache[cell]
    return labels


@dataclass
class ReferenceFitResult:
    """Output of a one-shot :func:`fit_reference` run (pipeline artefacts)."""

    labels: np.ndarray
    n_clusters: int
    threshold: float
    surviving_cells: Dict[Cell, int]
    quantization: QuantizationResult
    transformed_grid: SparseGrid


def fit_reference(
    X: np.ndarray,
    *,
    scale=128,
    wavelet: str = "bior2.2",
    level: int = 1,
    threshold_method: str = "auto",
    connectivity: str = "auto",
    min_cluster_cells: int = 3,
    angle_divisor: float = 3.0,
    bounds=None,
) -> ReferenceFitResult:
    """Run the whole AdaWave pipeline through the reference implementations.

    The literal-engine counterpart of ``AdaWave(...).fit(X)``, with the same
    parameter semantics (threshold selection is shared with the vectorized
    path -- it operates on a plain density vector either way).  This is the
    entry point the golden-regression and engine-equivalence tests compare
    the vectorized estimator against, now that selecting the reference
    engine through the ``AdaWave`` constructor has been removed.
    """
    from repro.core.pipeline import resolve_connectivity, select_threshold

    X = np.asarray(X, dtype=np.float64)
    quantizer = GridQuantizer(scale=scale, bounds=bounds)
    quantizer.fit(X)
    quantization = quantize_reference(quantizer, X)
    transformed, _shape = wavelet_smooth_grid_reference(
        quantization.grid, wavelet=wavelet, level=level
    )
    threshold = select_threshold(transformed, threshold_method, angle_divisor)
    surviving = extract_clusters_reference(
        transformed,
        threshold.threshold,
        resolve_connectivity(connectivity, X.shape[1]),
        min_cluster_cells,
    )
    labels = label_points_reference(
        LookupTable(level=level), quantization.cell_ids, surviving
    )
    return ReferenceFitResult(
        labels=labels,
        n_clusters=len(set(surviving.values())) if surviving else 0,
        threshold=threshold.threshold,
        surviving_cells=surviving,
        quantization=quantization,
        transformed_grid=transformed,
    )


def extract_clusters_reference(
    transformed: SparseGrid,
    threshold: float,
    connectivity: str,
    min_cluster_cells: int,
) -> Dict[Cell, int]:
    """Threshold filter + components + small-component suppression (literal).

    Uses the same tie-stable cut as the vectorized extraction
    (:func:`repro.core.pipeline.snapped_cut`), so reference and vectorized
    survivor sets agree across all transform backends even on exact density
    ties at the threshold.
    """
    from repro.core.pipeline import snapped_cut

    cut = snapped_cut(threshold)
    surviving = [cell for cell, density in transformed.items() if density > cut]
    if not surviving:
        return {}
    labels = connected_components_reference(surviving, connectivity=connectivity)
    if min_cluster_cells > 1:
        sizes: Dict[int, int] = {}
        for label in labels.values():
            sizes[label] = sizes.get(label, 0) + 1
        keep = {label for label, size in sizes.items() if size >= min_cluster_cells}
        relabel = {old: new for new, old in enumerate(sorted(keep))}
        labels = {cell: relabel[label] for cell, label in labels.items() if label in keep}
    return labels
