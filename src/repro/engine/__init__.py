"""Execution engines for the AdaWave pipeline.

The pipeline stages (quantize, per-dimension wavelet transform, threshold,
connected components, lookup) exist in two interchangeable implementations:

* the **vectorized engine** -- COO arrays, batched DWT, sort-based neighbour
  joins and an array union-find, spread across :mod:`repro.grid`,
  :mod:`repro.core.transform` and :mod:`repro.spatial`; selected with
  ``AdaWave(engine="vectorized")`` (the default);
* the **reference engine** (:mod:`repro.engine.reference`) -- the literal
  per-cell Python implementations, used by the golden-regression and
  equivalence tests as the ground truth.  It is no longer selectable through
  the ``AdaWave`` constructor (the ``engine="reference"`` option completed
  its deprecation cycle and now raises); run it via
  :func:`repro.engine.reference.fit_reference` for regression comparison.

This package also provides :class:`BatchRunner`, which clusters many
datasets through one shared pipeline: the wavelet filter bank is built once
and the dense line-matrix scratch buffer of the batched transform is reused
across datasets instead of being reallocated per fit.
"""

from repro.core.transform import Workspace
from repro.engine.batch import BatchRunner
from repro.engine import reference

__all__ = ["BatchRunner", "Workspace", "reference"]
