"""Shared-pipeline batch clustering.

Serving many clustering requests (or sweeping many datasets in an
experiment) through fresh :class:`~repro.core.adawave.AdaWave` instances
re-does two pieces of work per dataset: constructing the wavelet filter bank
and allocating the dense line matrix the batched transform scatters the grid
into.  :class:`BatchRunner` hoists both -- the filter bank is built once in
the constructor and every fit shares one growing
:class:`~repro.core.transform.Workspace` scratch buffer -- while keeping the
per-dataset results completely independent.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.adawave import AdaWave, AdaWaveResult
from repro.core.transform import Workspace
from repro.wavelets.filters import build_wavelet


class BatchRunner:
    """Cluster many datasets through one reusable AdaWave pipeline.

    Parameters
    ----------
    **adawave_params:
        Constructor arguments forwarded to :class:`AdaWave` for every run
        (``scale``, ``wavelet``, ``level``, ``threshold_method``, ...).

    Examples
    --------
    >>> runner = BatchRunner(scale=64)
    >>> results = runner.run_many([X_monday, X_tuesday, X_wednesday])
    >>> [r.n_clusters for r in results]
    """

    def __init__(self, **adawave_params) -> None:
        self._params = dict(adawave_params)
        # Resolve the wavelet once; AdaWave accepts the built bank directly,
        # so every run skips the name lookup / construction entirely.
        self._params["wavelet"] = build_wavelet(self._params.get("wavelet", "bior2.2"))
        self._workspace = Workspace()
        self.n_runs_: int = 0

    def _make_estimator(self) -> AdaWave:
        model = AdaWave(**self._params)
        model._workspace = self._workspace
        return model

    def run(self, X) -> AdaWaveResult:
        """Cluster one dataset and return its full :class:`AdaWaveResult`."""
        model = self._make_estimator().fit(X)
        self.n_runs_ += 1
        return model.result_

    def _run_isolated(self, X) -> AdaWaveResult:
        """One fit with a private workspace (safe to run on a pool thread)."""
        model = AdaWave(**self._params)
        model._workspace = Workspace()
        return model.fit(X).result_

    def run_many(
        self, datasets: Iterable[np.ndarray], n_workers: Optional[int] = None
    ) -> List[AdaWaveResult]:
        """Cluster every dataset in ``datasets`` through the shared pipeline.

        With ``n_workers`` greater than one the datasets fan out over a
        :class:`~concurrent.futures.ThreadPoolExecutor` -- each worker fits
        through a private scratch workspace, so the runs stay independent
        while the numpy-heavy stages (which release the GIL) overlap.
        Results are returned in input order either way.
        """
        datasets = list(datasets)
        if n_workers is None or n_workers <= 1 or len(datasets) <= 1:
            return [self.run(X) for X in datasets]
        with ThreadPoolExecutor(max_workers=min(n_workers, len(datasets))) as pool:
            results = list(pool.map(self._run_isolated, datasets))
        self.n_runs_ += len(datasets)
        return results

    def run_stream(
        self, batches: Iterable[np.ndarray], bounds: Sequence, finalize_every: Optional[int] = None
    ) -> AdaWave:
        """Feed ``batches`` through one streaming estimator.

        ``bounds`` is forwarded to :class:`AdaWave` (streaming requires
        explicit bounds).  When ``finalize_every`` is given, the estimator is
        finalized after every that-many batches, so intermediate clusterings
        are available on the returned estimator while it keeps ingesting;
        the final :meth:`AdaWave.finalize` is always applied.
        """
        params = dict(self._params)
        params["bounds"] = bounds
        model = AdaWave(**params)
        model._workspace = self._workspace
        count = 0
        for batch in batches:
            model.partial_fit(batch)
            count += 1
            if finalize_every and count % finalize_every == 0 and model.n_seen_:
                model.finalize()
        if model.n_seen_ == 0:
            raise ValueError("run_stream received no non-empty batches.")
        model.finalize()
        self.n_runs_ += 1
        return model
